"""Legacy setup shim.

The execution environment has no `wheel` package and no network, so PEP
660 editable installs (which build a wheel) fail; keeping a setup.py and
omitting [build-system] from pyproject.toml lets `pip install -e .` use
the classic `setup.py develop` path.
"""

from setuptools import setup

setup()
