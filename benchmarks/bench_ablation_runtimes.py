"""Ablation A4 — runtime substrate choice (footnote 4's territory).

The paper ran five benchmarks on HJ's blocking work-sharing runtime and
NQueens on a cooperative runtime.  Our reproduction has three
interchangeable substrates; this ablation runs the same programs under
the same verifier (TJ-SP) on all of them:

* thread-per-task (TaskRuntime — the over-approximation of blocking
  work sharing),
* a true work-sharing pool with compensation + helping
  (WorkSharingRuntime),
* the deterministic cooperative scheduler (CooperativeRuntime; only for
  programs whose tasks never block mid-function, i.e. NQueens-style).

The interesting outputs are the pool's compensation counts (how often
blocked workers force growth — high for Strassen-style nesting, zero
for flat fan-outs) and the relative task-management overhead.
"""

from __future__ import annotations

import pytest

from repro.benchsuite import make_benchmark
from repro.runtime import TaskRuntime, WorkSharingRuntime

CASES = {
    "Series": {"coefficients": 200, "samples": 100},
    "Strassen": {"n": 128, "cutoff": 64},
    "Fib": {"n": 14, "cutoff": 8},
    "MergeSort": {"n": 1 << 12, "cutoff": 1 << 10},
}


def _run_threaded(bench):
    result, rt = bench.execute("TJ-SP")
    return result


def _run_pool(bench, workers=4):
    rt = WorkSharingRuntime(policy="TJ-SP", workers=workers)
    return rt.run(bench.run, rt), rt


@pytest.mark.parametrize("name", list(CASES))
@pytest.mark.parametrize("substrate", ["threaded", "pool"])
def test_runtime_substrates(benchmark, name, substrate):
    bench = make_benchmark(name, **CASES[name])
    bench.build()

    if substrate == "threaded":
        run = lambda: _run_threaded(bench)  # noqa: E731
    else:
        run = lambda: _run_pool(bench)[0]  # noqa: E731

    benchmark.group = f"runtimes-{name}"
    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert bench.verify(result)


def test_nqueens_on_cooperative_is_default(benchmark):
    bench = make_benchmark("NQueens", n=8, cutoff=3)
    bench.build()
    benchmark.group = "runtimes-NQueens"
    result = benchmark.pedantic(
        lambda: bench.execute("TJ-SP")[0], rounds=3, iterations=1, warmup_rounds=1
    )
    assert bench.verify(result)


class TestPoolBehaviour:
    def test_flat_fanout_needs_no_compensation(self):
        bench = make_benchmark("Series", coefficients=100, samples=50)
        bench.build()
        result, rt = _run_pool(bench)
        assert bench.verify(result)
        assert rt.compensations == 0  # root joins; workers never block

    def test_nested_joins_force_compensation(self):
        bench = make_benchmark("Strassen", n=128, cutoff=32)
        bench.build()
        result, rt = _run_pool(bench, workers=2)
        assert bench.verify(result)
        assert rt.compensations > 0
        print(
            f"\nStrassen on 2-worker pool: peak {rt.peak_workers} workers, "
            f"{rt.compensations} compensations"
        )

    def test_verifier_stats_identical_across_substrates(self):
        """The verification event stream is substrate-independent."""
        bench = make_benchmark("Fib", n=13, cutoff=8)
        bench.build()
        _, rt_thread = bench.execute("TJ-SP")
        _, rt_pool = _run_pool(bench)
        assert rt_thread.verifier.stats.forks == rt_pool.verifier.stats.forks
        assert (
            rt_thread.verifier.stats.joins_checked
            == rt_pool.verifier.stats.joins_checked
        )
        assert rt_thread.verifier.stats.joins_rejected == 0
        assert rt_pool.verifier.stats.joins_rejected == 0
