"""Experiment E11 — distributed-telemetry overhead and its gates.

Runs the multi-process soak shape (ProcessRuntime + sidecar) twice per
repetition — telemetry disabled vs the full distributed stack (trace
context on every dispatch frame, worker metrics pushes, sidecar span
ring shipped home, everything merged in the parent) — and asserts:

* the on/off median-time factor stays **≤ 1.25×**: the distributed
  plane must be cheap enough to leave on in production runs;
* the on arm actually produced distributed artifacts — a merged trace
  spanning **more than one process track** and a fleet snapshot with
  **more than one labelled source** (``process="parent"`` plus at least
  one ``worker=``).  A "fast" telemetry arm that silently dropped its
  payload would otherwise pass the factor gate vacuously.

The measurement merges into ``BENCH_runtime.json`` (schema v7's
``obs_dist`` block, via ``repro.analysis.io``) next to the other
instruments.  Running this file directly performs the same arms +
gates + merge; ``--smoke`` substitutes the tiny CI shape (the
``obs-dist-smoke`` CI job uses it).
"""

from __future__ import annotations

import math
import os
import sys

if __name__ == "__main__":  # script mode: make `repro` importable
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import pytest

from repro.analysis.io import load_runtime, save_runtime
from repro.analysis.runtime_overhead import (
    OBS_DIST_PARAMS,
    SMOKE_OBS_DIST_PARAMS,
    RuntimeOverheadResult,
    run_obs_dist_suite,
)

#: full-distributed-telemetry over disabled, median wall time
OVERHEAD_GATE = 1.25

OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_runtime.json"
)

#: CI sets this to run the tiny shape
_SMOKE = os.environ.get("REPRO_OBS_DIST_SMOKE") == "1"
_PARAMS = SMOKE_OBS_DIST_PARAMS if _SMOKE else OBS_DIST_PARAMS


def merge_into_bench_file(measurement, path: str = OUTPUT) -> None:
    """Attach the arms to ``BENCH_runtime.json``, preserving other blocks."""
    if os.path.exists(path):
        result = load_runtime(path)
    else:
        result = RuntimeOverheadResult(
            join_chain={}, reports=[], join_chain_params={}, overhead_params={}
        )
    result.obs_dist = measurement
    result.obs_dist_params = dict(_PARAMS)
    save_runtime(result, path)


def _summary(m) -> str:
    return (
        f"obs-dist: {m.tasks} tasks/arm on {m.workers} workers "
        f"({m.dispatches}x{m.mids}x{m.leaves}), off median {m.off_median:.2f}s "
        f"vs full {m.on_median:.2f}s (factor {m.overhead:.3f}x); "
        f"trace {m.trace_events} events / {m.trace_pids} tracks, "
        f"{m.metric_sources} metric sources"
    )


@pytest.fixture(scope="module")
def arms():
    m = run_obs_dist_suite(params=_PARAMS)
    print(f"\n{_summary(m)}")
    return m


def test_distributed_telemetry_overhead_gate(arms):
    """Full distributed telemetry must cost ≤1.25x over disabled."""
    assert not math.isnan(arms.overhead)
    assert arms.overhead <= OVERHEAD_GATE, (
        f"distributed telemetry factor {arms.overhead:.3f}x exceeds the "
        f"{OVERHEAD_GATE}x gate (off {arms.off_median:.3f}s, "
        f"on {arms.on_median:.3f}s)"
    )


def test_on_arm_shipped_the_distributed_payload(arms):
    """The factor gate is meaningless if the telemetry never crossed
    the process boundary — demand multi-track traces and a multi-source
    fleet snapshot."""
    assert arms.trace_events > 0
    assert arms.trace_pids > 1  # parent plus at least one worker/sidecar
    assert arms.metric_sources > 1  # process="parent" plus worker=...


def test_arms_merge_into_bench_runtime_json(arms, tmp_path):
    """The obs_dist block round-trips and coexists with other blocks."""
    path = str(tmp_path / "BENCH_runtime.json")
    merge_into_bench_file(arms, path)
    loaded = load_runtime(path)
    assert loaded.obs_dist is not None
    assert loaded.obs_dist.tasks == arms.tasks
    assert loaded.obs_dist.overhead == pytest.approx(arms.overhead)
    assert loaded.obs_dist_params == dict(_PARAMS)
    merge_into_bench_file(arms, path)  # a rerun replaces the block
    assert load_runtime(path).obs_dist.tasks == arms.tasks


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:] or _SMOKE
    _PARAMS = SMOKE_OBS_DIST_PARAMS if smoke else OBS_DIST_PARAMS
    m = run_obs_dist_suite(params=_PARAMS)
    print(_summary(m))
    status = 0
    if math.isnan(m.overhead) or m.overhead > OVERHEAD_GATE:
        print(f"FAIL: distributed telemetry factor {m.overhead:.3f}x > {OVERHEAD_GATE}x")
        status = 1
    if m.trace_events == 0 or m.trace_pids <= 1 or m.metric_sources <= 1:
        print(
            f"FAIL: on arm did not ship a distributed payload "
            f"({m.trace_events} events, {m.trace_pids} tracks, "
            f"{m.metric_sources} sources)"
        )
        status = 1
    if not smoke:
        merge_into_bench_file(m)
        print(f"obs_dist block merged into {OUTPUT}")
    sys.exit(status)
