"""Ablation A2 — policy precision: false-positive rates (Sections 2.1, 4).

TJ's claim over KJ is fewer false positives on deadlock-free programs.
This experiment replays randomly generated TJ-valid traces (which include
the out-of-order and skipped joins KJ cannot follow) through each hybrid
verifier and measures the fraction of joins referred to the Armus
fallback, plus the cost of replaying with the fallback active.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import pytest

from repro.armus.hybrid import replay_trace
from repro.core import make_policy
from repro.formal.generators import random_kj_valid_trace, random_tj_valid_trace

ALL_POLICIES = ["TJ-SP", "TJ-GT", "KJ-VC", "KJ-SS", "KJ-CC"]


@dataclass
class PrecisionResult:
    policy: str
    joins: int
    false_positives: int

    @property
    def rate(self) -> float:
        return self.false_positives / self.joins if self.joins else 0.0


def _measure(policy_name: str, traces) -> PrecisionResult:
    joins = fps = 0
    for trace in traces:
        hybrid = replay_trace(trace, make_policy(policy_name))
        joins += hybrid.verifier.stats.joins_checked
        fps += hybrid.detector.stats.false_positives
    return PrecisionResult(policy_name, joins, fps)


@pytest.fixture(scope="module")
def tj_valid_workload():
    rng = random.Random(2019)
    return [random_tj_valid_trace(rng, 60, 120) for _ in range(20)]


@pytest.fixture(scope="module")
def kj_valid_workload():
    rng = random.Random(2017)
    return [random_kj_valid_trace(rng, 40, 80) for _ in range(20)]


class TestPrecisionClaims:
    def test_tj_never_flags_tj_valid_traces(self, tj_valid_workload):
        for algo in ("TJ-SP", "TJ-GT", "TJ-JP", "TJ-OM"):
            r = _measure(algo, tj_valid_workload)
            assert r.false_positives == 0, algo

    def test_kj_flags_a_substantial_fraction(self, tj_valid_workload):
        """Random TJ-valid joins frequently wait for 'strangers'."""
        for algo in ("KJ-VC", "KJ-SS", "KJ-CC"):
            r = _measure(algo, tj_valid_workload)
            assert r.rate > 0.2, f"{algo} rate {r.rate:.2%}"

    def test_kj_implementations_agree_on_rates(self, tj_valid_workload):
        rates = {
            algo: _measure(algo, tj_valid_workload).rate
            for algo in ("KJ-VC", "KJ-SS", "KJ-CC")
        }
        assert len(set(rates.values())) == 1, rates

    def test_nobody_flags_kj_valid_traces(self, kj_valid_workload):
        """Corollary 4.4 in action: KJ-valid implies TJ-valid, and KJ
        accepts its own traces."""
        for algo in ALL_POLICIES:
            r = _measure(algo, kj_valid_workload)
            assert r.false_positives == 0, algo

    def test_print_precision_table(self, tj_valid_workload):
        rows = [_measure(algo, tj_valid_workload) for algo in ALL_POLICIES]
        print("\nfalse-positive rates on random TJ-valid traces:")
        for r in rows:
            print(f"  {r.policy:<6} {r.false_positives:>5}/{r.joins} = {r.rate:6.2%}")


@pytest.mark.parametrize("policy", ALL_POLICIES)
def test_replay_cost_with_fallback(benchmark, policy, tj_valid_workload):
    """Verification + fallback cost per policy on the same workload.

    KJ policies pay the cycle check for every flagged join; TJ's zero
    false positives mean zero fallback invocations — the performance
    argument of Section 7.2 in isolation.
    """
    benchmark.group = "precision-replay"
    benchmark.pedantic(
        lambda: [replay_trace(t, make_policy(policy)) for t in tj_valid_workload],
        rounds=3,
        iterations=1,
    )
