"""Experiment E8 — telemetry overhead gates.

Runs the observability-overhead instrument from
:mod:`repro.analysis.runtime_overhead`: the fork-chain and join-heavy
microshapes under three interleaved telemetry arms — ``off`` (no session
active), ``metrics`` (counters + histograms, no tracer), and ``full``
(metrics + span tracing) — and *asserts* the costs the telemetry
subsystem claims:

* metrics-only telemetry costs at most 1.05x the disabled baseline
  (median times, worst shape) — counters are per-thread sharded and
  histograms are one ``bisect`` + two adds, so breaching this means a
  lock or allocation crept onto the fork/join hot path;
* full telemetry (metrics + ring-buffer tracing) costs at most 1.25x —
  spans add contextvar set/reset plus one deque append per event;
* telemetry never changes program results (checked inside the runner).

The complementary *qualitative* claim — disabled telemetry allocates
nothing at all on the hot path — is pinned by the ``tracemalloc`` test
in ``tests/obs/test_disabled_overhead.py``, not by a timing ratio.

Results are persisted into ``BENCH_runtime.json`` (schema v3's ``obs``
block): when the file already holds a run of the full suite the obs
block is merged into it, otherwise a minimal file carrying only the obs
instrument is written.  Running this file directly (``python
benchmarks/bench_obs_overhead.py --smoke``) is what the ``obs-smoke``
CI job does.
"""

from __future__ import annotations

import os
import sys
import time

if __name__ == "__main__":  # script mode: make `repro` importable
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import pytest

from repro.analysis.io import load_runtime, save_runtime
from repro.analysis.runtime_overhead import (
    OBS_MODES,
    OBS_PARAMS,
    SMOKE_OBS_PARAMS,
    RuntimeOverheadResult,
    obs_overhead_factor,
    render_runtime_table,
    run_obs_suite,
)

#: metrics-only telemetry vs disabled, median times, worst shape
OBS_OFF_GATE = 1.05

#: full telemetry (metrics + tracing) vs disabled
OBS_ON_GATE = 1.25

OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_runtime.json"
)


def persist_obs(obs, obs_params, path: str = OUTPUT) -> RuntimeOverheadResult:
    """Merge the obs measurements into *path* (create it if needed).

    An existing ``BENCH_runtime.json`` from the full suite keeps all its
    other instruments; a missing or unreadable file is replaced by a
    minimal result carrying only the obs block (the loader and renderer
    both tolerate the empty join-chain/overhead sections).
    """
    result = None
    if os.path.exists(path):
        try:
            result = load_runtime(path)
        except (ValueError, KeyError, OSError):
            result = None  # unreadable or pre-v1: start fresh
    if result is None:
        result = RuntimeOverheadResult(
            join_chain={},
            reports=[],
            join_chain_params={},
            overhead_params={},
        )
    result.obs = obs
    result.obs_params = {k: dict(v) for k, v in obs_params.items()}
    save_runtime(result, path)
    return result


@pytest.fixture(scope="module")
def suite():
    t0 = time.perf_counter()
    obs = run_obs_suite(params=OBS_PARAMS, repetitions=7, warmup=1)
    elapsed = time.perf_counter() - t0
    assert elapsed < 120.0, f"obs suite must stay brisk (took {elapsed:.1f}s)"
    return obs


def test_telemetry_off_gate(suite):
    """Metrics-only telemetry stays within 1.05x of disabled (medians)."""
    for shape in suite:
        factor = obs_overhead_factor(suite, shape, "metrics")
        assert factor <= OBS_OFF_GATE, (
            f"metrics telemetry overhead regressed to {factor:.3f}x on "
            f"{shape} (gate: {OBS_OFF_GATE}x over disabled)"
        )


def test_telemetry_on_gate(suite):
    """Full telemetry stays within 1.25x of disabled (medians)."""
    for shape in suite:
        factor = obs_overhead_factor(suite, shape, "full")
        assert factor <= OBS_ON_GATE, (
            f"full telemetry overhead regressed to {factor:.3f}x on "
            f"{shape} (gate: {OBS_ON_GATE}x over disabled)"
        )


def test_all_arms_measured(suite):
    for shape, arms in suite.items():
        assert set(arms) == set(OBS_MODES)
        for m in arms.values():
            assert m.times, f"{shape}/{m.mode} collected no samples"
            assert all(t > 0 for t in m.times)


def test_persisted_into_bench_runtime(suite, tmp_path):
    """The obs block survives a save/load round trip, standalone or merged."""
    path = str(tmp_path / "BENCH_runtime.json")
    result = persist_obs(suite, OBS_PARAMS, path)
    loaded = load_runtime(path)
    assert set(loaded.obs) == set(suite)
    for shape in suite:
        for mode in OBS_MODES:
            assert loaded.obs[shape][mode].times == suite[shape][mode].times
    assert loaded.telemetry_off_overhead == pytest.approx(
        result.telemetry_off_overhead
    )
    assert loaded.telemetry_on_overhead == pytest.approx(result.telemetry_on_overhead)
    # a minimal (obs-only) file still renders
    assert "telemetry overhead" in render_runtime_table(loaded)
    # and merging into it again preserves the obs params
    again = persist_obs(suite, OBS_PARAMS, path)
    assert again.obs_params == {k: dict(v) for k, v in OBS_PARAMS.items()}


def test_smoke_suite_runs_fast():
    """The CI smoke configuration completes quickly."""
    t0 = time.perf_counter()
    obs = run_obs_suite(params=SMOKE_OBS_PARAMS, repetitions=1, warmup=0)
    assert time.perf_counter() - t0 < 30.0
    for arms in obs.values():
        for m in arms.values():
            assert m.times


def _main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    params = SMOKE_OBS_PARAMS if smoke else OBS_PARAMS
    reps = 7 if smoke else 9
    obs = run_obs_suite(params=params, repetitions=reps, warmup=1)
    result = persist_obs(obs, params)
    print(render_runtime_table(result))
    print(f"raw samples merged into {OUTPUT}")
    status = 0
    for shape in obs:
        off_factor = obs_overhead_factor(obs, shape, "metrics")
        on_factor = obs_overhead_factor(obs, shape, "full")
        if off_factor > OBS_OFF_GATE:
            print(
                f"REGRESSION: metrics telemetry {off_factor:.3f}x on {shape} "
                f"(gate: {OBS_OFF_GATE}x)"
            )
            status = 1
        if on_factor > OBS_ON_GATE:
            print(
                f"REGRESSION: full telemetry {on_factor:.3f}x on {shape} "
                f"(gate: {OBS_ON_GATE}x)"
            )
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
