"""Experiment E10 — predictor throughput and the simulator's overhead gate.

Runs the prediction instrument
(:func:`repro.analysis.runtime_overhead.run_predict_bench`): a seeded
chaos corpus journalled under ``policy=None``, the full
:func:`repro.predict.predict_deadlocks` pipeline timed over the
journals (events/second), and a recording ``SimRuntime(seed=None)``
against the plain cooperative scheduler on the identical fork-fan
program.  Gates:

* the deterministic simulator costs **<=2x** the cooperative runtime on
  the pure-scheduling fan — determinism and decision recording must
  stay a constant factor, not a blowup;
* the corpus actually exercises the predictor: at least one program is
  flagged and every flagged program carries a verified witness;
* at full parameters the predictor sustains a floor of journal
  events/second (the smoke shape skips the floor — tiny corpora are
  dominated by per-journal setup).

The measurement merges into ``BENCH_runtime.json`` (schema v6's
``predict`` block, via ``repro.analysis.io``) next to the wakeup,
journal, telemetry, service, and procs instruments.  Running this file
directly performs the same measurement + gates + merge; ``--smoke``
substitutes the tiny CI shape (the ``predict-smoke`` CI job uses it).
"""

from __future__ import annotations

import math
import os
import sys
import time

if __name__ == "__main__":  # script mode: make `repro` importable
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import pytest

from repro.analysis.io import load_runtime, save_runtime
from repro.analysis.runtime_overhead import (
    PREDICT_PARAMS,
    SMOKE_PREDICT_PARAMS,
    RuntimeOverheadResult,
    run_predict_bench,
)

#: recording simulator over plain cooperative scheduler, best times
SIM_OVERHEAD_GATE = 2.0

#: full-parameter predictor throughput floor (journal events/second,
#: end-to-end through partial order + search + witness replay)
MIN_EVENTS_PER_SECOND = 200.0

OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_runtime.json"
)

#: CI sets this to run the tiny corpus (throughput floor skipped)
_SMOKE = os.environ.get("REPRO_PREDICT_BENCH_SMOKE") == "1"
_PARAMS = SMOKE_PREDICT_PARAMS if _SMOKE else PREDICT_PARAMS


def merge_into_bench_file(measurement, path: str = OUTPUT) -> None:
    """Attach the instrument to ``BENCH_runtime.json``, preserving the rest."""
    if os.path.exists(path):
        result = load_runtime(path)
    else:
        result = RuntimeOverheadResult(
            join_chain={}, reports=[], join_chain_params={}, overhead_params={}
        )
    result.predict = measurement
    result.predict_params = dict(_PARAMS)
    save_runtime(result, path)


def _summary(m) -> str:
    return (
        f"predict bench: {m.events} events across {m.journals} journals "
        f"in {m.elapsed:.2f}s ({m.events_per_second:,.0f} events/s), "
        f"{m.flagged_programs} flagged, {m.predictions} witnesses; "
        f"sim {m.sim_elapsed * 1e3:.2f}ms vs coop {m.coop_elapsed * 1e3:.2f}ms "
        f"({m.sim_overhead:.2f}x) on the {m.sim_width}x{m.sim_rounds} fan"
    )


@pytest.fixture(scope="module")
def bench():
    t0 = time.perf_counter()
    m = run_predict_bench(params=_PARAMS)
    print(f"\n{_summary(m)} (total wall {time.perf_counter() - t0:.1f}s)")
    return m


def test_corpus_exercises_the_predictor(bench):
    """Dead corpora measure nothing: flags and witnesses must exist."""
    assert bench.journals == bench.programs
    assert bench.events > 0
    assert bench.flagged_programs >= 1
    assert bench.predictions >= bench.flagged_programs


def test_simulator_overhead_gate(bench):
    """Determinism + recording must cost <=2x the cooperative scheduler."""
    assert not math.isnan(bench.sim_overhead) and bench.sim_overhead > 0
    assert bench.sim_overhead <= SIM_OVERHEAD_GATE, (
        f"SimRuntime best {bench.sim_elapsed * 1e3:.2f}ms is "
        f"{bench.sim_overhead:.2f}x the cooperative baseline "
        f"{bench.coop_elapsed * 1e3:.2f}ms (gate {SIM_OVERHEAD_GATE}x)"
    )


@pytest.mark.skipif(_SMOKE, reason="throughput floor needs the full corpus")
def test_predictor_throughput_floor(bench):
    assert bench.events_per_second >= MIN_EVENTS_PER_SECOND, (
        f"predictor sustained only {bench.events_per_second:,.0f} events/s "
        f"(floor {MIN_EVENTS_PER_SECOND:,.0f})"
    )


def test_bench_merges_into_bench_runtime_json(bench, tmp_path):
    """The predict block round-trips and coexists with other instruments."""
    path = str(tmp_path / "BENCH_runtime.json")
    merge_into_bench_file(bench, path)
    loaded = load_runtime(path)
    assert loaded.predict is not None
    assert loaded.predict.events == bench.events
    assert loaded.predict_params == dict(_PARAMS)
    merge_into_bench_file(bench, path)  # a rerun replaces the block
    assert load_runtime(path).predict.events == bench.events


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:] or _SMOKE
    _PARAMS = SMOKE_PREDICT_PARAMS if smoke else PREDICT_PARAMS
    m = run_predict_bench(params=_PARAMS)
    print(_summary(m))
    status = 0
    if m.flagged_programs < 1 or m.predictions < m.flagged_programs:
        print("FAIL: the corpus produced no verified predictions")
        status = 1
    if math.isnan(m.sim_overhead) or m.sim_overhead > SIM_OVERHEAD_GATE:
        print(
            f"FAIL: simulator overhead {m.sim_overhead:.2f}x above the "
            f"{SIM_OVERHEAD_GATE}x gate"
        )
        status = 1
    if not smoke:
        if m.events_per_second < MIN_EVENTS_PER_SECOND:
            print(
                f"FAIL: {m.events_per_second:,.0f} events/s below the "
                f"{MIN_EVENTS_PER_SECOND:,.0f} floor"
            )
            status = 1
        merge_into_bench_file(m)
        print(f"predict block merged into {OUTPUT}")
    sys.exit(status)
