"""Experiment E2 — Table 2: verification overheads on the six benchmarks.

Each pytest-benchmark case times one full run of one benchmark under one
policy configuration; pytest-benchmark's grouping puts the baseline and
the three verifiers side by side per benchmark, which is Table 2's
structure.  A summary test renders the actual table (factors + geometric
means) through the harness and asserts the paper's qualitative claims.

Run: ``pytest benchmarks/bench_table2_overheads.py --benchmark-only -s``
"""

from __future__ import annotations

import pytest

from repro.analysis.table2 import overhead_summary, render_table2
from repro.benchsuite import ALL_BENCHMARKS, Harness, make_benchmark

from .conftest import POLICIES, SMALL_PARAMS


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_benchmark_under_policy(benchmark, name, policy):
    bench = make_benchmark(name, **SMALL_PARAMS[name])
    bench.build()
    pol = None if policy == "none" else policy

    def run_once():
        result, _ = bench.execute(pol)
        return result

    benchmark.group = f"table2-{name}"
    result = benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)
    assert bench.verify(result)


class TestTable2Summary:
    """One harness pass over the whole suite; asserts the headline shape."""

    @pytest.fixture(scope="class")
    def reports(self):
        harness = Harness(repetitions=3, warmup=1, policies=("KJ-VC", "KJ-SS", "TJ-SP"))
        overrides = {k.replace("-", "_"): v for k, v in SMALL_PARAMS.items()}
        return harness.measure_suite(ALL_BENCHMARKS, **overrides)

    def test_all_configurations_verified(self, reports):
        for r in reports:
            assert r.baseline.verified
            assert all(m.verified for m in r.policies.values())

    def test_render_and_print(self, reports):
        table = render_table2(reports)
        print("\n" + table)
        assert "Geom. mean" in table

    def test_nqueens_is_the_only_fallback_trigger(self, reports):
        for r in reports:
            for policy in ("KJ-VC", "KJ-SS"):
                fp = r.policies[policy].false_positives
                if r.name == "NQueens":
                    assert fp > 0
                else:
                    assert fp == 0
            assert r.policies["TJ-SP"].false_positives == 0

    def test_tj_sp_memory_beats_kj_vc_overall(self, reports):
        """The paper's headline memory claim, at the geomean level."""
        summary = overhead_summary(reports, ["KJ-VC", "KJ-SS", "TJ-SP"])
        assert summary["TJ-SP"]["memory"] <= summary["KJ-VC"]["memory"] * 1.05

    def test_verifier_space_ordering_on_many_task_benchmarks(self, reports):
        """On Crypt/Series (root forks n siblings) KJ-VC's O(n^2) state
        dwarfs TJ-SP's O(n h) with h = 1."""
        for r in reports:
            if r.name in ("Crypt", "Series"):
                assert (
                    r.policies["KJ-VC"].verifier_space_units
                    > 10 * r.policies["TJ-SP"].verifier_space_units
                )
