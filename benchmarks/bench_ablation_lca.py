"""Ablation A1 — choice of LCA algorithm (Section 5.2).

The paper implements TJ-SP and argues TJ-JP "may only pay off if the
fork tree is very deep" (their benchmarks never exceed height 8).  This
ablation measures all four TJ algorithms — plus the KJ baselines and the
KJ-CC extension — on shallow *and* deep fork trees, quantifying exactly
that trade-off.
"""

from __future__ import annotations

import random

import pytest

from repro.core import make_policy
from repro.formal.actions import Fork, Init
from repro.formal.generators import (
    balanced_fork_trace,
    chain_fork_trace,
    star_fork_trace,
)

TJ_ALGOS = ["TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM"]
KJ_ALGOS = ["KJ-VC", "KJ-SS", "KJ-CC"]

TREES = {
    "shallow-star": star_fork_trace(4000),  # height 1 (Crypt/Series shape)
    "shallow-tree": balanced_fork_trace(4095, arity=8),  # height 4 (Strassen)
    "deep-chain": chain_fork_trace(4000),  # height 3999 (adversarial)
}


def _replay(policy, trace):
    vertices = {}
    for action in trace:
        if isinstance(action, Init):
            vertices[action.task] = policy.add_child(None)
        elif isinstance(action, Fork):
            vertices[action.child] = policy.add_child(vertices[action.parent])
    return list(vertices.values())


def _query_pairs(handles, k=2000, seed=3):
    rng = random.Random(seed)
    return [(rng.choice(handles), rng.choice(handles)) for _ in range(k)]


@pytest.mark.parametrize("shape", list(TREES))
@pytest.mark.parametrize("algo", TJ_ALGOS)
def test_tj_join_query_cost(benchmark, algo, shape):
    policy = make_policy(algo)
    handles = _replay(policy, TREES[shape])
    pairs = _query_pairs(handles)

    def run():
        for a, b in pairs:
            policy.permits(a, b)

    benchmark.group = f"lca-join-{shape}"
    benchmark.pedantic(run, rounds=5, iterations=1)


@pytest.mark.parametrize("shape", list(TREES))
@pytest.mark.parametrize("algo", TJ_ALGOS)
def test_tj_fork_cost(benchmark, algo, shape):
    trace = TREES[shape]
    benchmark.group = f"lca-fork-{shape}"
    benchmark.pedantic(
        lambda: _replay(make_policy(algo), trace), rounds=5, iterations=1
    )


@pytest.mark.parametrize("algo", KJ_ALGOS)
def test_kj_fork_cost_flat_tree(benchmark, algo):
    """KJ-VC's O(n) fork copies vs KJ-SS/KJ-CC O(1)-ish on the Crypt shape."""
    trace = star_fork_trace(4000)
    benchmark.group = "kj-fork-star"
    benchmark.pedantic(
        lambda: _replay(make_policy(algo), trace), rounds=3, iterations=1
    )


class TestAblationClaims:
    def test_jp_beats_gt_and_sp_on_deep_chains(self):
        """The paper's Section 5.2.2 conjecture, verified."""
        import time

        trace = TREES["deep-chain"]
        costs = {}
        for algo in ("TJ-GT", "TJ-JP", "TJ-SP"):
            policy = make_policy(algo)
            handles = _replay(policy, trace)
            pairs = _query_pairs(handles, k=1500)
            t0 = time.perf_counter()
            for a, b in pairs:
                policy.permits(a, b)
            costs[algo] = time.perf_counter() - t0
        assert costs["TJ-JP"] < costs["TJ-GT"]
        assert costs["TJ-JP"] < costs["TJ-SP"]

    def test_space_ranking_on_deep_chains(self):
        """O(n) [GT, OM, interned SP] < O(n log h) [JP] < O(n h) [legacy SP]."""
        units = {}
        for algo in (*TJ_ALGOS, "TJ-SP-legacy"):
            policy = make_policy(algo)
            _replay(policy, TREES["deep-chain"])
            units[algo] = policy.space_units()
        assert units["TJ-GT"] < units["TJ-JP"] < units["TJ-SP-legacy"]
        assert units["TJ-OM"] < units["TJ-JP"]
        # interning collapses TJ-SP to O(n): one shared node per task
        assert units["TJ-SP"] < units["TJ-JP"]

    def test_kj_cc_space_beats_kj_vc_on_flat_trees(self):
        trace = star_fork_trace(3000)
        vc, cc = make_policy("KJ-VC"), make_policy("KJ-CC")
        _replay(vc, trace)
        _replay(cc, trace)
        assert cc.space_units() < vc.space_units() / 50
