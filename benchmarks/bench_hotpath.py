"""Experiment E6 — verifier hot-path microbenchmarks and regression gate.

Measures the fork/join verifier pipeline (``Verifier`` + policy) on four
synthetic shapes — join-heavy (barrier re-joins), fork-heavy, deep-tree
and wide-tree — across all TJ variants and the KJ baselines, and
*asserts* the perf properties this repo's hot-path work claims:

* the flat struct-of-arrays TJ-SP is at least 2x the seed tuple-per-task
  implementation (kept as ``TJ-SP-legacy``) on the join-heavy shape —
  on the *pure-Python* kernel as well as the compiled one;
* flat TJ-SP meets KJ-VC per-event cost on join-heavy within 1.1x (the
  constant-factor contest the paper says TJ should win);
* the flat representation never *loses* against the seed on any shape
  (within noise);
* all implementations agree on every verdict (spot-checked here; the
  exhaustive property suite lives in
  ``tests/core/test_flat_tj_sp.py`` / ``tests/core/test_interned_paths.py``).

The run also emits ``BENCH_hotpath.json`` (raw repetition times plus the
kernel backend per measurement, via ``repro.analysis.io``) so every
future PR has a stored perf trajectory; ``python -m repro.tools.cli
bench-hotpath`` produces the same file from the command line.  CI runs
this module twice — ``REPRO_TJ_BACKEND=c`` and ``=py`` — so the portable
fallback cannot silently regress behind the compiled kernel.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis.hotpath import (
    HOTPATH_POLICIES,
    HOTPATH_SHAPES,
    SHAPE_PARAMS,
    render_hotpath_table,
    run_hotpath_suite,
    run_shape,
    speedup,
)
from repro.analysis.io import hotpath_from_json, save_hotpath

#: the regression gate for the flat representation + verdict caching
#: over the seed tuples (raised from 1.3 when the struct-of-arrays core
#: landed: measured ~6x pure-Python, ~11x compiled)
JOIN_HEAVY_GATE = 2.0

#: flat TJ-SP per-event cost must stay within this factor of KJ-VC on
#: join-heavy (measured ~0.7x pure-Python, ~0.4x compiled)
MAX_KJ_RATIO = 1.1

OUTPUT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_hotpath.json")


@pytest.fixture(scope="module")
def measurements():
    t0 = time.perf_counter()
    ms = run_hotpath_suite(repetitions=3)
    elapsed = time.perf_counter() - t0
    assert elapsed < 60.0, f"hotpath suite must stay under a minute (took {elapsed:.1f}s)"
    return ms


def test_emits_bench_hotpath_json(measurements):
    save_hotpath(measurements, OUTPUT, SHAPE_PARAMS)
    with open(OUTPUT) as fh:
        loaded, params = hotpath_from_json(fh.read())
    assert len(loaded) == len(HOTPATH_SHAPES) * len(HOTPATH_POLICIES)
    assert params == SHAPE_PARAMS
    for m in loaded:
        assert m.times and m.events > 0


def test_join_heavy_speedup_gate(measurements):
    """Flat + cached TJ-SP must beat the seed by >= 2x where it counts."""
    factor = speedup(measurements, "join-heavy")
    print("\n" + render_hotpath_table(measurements))
    assert factor >= JOIN_HEAVY_GATE, (
        f"join-heavy TJ-SP speedup regressed to {factor:.2f}x "
        f"(gate: {JOIN_HEAVY_GATE}x over TJ-SP-legacy)"
    )


def test_join_heavy_meets_kj_vc(measurements):
    """The paper's constant-factor contest: TJ-SP vs KJ-VC per event.

    This holds for the pure-Python kernel too (the batch verdict cache
    does most of the work on barrier-style re-joins), so the gate is
    backend-independent.
    """
    ratio = 1.0 / speedup(measurements, "join-heavy", baseline="KJ-VC")
    tj = next(
        m for m in measurements if (m.shape, m.policy) == ("join-heavy", "TJ-SP")
    )
    assert ratio <= MAX_KJ_RATIO, (
        f"join-heavy TJ-SP ({tj.backend} backend) costs {ratio:.2f}x KJ-VC "
        f"per event (gate: <= {MAX_KJ_RATIO}x)"
    )


@pytest.mark.parametrize("shape", HOTPATH_SHAPES)
def test_flat_never_loses(measurements, shape):
    """On every shape the flat TJ-SP stays within noise of the seed."""
    assert speedup(measurements, shape) > 0.7


def test_fork_heavy_flat_wins(measurements):
    """O(1) row append must beat the O(h) tuple copy on fork storms.

    Both kernels must now win outright: the thread-affine append buffer
    removed the allocation lock from the pure-Python fork path (measured
    ~1.4x over the legacy tuple copy on this shape; the compiled kernel
    wins by more).
    """
    factor = speedup(measurements, "fork-heavy")
    assert factor > 1.1, (
        f"fork-heavy TJ-SP speedup regressed to {factor:.2f}x over "
        f"TJ-SP-legacy (gate: 1.1x on every backend)"
    )


@pytest.mark.parametrize("shape", HOTPATH_SHAPES)
def test_event_counts_match_across_policies(measurements, shape):
    """Every policy performed the identical event stream per shape."""
    events = {m.events for m in measurements if m.shape == shape}
    assert len(events) == 1


def test_smoke_cell_runs_fast():
    """One tiny cell (the CI smoke probe) completes in well under 10s."""
    from repro.analysis.hotpath import SMOKE_PARAMS

    t0 = time.perf_counter()
    m = run_shape("join-heavy", "TJ-SP", repetitions=1, params=SMOKE_PARAMS["join-heavy"])
    assert time.perf_counter() - t0 < 10.0
    assert m.events > 0


@pytest.mark.parametrize("shape", HOTPATH_SHAPES)
def test_benchmark_series(benchmark, shape):
    """pytest-benchmark series for the interned TJ-SP per shape."""
    benchmark.group = f"hotpath-{shape}"
    benchmark.pedantic(
        lambda: run_shape(shape, "TJ-SP", repetitions=1, warmup=0),
        rounds=3,
        iterations=1,
    )
