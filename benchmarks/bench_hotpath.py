"""Experiment E6 — verifier hot-path microbenchmarks and regression gate.

Measures the fork/join verifier pipeline (``Verifier`` + policy) on four
synthetic shapes — join-heavy (barrier re-joins), fork-heavy, deep-tree
and wide-tree — across all TJ variants and the KJ baselines, and
*asserts* the perf properties this repo's hot-path work claims:

* the interned TJ-SP is at least 1.3x the seed tuple-per-task
  implementation (kept as ``TJ-SP-legacy``) on the join-heavy shape;
* interning never *loses* against the seed on any shape (within noise);
* the two implementations agree on every verdict (spot-checked here;
  the exhaustive property test lives in
  ``tests/core/test_interned_paths.py``).

The run also emits ``BENCH_hotpath.json`` (raw repetition times, via
``repro.analysis.io``) so every future PR has a stored perf trajectory;
``python -m repro.tools.cli bench-hotpath`` produces the same file from
the command line.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis.hotpath import (
    HOTPATH_POLICIES,
    HOTPATH_SHAPES,
    SHAPE_PARAMS,
    render_hotpath_table,
    run_hotpath_suite,
    run_shape,
    speedup,
)
from repro.analysis.io import hotpath_from_json, save_hotpath

#: the regression gate for the interned representation + verdict caching
JOIN_HEAVY_GATE = 1.3

OUTPUT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_hotpath.json")


@pytest.fixture(scope="module")
def measurements():
    t0 = time.perf_counter()
    ms = run_hotpath_suite(repetitions=3)
    elapsed = time.perf_counter() - t0
    assert elapsed < 60.0, f"hotpath suite must stay under a minute (took {elapsed:.1f}s)"
    return ms


def test_emits_bench_hotpath_json(measurements):
    save_hotpath(measurements, OUTPUT, SHAPE_PARAMS)
    with open(OUTPUT) as fh:
        loaded, params = hotpath_from_json(fh.read())
    assert len(loaded) == len(HOTPATH_SHAPES) * len(HOTPATH_POLICIES)
    assert params == SHAPE_PARAMS
    for m in loaded:
        assert m.times and m.events > 0


def test_join_heavy_speedup_gate(measurements):
    """Interned + cached TJ-SP must beat the seed by >= 1.3x where it counts."""
    factor = speedup(measurements, "join-heavy")
    print("\n" + render_hotpath_table(measurements))
    assert factor >= JOIN_HEAVY_GATE, (
        f"join-heavy TJ-SP speedup regressed to {factor:.2f}x "
        f"(gate: {JOIN_HEAVY_GATE}x over TJ-SP-legacy)"
    )


@pytest.mark.parametrize("shape", HOTPATH_SHAPES)
def test_interning_never_loses(measurements, shape):
    """On every shape the interned TJ-SP stays within noise of the seed."""
    assert speedup(measurements, shape) > 0.7


def test_fork_heavy_interning_wins(measurements):
    """O(1) node allocation must beat the O(h) tuple copy on fork storms."""
    assert speedup(measurements, "fork-heavy") > 1.1


@pytest.mark.parametrize("shape", HOTPATH_SHAPES)
def test_event_counts_match_across_policies(measurements, shape):
    """Every policy performed the identical event stream per shape."""
    events = {m.events for m in measurements if m.shape == shape}
    assert len(events) == 1


def test_smoke_cell_runs_fast():
    """One tiny cell (the CI smoke probe) completes in well under 10s."""
    from repro.analysis.hotpath import SMOKE_PARAMS

    t0 = time.perf_counter()
    m = run_shape("join-heavy", "TJ-SP", repetitions=1, params=SMOKE_PARAMS["join-heavy"])
    assert time.perf_counter() - t0 < 10.0
    assert m.events > 0


@pytest.mark.parametrize("shape", HOTPATH_SHAPES)
def test_benchmark_series(benchmark, shape):
    """pytest-benchmark series for the interned TJ-SP per shape."""
    benchmark.group = f"hotpath-{shape}"
    benchmark.pedantic(
        lambda: run_shape(shape, "TJ-SP", repetitions=1, warmup=0),
        rounds=3,
        iterations=1,
    )
