"""Ablation A3 — cost of frequent fallback triggering (Section 7.2).

"Prior work has not established how KJ performs when a deadlock-free
target program frequently triggers the fallback mechanism."  NQueens is
exactly that program: its unordered root joins trip KJ on a large
fraction of joins.  This experiment sweeps the task count and compares
KJ-SS+Armus against TJ-SP+Armus on run time and fallback activity.
"""

from __future__ import annotations

import time

import pytest

from repro.benchsuite import make_benchmark

# (n, cutoff) -> roughly increasing task counts
SWEEP = [(7, 2), (8, 2), (8, 3), (9, 3)]


@pytest.mark.parametrize("policy", ["none", "TJ-SP", "KJ-SS"])
@pytest.mark.parametrize("n,cutoff", SWEEP)
def test_nqueens_sweep(benchmark, policy, n, cutoff):
    bench = make_benchmark("NQueens", n=n, cutoff=cutoff)
    bench.build()
    pol = None if policy == "none" else policy

    def run_once():
        result, _ = bench.execute(pol)
        return result

    benchmark.group = f"fallback-nqueens-{n}-{cutoff}"
    result = benchmark.pedantic(run_once, rounds=3, iterations=1, warmup_rounds=1)
    assert bench.verify(result)


class TestFallbackActivity:
    def test_kj_fallback_rate_grows_with_task_count(self):
        rates = []
        for n, cutoff in SWEEP:
            bench = make_benchmark("NQueens", n=n, cutoff=cutoff)
            _, rt = bench.execute("KJ-SS")
            stats = rt.verifier.stats
            rates.append(
                (
                    stats.joins_checked,
                    rt.detector.stats.false_positives / stats.joins_checked,
                )
            )
        print("\nNQueens KJ-SS fallback rates:", rates)
        # every configuration triggers the fallback on a large fraction
        assert all(rate > 0.1 for _, rate in rates)

    def test_tj_pays_no_fallback_on_any_size(self):
        for n, cutoff in SWEEP:
            bench = make_benchmark("NQueens", n=n, cutoff=cutoff)
            _, rt = bench.execute("TJ-SP")
            assert rt.detector.stats.false_positives == 0
            assert rt.detector.stats.cycle_checks == 0

    def test_verification_cost_ratio(self):
        """TJ-SP's verification work on NQueens is cheaper than KJ-SS's
        (no fallback cycle checks, no knowledge walks)."""
        bench = make_benchmark("NQueens", n=9, cutoff=3)
        bench.build()
        timings = {}
        for policy in ("TJ-SP", "KJ-SS"):
            bench.execute(policy)  # warmup
            t0 = time.perf_counter()
            for _ in range(3):
                result, _ = bench.execute(policy)
            timings[policy] = time.perf_counter() - t0
            assert bench.verify(result)
        print("\nNQueens timings:", timings)
        # allow generous noise margin; the claim is "not slower"
        assert timings["TJ-SP"] <= timings["KJ-SS"] * 1.5
