"""Shared configuration for the benchmark harness.

Every file in this directory regenerates one table or figure of the
paper (see DESIGN.md's per-experiment index).  Parameters are scaled so
the whole directory completes in a few minutes; the same code paths
accept the paper-scale parameters via each benchmark's ``paper_params``.
"""

from __future__ import annotations

import pytest

#: scaled-down parameters used across the bench files
SMALL_PARAMS = {
    "Jacobi": {"n": 96, "blocks": 4, "iterations": 4},
    "Smith-Waterman": {"length": 240, "chunks": 6},
    "Crypt": {"size_bytes": 256 * 1024, "tasks": 128},
    "Strassen": {"n": 128, "cutoff": 64},
    "Series": {"coefficients": 300, "samples": 100},
    "NQueens": {"n": 8, "cutoff": 3},
}

POLICIES = ("none", "KJ-VC", "KJ-SS", "TJ-SP")


@pytest.fixture(scope="session")
def small_params():
    return SMALL_PARAMS
