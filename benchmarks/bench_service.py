"""Experiment E8 — remote-verification soak and the flat-RSS gate.

Drives the verification sidecar (:mod:`repro.service`) under sustained
load and *asserts* the robustness properties the fault-tolerant sidecar
claims:

* at least 100k joins round-trip through a real sidecar over real TCP
  and every verdict is correct (a parent joining its own child is
  TJ-permitted; one ``False`` fails the soak);
* the client process's resident set stays **flat** across the soak —
  the client's replay buffer must be ack-pruned and the server's
  per-session state must not grow with traffic volume, so neither side
  can leak per-join memory;
* the soak runs clean: zero degradations, zero reconciles — on a
  healthy loopback link the client never falls back to local
  verification.

The measurement merges into ``BENCH_runtime.json`` (schema v4's
``service`` block, via ``repro.analysis.io``) next to the wakeup,
journal, and telemetry instruments, so every future PR has a stored
soak trajectory.  Existing blocks in the file are preserved; a missing
or old-schema file is tolerated.  Running this file directly (``python
benchmarks/bench_service.py``) performs the same soak + gates + merge —
which is what the ``service-smoke`` CI job does.
"""

from __future__ import annotations

import math
import os
import sys
import time

if __name__ == "__main__":  # script mode: make `repro` importable
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import pytest

from repro.analysis.io import load_runtime, save_runtime
from repro.analysis.runtime_overhead import (
    SERVICE_PARAMS,
    RuntimeOverheadResult,
    run_service_soak,
)

#: the soak must verify at least this many joins remotely
MIN_JOINS = 100_000

#: after/before RSS bound.  The soak's steady state allocates nothing
#: per join (the replay buffer is ack-pruned; verdict lists are
#: transient), so the factor sits at ~1.00x; the bound leaves room for
#: allocator high-water effects while catching any per-join leak — at
#: 100k joins even 100 bytes/join would add ~10 MB and breach it.
RSS_GROWTH_GATE = 1.25

#: absolute slack (kB) under the growth gate, so a tiny baseline RSS
#: cannot make the relative bound spuriously tight
RSS_SLACK_KB = 8 * 1024

OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_runtime.json"
)


def merge_into_bench_file(measurement, path: str = OUTPUT) -> None:
    """Attach the soak to ``BENCH_runtime.json``, preserving other blocks.

    Loads whatever is there (any supported schema — older files simply
    have no service block yet), swaps in this measurement, and rewrites
    at the current schema version.  No file yet means the soak stands
    alone in a fresh one.
    """
    if os.path.exists(path):
        result = load_runtime(path)
    else:
        result = RuntimeOverheadResult(
            join_chain={}, reports=[], join_chain_params={}, overhead_params={}
        )
    result.service = measurement
    result.service_params = dict(SERVICE_PARAMS)
    save_runtime(result, path)


@pytest.fixture(scope="module")
def soak():
    t0 = time.perf_counter()
    m = run_service_soak(params=SERVICE_PARAMS)
    elapsed = time.perf_counter() - t0
    assert elapsed < 120.0, f"service soak must stay brisk (took {elapsed:.1f}s)"
    return m


def test_soak_verifies_at_least_100k_joins(soak):
    print(
        f"\nservice soak: {soak.joins} joins in {soak.elapsed:.2f}s "
        f"({soak.joins_per_second:,.0f} joins/s), RSS {soak.rss_before_kb} -> "
        f"{soak.rss_after_kb} kB (growth {soak.rss_growth:.3f}x)"
    )
    assert soak.joins >= MIN_JOINS


def test_soak_runs_clean(soak):
    """A healthy loopback sidecar never degrades the client."""
    assert soak.degradations == 0
    assert soak.reconciles == 0


def test_soak_rss_stays_flat(soak):
    """Neither endpoint may grow memory with remote-verified join volume."""
    if not soak.rss_before_kb:
        pytest.skip("no /proc/self/status on this platform")
    bound_kb = soak.rss_before_kb * RSS_GROWTH_GATE + RSS_SLACK_KB
    assert soak.rss_after_kb <= bound_kb, (
        f"client RSS grew {soak.rss_before_kb} -> {soak.rss_after_kb} kB "
        f"over {soak.joins} remote joins (bound {bound_kb:.0f} kB): "
        f"a per-join leak in the replay buffer or session state"
    )
    assert not math.isnan(soak.rss_growth)


def test_soak_merges_into_bench_runtime_json(soak, tmp_path):
    """The service block round-trips and coexists with other instruments."""
    path = str(tmp_path / "BENCH_runtime.json")
    merge_into_bench_file(soak, path)
    loaded = load_runtime(path)
    assert loaded.service is not None
    assert loaded.service.joins == soak.joins
    assert loaded.service_params == dict(SERVICE_PARAMS)
    # merging again (a rerun) replaces the block, not the file
    merge_into_bench_file(soak, path)
    assert load_runtime(path).service.joins == soak.joins


if __name__ == "__main__":
    m = run_service_soak(params=SERVICE_PARAMS)
    print(
        f"service soak: {m.joins} joins in {m.elapsed:.2f}s "
        f"({m.joins_per_second:,.0f} joins/s), RSS {m.rss_before_kb} -> "
        f"{m.rss_after_kb} kB (peak {m.rss_peak_kb}, growth {m.rss_growth:.3f}x), "
        f"degradations {m.degradations}"
    )
    status = 0
    if m.joins < MIN_JOINS:
        print(f"FAIL: soak verified {m.joins} joins, below the {MIN_JOINS} gate")
        status = 1
    if m.degradations or m.reconciles:
        print("FAIL: client degraded during a healthy-loopback soak")
        status = 1
    if m.rss_before_kb:
        bound_kb = m.rss_before_kb * RSS_GROWTH_GATE + RSS_SLACK_KB
        if m.rss_after_kb > bound_kb:
            print(
                f"FAIL: RSS grew {m.rss_before_kb} -> {m.rss_after_kb} kB "
                f"(bound {bound_kb:.0f} kB)"
            )
            status = 1
    merge_into_bench_file(m)
    print(f"service block merged into {OUTPUT}")
    sys.exit(status)
