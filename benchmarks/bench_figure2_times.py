"""Experiment E3 — Figure 2: absolute execution times with 95% CIs.

The same grid of runs as Table 2, presented as the paper's Figure 2: a
per-benchmark group of absolute times for the baseline and each policy
with confidence intervals.  The rendered ASCII chart is printed (run
pytest with ``-s`` to see it) and its statistical invariants asserted.
"""

from __future__ import annotations

import pytest

from repro.analysis.figure2 import figure2_data, render_figure2
from repro.analysis.stats import confidence_interval
from repro.benchsuite import ALL_BENCHMARKS, Harness, make_benchmark

from .conftest import SMALL_PARAMS


@pytest.fixture(scope="module")
def reports():
    harness = Harness(
        repetitions=5,
        warmup=1,
        policies=("KJ-VC", "KJ-SS", "TJ-SP"),
        measure_memory=False,  # Figure 2 is time-only
    )
    overrides = {k.replace("-", "_"): v for k, v in SMALL_PARAMS.items()}
    return harness.measure_suite(ALL_BENCHMARKS, **overrides)


def test_figure2_renders(reports):
    chart = render_figure2(reports)
    print("\n" + chart)
    for name in ALL_BENCHMARKS:
        assert name in chart
    assert "95% CI" in chart


def test_figure2_data_shape(reports):
    data = figure2_data(reports)
    assert set(data) == set(ALL_BENCHMARKS)
    for group in data.values():
        assert set(group) == {"baseline", "KJ-VC", "KJ-SS", "TJ-SP"}
        for mu, half in group.values():
            assert mu > 0 and half >= 0


def test_confidence_intervals_cover_the_samples_mean(reports):
    for r in reports:
        mu, half = confidence_interval(r.baseline.times)
        assert abs(mu - r.baseline.mean_time) < 1e-12
        # CI half-width is bounded by the sample range for sane data
        spread = max(r.baseline.times) - min(r.baseline.times)
        assert half <= max(spread * 7, 1e-9)


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_per_benchmark_timing_sample(benchmark, name):
    """pytest-benchmark series for the figure's baseline bars."""
    bench = make_benchmark(name, **SMALL_PARAMS[name])
    bench.build()
    benchmark.group = "figure2-baseline"
    result = benchmark.pedantic(
        lambda: bench.execute(None)[0], rounds=3, iterations=1, warmup_rounds=1
    )
    assert bench.verify(result)
