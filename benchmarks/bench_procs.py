"""Experiment E9 — the multi-process soak and its scaling gates.

Soaks :class:`~repro.runtime.procs.ProcessRuntime` on the fork-heavy
deep shape (dispatches x mids x leaves, every join TJ-SP-verified) and
asserts the properties the multi-process runtime claims:

* the run **never diverges** from the single-process threaded reference
  — same subtree results, zero rejected joins, zero worker deaths;
* the worker-local shard resolves the overwhelming majority of joins —
  only the dispatched tasks' own joins escalate, so the escalation
  ratio must stay a small minority;
* at full parameters the soak verifies **over one million tasks across
  at least four workers**;
* aggregate verified tasks/second reaches **>=3x** the single-process
  threaded baseline — *when the box can actually run the pool in
  parallel*.  The speedup gate conditions on ``cpu_count >= workers+1``
  because on fewer cores the pool pays IPC for no parallelism; the
  measured cpu count and the honest speedup are recorded either way.

The measurement merges into ``BENCH_runtime.json`` (schema v5's
``procs`` block, via ``repro.analysis.io``) next to the wakeup,
journal, telemetry, and service instruments.  Running this file
directly performs the same soak + gates + merge; ``--smoke`` substitutes
the tiny CI shape and skips the volume/speedup gates (the ``procs-smoke``
CI job uses it, with the full soak left to benchmarking machines).
"""

from __future__ import annotations

import math
import os
import sys
import time

if __name__ == "__main__":  # script mode: make `repro` importable
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import pytest

from repro.analysis.io import load_runtime, save_runtime
from repro.analysis.runtime_overhead import (
    PROCS_PARAMS,
    SMOKE_PROCS_PARAMS,
    RuntimeOverheadResult,
    run_procs_soak,
)

#: the full soak must verify at least this many tasks
MIN_TASKS = 1_000_000

#: multi-process over threaded verified-tasks/s, enforced only when the
#: box has at least workers+1 cores (each process can own one)
SPEEDUP_GATE = 3.0

#: joins escalated to the sidecar path must stay a small minority: the
#: deep shape puts ~1% of joins on the cross-process edge, and the gate
#: leaves room for the smoke shape's shallower tree
ESCALATION_GATE = 0.2

OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_runtime.json"
)

#: CI sets this to run the tiny shape (volume/speedup gates skipped)
_SMOKE = os.environ.get("REPRO_PROCS_SOAK_SMOKE") == "1"
_PARAMS = SMOKE_PROCS_PARAMS if _SMOKE else PROCS_PARAMS


def merge_into_bench_file(measurement, path: str = OUTPUT) -> None:
    """Attach the soak to ``BENCH_runtime.json``, preserving other blocks."""
    if os.path.exists(path):
        result = load_runtime(path)
    else:
        result = RuntimeOverheadResult(
            join_chain={}, reports=[], join_chain_params={}, overhead_params={}
        )
    result.procs = measurement
    result.procs_params = dict(_PARAMS)
    save_runtime(result, path)


def _summary(m) -> str:
    return (
        f"procs soak: {m.tasks} tasks in {m.elapsed:.2f}s "
        f"({m.tasks_per_second:,.0f} tasks/s) across {m.workers} workers "
        f"[{m.spawn_paths}] vs threaded {m.baseline_tasks_per_second:,.0f} "
        f"tasks/s (speedup {m.speedup:.2f}x, {m.cpu_count} cpu), "
        f"escalation {m.escalation_ratio:.4f}, "
        f"divergences {m.divergences}, deaths {m.worker_deaths}"
    )


@pytest.fixture(scope="module")
def soak():
    t0 = time.perf_counter()
    m = run_procs_soak(params=_PARAMS)
    print(f"\n{_summary(m)} (total wall {time.perf_counter() - t0:.1f}s)")
    return m


def test_soak_never_diverges(soak):
    """Zero divergence from the all-local reference is non-negotiable."""
    assert soak.divergences == 0
    assert soak.worker_deaths == 0


def test_soak_local_shard_resolves_the_majority(soak):
    assert soak.local_joins > soak.cross_joins
    assert soak.escalation_ratio <= ESCALATION_GATE
    assert soak.cross_joins > 0  # the escalation path did run


@pytest.mark.skipif(_SMOKE, reason="volume gate needs the full parameters")
def test_soak_verifies_at_least_1m_tasks(soak):
    assert soak.tasks >= MIN_TASKS
    assert soak.workers >= 4


def test_soak_speedup_gate(soak):
    """>=3x aggregate throughput — on boxes that can host the pool."""
    assert not math.isnan(soak.speedup) and soak.speedup > 0
    if _SMOKE:
        pytest.skip("speedup gate needs the full parameters")
    if not soak.multi_core:
        pytest.skip(
            f"{soak.cpu_count} cpu < {soak.workers + 1} processes: the pool "
            f"cannot run in parallel here (measured {soak.speedup:.2f}x, "
            f"recorded honestly)"
        )
    assert soak.speedup >= SPEEDUP_GATE, (
        f"multi-process throughput {soak.tasks_per_second:,.0f} tasks/s is "
        f"only {soak.speedup:.2f}x the threaded baseline "
        f"{soak.baseline_tasks_per_second:,.0f} tasks/s"
    )


def test_soak_merges_into_bench_runtime_json(soak, tmp_path):
    """The procs block round-trips and coexists with other instruments."""
    path = str(tmp_path / "BENCH_runtime.json")
    merge_into_bench_file(soak, path)
    loaded = load_runtime(path)
    assert loaded.procs is not None
    assert loaded.procs.tasks == soak.tasks
    assert loaded.procs_params == dict(_PARAMS)
    merge_into_bench_file(soak, path)  # a rerun replaces the block
    assert load_runtime(path).procs.tasks == soak.tasks


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv[1:] or _SMOKE
    params = SMOKE_PROCS_PARAMS if smoke else PROCS_PARAMS
    _PARAMS = params
    m = run_procs_soak(params=params)
    print(_summary(m))
    status = 0
    if m.divergences or m.worker_deaths:
        print("FAIL: the soak diverged from the all-local reference")
        status = 1
    if m.local_joins <= m.cross_joins or m.escalation_ratio > ESCALATION_GATE:
        print(
            f"FAIL: escalation ratio {m.escalation_ratio:.4f} — the local "
            f"shard must resolve the majority of joins"
        )
        status = 1
    if not smoke:
        if m.tasks < MIN_TASKS or m.workers < 4:
            print(f"FAIL: {m.tasks} tasks / {m.workers} workers below the soak floor")
            status = 1
        if m.multi_core and m.speedup < SPEEDUP_GATE:
            print(f"FAIL: speedup {m.speedup:.2f}x below the {SPEEDUP_GATE}x gate")
            status = 1
        elif not m.multi_core:
            print(
                f"note: {m.cpu_count} cpu < {m.workers + 1} processes — "
                f"speedup gate not applicable; recorded {m.speedup:.2f}x"
            )
        merge_into_bench_file(m)
        print(f"procs block merged into {OUTPUT}")
    sys.exit(status)
