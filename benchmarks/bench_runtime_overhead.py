"""Experiment E7 — end-to-end runtime overhead and the wakeup gate.

Measures whole programs on the real runtimes with the supervision layer
in the loop, and *asserts* the perf properties the event-driven runtime
rewrite claims:

* the event-driven wait protocol is at least 2x faster than the
  poll-loop baseline on the join-latency microshape (a fork-chain
  unwind whose wakeup lags compound under polling);
* TJ-SP's end-to-end geomean overhead over ``policy=None`` on the
  Table-2-style configs stays under a stated bound — the number the
  paper's 1.06x headline rests on;
* the crash-consistent trace journal costs at most 1.25x on the fork
  chain — the journal's durability worst case, since every level blocks
  and so pays a critical flush-before-sleep ``block`` record on top of
  fork/verdict/unblock/join;
* swapping wait protocols never changes program results (checked inside
  the microshape runner).

The run also emits ``BENCH_runtime.json`` (raw samples, via
``repro.analysis.io``) so every future PR has a stored perf trajectory;
``python -m repro.tools.cli bench-runtime`` produces the same file from
the command line, and running this file directly (``python
benchmarks/bench_runtime_overhead.py --smoke``) delegates to that CLI —
which is what the ``runtime-bench-smoke`` CI job does.
"""

from __future__ import annotations

import os
import sys
import time

if __name__ == "__main__":  # script mode: make `repro` importable
    _SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import pytest

from repro.analysis.io import runtime_from_json, save_runtime
from repro.analysis.runtime_overhead import (
    JOURNAL_MODES,
    OVERHEAD_PARAMS,
    RUNTIME_POLICIES,
    WAIT_MODES,
    join_wakeup_speedup,
    measure_join_chain,
    overhead_factor,
    render_runtime_table,
    run_runtime_suite,
)

#: the headline regression gate: event-driven joins vs the poll loop
JOIN_WAKEUP_GATE = 2.0

#: end-to-end TJ-SP geomean overhead bound on these configs (measured
#: ~1.05x on an idle machine; the bound leaves room for CI noise while
#: still catching a runtime-layer regression outright)
TJSP_OVERHEAD_BOUND = 2.0

#: journal-on vs journal-off bound on the fork chain (measured ~1.03x;
#: every chain level pays the journal's priciest path — a critical
#: flush-before-sleep block record — so a breach here means the write
#: path itself regressed, e.g. per-record fsync or unbatched writes)
JOURNAL_OVERHEAD_GATE = 1.25

OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_runtime.json"
)


@pytest.fixture(scope="module")
def result():
    t0 = time.perf_counter()
    res = run_runtime_suite(repetitions=3)
    elapsed = time.perf_counter() - t0
    assert elapsed < 120.0, f"runtime suite must stay brisk (took {elapsed:.1f}s)"
    return res


def test_emits_bench_runtime_json(result):
    save_runtime(result, OUTPUT)
    with open(OUTPUT) as fh:
        loaded = runtime_from_json(fh.read())
    assert set(loaded.join_chain) == set(WAIT_MODES)
    assert len(loaded.reports) == len(OVERHEAD_PARAMS)
    for m in loaded.join_chain.values():
        assert m.times
    for report in loaded.reports:
        assert report.baseline.times
        for policy in RUNTIME_POLICIES:
            assert report.policies[policy].times
    assert set(loaded.journal) == set(JOURNAL_MODES)
    for m in loaded.journal.values():
        assert m.times
    # the serialised factors must survive the round trip exactly
    assert loaded.join_speedup == pytest.approx(result.join_speedup)
    assert loaded.overhead("TJ-SP") == pytest.approx(result.overhead("TJ-SP"))
    assert loaded.journal_overhead == pytest.approx(result.journal_overhead)


def test_join_wakeup_speedup_gate(result):
    """Targeted wakeups must beat the poll loop by >= 2x on the unwind."""
    factor = result.join_speedup
    print("\n" + render_runtime_table(result))
    assert factor >= JOIN_WAKEUP_GATE, (
        f"event-driven join speedup regressed to {factor:.2f}x "
        f"(gate: {JOIN_WAKEUP_GATE}x over the polling baseline)"
    )


def test_event_unwind_is_tickless(result):
    """The event-driven unwind costs far less than one 50 ms poll tick
    beyond the leaf sleep, even with a whole chain of joins stacked."""
    assert result.join_chain["event"].unwind_overhead < 0.05


def test_tjsp_end_to_end_overhead_bound(result):
    """TJ-SP whole-program overhead stays bounded on the smoke-scale
    configs (the paper-scale analogue of Table 2's 1.06x geomean)."""
    factor = result.overhead("TJ-SP")
    assert factor <= TJSP_OVERHEAD_BOUND, (
        f"TJ-SP end-to-end overhead regressed to {factor:.3f}x "
        f"(bound: {TJSP_OVERHEAD_BOUND}x over policy=None)"
    )


def test_journal_overhead_gate(result):
    """The trace journal's durability worst case stays under 1.25x."""
    factor = result.journal_overhead
    assert factor <= JOURNAL_OVERHEAD_GATE, (
        f"journal-on overhead regressed to {factor:.3f}x on the fork chain "
        f"(gate: {JOURNAL_OVERHEAD_GATE}x over journal-off)"
    )
    # and the journal-on runs actually journalled something
    assert result.journal["on"].records > 0
    assert result.journal["off"].records == 0


def test_every_policy_reported(result):
    """Each report carries a factor for every policy in the grid."""
    for report in result.reports:
        for policy in RUNTIME_POLICIES:
            assert overhead_factor(report, policy) > 0


def test_smoke_suite_runs_fast():
    """The CI smoke probe (one microshape cell) completes quickly."""
    t0 = time.perf_counter()
    m = measure_join_chain("event", depth=4, leaf_sleep=0.01, repetitions=1)
    assert time.perf_counter() - t0 < 10.0
    assert m.times


def test_speedup_helper_matches_manual(result):
    chain = result.join_chain
    manual = chain["polling"].best_time / chain["event"].best_time
    assert join_wakeup_speedup(chain) == pytest.approx(manual)


if __name__ == "__main__":
    from repro.tools.cli import main

    argv = sys.argv[1:]
    cli_args = ["bench-runtime", "--json", OUTPUT]
    if "--smoke" in argv:
        argv.remove("--smoke")
        cli_args.append("--smoke")
    cli_args += [
        "--min-join-speedup",
        str(JOIN_WAKEUP_GATE),
        "--max-overhead",
        str(TJSP_OVERHEAD_BOUND),
        "--max-journal-overhead",
        str(JOURNAL_OVERHEAD_GATE),
    ] + argv
    sys.exit(main(cli_args))
