"""Experiment E1 — Table 1: per-operation verifier costs by algorithm.

Benchmarks ``add_child`` (fork) and ``permits`` (join) for every policy
on the three canonical tree shapes, and asserts the *scaling shape* the
paper's Table 1 predicts (who grows with n/h and who stays flat).  Run
with ``pytest benchmarks/bench_table1_complexity.py --benchmark-only``.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.table1 import measure_policy_costs
from repro.core import make_policy
from repro.formal.actions import Fork, Init
from repro.formal.generators import (
    balanced_fork_trace,
    chain_fork_trace,
    star_fork_trace,
)

ALL_POLICIES = ["KJ-VC", "KJ-SS", "TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM"]
SHAPES = {
    "chain": chain_fork_trace,
    "star": star_fork_trace,
    "balanced": balanced_fork_trace,
}
N = 2000


def _replay_forks(policy, trace):
    vertices = {}
    for action in trace:
        if isinstance(action, Init):
            vertices[action.task] = policy.add_child(None)
        elif isinstance(action, Fork):
            vertices[action.child] = policy.add_child(vertices[action.parent])
    return vertices


@pytest.mark.parametrize("shape", list(SHAPES))
@pytest.mark.parametrize("policy_name", ALL_POLICIES)
def test_fork_cost(benchmark, policy_name, shape):
    """Time to install all N vertices (the per-fork column of Table 1)."""
    trace = SHAPES[shape](N)
    benchmark.group = f"table1-fork-{shape}"
    benchmark.pedantic(
        lambda: _replay_forks(make_policy(policy_name), trace),
        rounds=5,
        iterations=1,
    )


@pytest.mark.parametrize("shape", list(SHAPES))
@pytest.mark.parametrize("policy_name", ALL_POLICIES)
def test_join_cost(benchmark, policy_name, shape):
    """Time for 1000 random permission queries (the per-join column)."""
    trace = SHAPES[shape](N)
    policy = make_policy(policy_name)
    vertices = list(_replay_forks(policy, trace).values())
    rng = random.Random(42)
    pairs = [(rng.choice(vertices), rng.choice(vertices)) for _ in range(1000)]

    def run_queries():
        for a, b in pairs:
            policy.permits(a, b)

    benchmark.group = f"table1-join-{shape}"
    benchmark.pedantic(run_queries, rounds=5, iterations=1)


class TestScalingShape:
    """Assert Table 1's asymptotic relationships empirically.

    Each check compares per-op cost between a small and an 8x larger
    input and bounds the growth factor: linear terms must grow clearly,
    constant/log terms must not.  Thresholds are loose (4x margins) to
    stay robust on noisy machines.
    """

    SIZES = (500, 4000)

    def _costs(self, policy, shape):
        gen = SHAPES[shape]
        return [
            measure_policy_costs(policy, shape, gen(n), queries=800)
            for n in self.SIZES
        ]

    def test_kj_ss_join_grows_linearly_on_chains(self):
        small, big = self._costs("KJ-SS", "chain")
        assert big.join_us / small.join_us > 3.0  # ideal 8x

    def test_tj_gt_join_grows_with_height(self):
        small, big = self._costs("TJ-GT", "chain")
        assert big.join_us / small.join_us > 2.5

    def test_tj_gt_join_flat_on_stars(self):
        small, big = self._costs("TJ-GT", "star")
        assert big.join_us / small.join_us < 3.0

    def test_tj_jp_join_sublinear_on_chains(self):
        small, big = self._costs("TJ-JP", "chain")
        assert big.join_us / small.join_us < 3.0  # ideal log(8x) ~ 1.2x

    def test_tj_om_join_flat_everywhere(self):
        for shape in SHAPES:
            small, big = self._costs("TJ-OM", shape)
            assert big.join_us / small.join_us < 3.0

    def test_space_linear_for_tj_gt_and_om(self):
        for policy in ("TJ-GT", "TJ-OM"):
            small, big = self._costs(policy, "chain")
            ratio = big.space_units / small.space_units
            assert 7.0 < ratio < 9.0  # exactly 8x tasks -> 8x space

    def test_tj_sp_legacy_space_quadratic_on_chains(self):
        """The seed tuple-per-task TJ-SP keeps its O(n·h) chain blow-up."""
        small, big = self._costs("TJ-SP-legacy", "chain")
        ratio = big.space_units / small.space_units
        assert ratio > 30.0  # O(n h) = O(n^2) on chains: ideal 64x

    def test_tj_sp_interned_space_linear_on_chains(self):
        """Interning shares path prefixes: one node per task, O(n) space."""
        small, big = self._costs("TJ-SP", "chain")
        ratio = big.space_units / small.space_units
        assert 7.0 < ratio < 9.0  # exactly 8x tasks -> 8x space

    def test_kj_vc_fork_slower_than_kj_ss_on_wide_knowledge(self):
        """KJ-VC copies clocks at fork (O(n)); KJ-SS records O(1)."""
        trace = star_fork_trace(3000)
        vc = measure_policy_costs("KJ-VC", "star", trace, queries=10)
        ss = measure_policy_costs("KJ-SS", "star", trace, queries=10)
        # on a star every child inherits a growing clock in VC
        assert vc.fork_us > ss.fork_us
