"""Tests for schedule exploration — turning the paper's 'may violate KJ'
claims into checked EXISTS/FORALL statements."""

import pytest

from repro.errors import RuntimeStateError
from repro.runtime import CooperativeRuntime
from repro.runtime.explore import explore_schedules, fuzz_schedules


def racy_queue_join_program(rt):
    """A miniature Listing 1: the root drains a queue of futures that
    tasks append to while running.  Depending on interleaving, the root
    may pop a grandchild before its parent."""
    tasks = []

    def f(depth):
        if depth > 0:
            tasks.append(rt.fork(f, depth - 1))
        yield None  # a preemption point between fork and return
        return 1

    def main():
        tasks.append(rt.fork(f, 2))
        total = 0
        while tasks:
            total += yield tasks.pop()  # LIFO pop: deepest-first when racy
        return total

    return main


def straight_line_program(rt):
    def main():
        a = rt.fork(lambda: 1)
        b = rt.fork(lambda: 2)
        va = yield a
        vb = yield b
        return va + vb

    return main


class TestExploreSchedules:
    def test_all_schedules_compute_the_same_result(self):
        result = explore_schedules(racy_queue_join_program, policy="TJ-SP")
        assert result.exhausted
        assert result.schedules > 1  # genuinely multiple interleavings
        assert result.distinct_results() == {"3"}

    def test_tj_is_clean_on_every_schedule(self):
        """FORALL schedules: no TJ false positives (Listing 1's claim)."""
        result = explore_schedules(racy_queue_join_program, policy="TJ-SP")
        assert result.exhausted
        assert not result.any_fallback
        assert not result.any_deadlock

    def test_kj_violated_on_some_but_not_all_schedules(self):
        """EXISTS a schedule violating KJ, and EXISTS one that does not —
        the literal meaning of 'nondeterministically violates KJ'."""
        result = explore_schedules(racy_queue_join_program, policy="KJ-SS")
        assert result.exhausted
        assert result.any_fallback
        assert not result.all_fallback
        assert not result.any_deadlock  # deadlock-free either way

    def test_deterministic_program_has_one_effective_schedule_class(self):
        result = explore_schedules(straight_line_program, policy="TJ-SP")
        assert result.exhausted
        assert result.distinct_results() == {"3"}

    def test_bound_reported_when_hit(self):
        result = explore_schedules(
            racy_queue_join_program, policy="TJ-SP", max_schedules=2
        )
        assert not result.exhausted
        assert result.schedules == 2

    def test_schedules_are_distinct(self):
        result = explore_schedules(racy_queue_join_program, policy="KJ-VC")
        schedules = [o.schedule for o in result.outcomes]
        assert len(schedules) == len(set(schedules))


class TestFuzzSchedules:
    def test_fuzzing_is_reproducible(self):
        r1 = fuzz_schedules(racy_queue_join_program, policy="KJ-SS", runs=10, seed=5)
        r2 = fuzz_schedules(racy_queue_join_program, policy="KJ-SS", runs=10, seed=5)
        assert [o.schedule for o in r1.outcomes] == [o.schedule for o in r2.outcomes]
        assert [o.false_positives for o in r1.outcomes] == [
            o.false_positives for o in r2.outcomes
        ]

    def test_fuzzing_finds_the_kj_violation(self):
        result = fuzz_schedules(racy_queue_join_program, policy="KJ-SS", runs=30)
        assert result.any_fallback

    def test_results_agree_across_fuzzing(self):
        result = fuzz_schedules(racy_queue_join_program, policy="TJ-SP", runs=20)
        assert result.distinct_results() == {"3"}


class TestSchedulerHook:
    def test_custom_scheduler_controls_order(self):
        log = []

        def lifo_scheduler(width):
            return width - 1

        rt = CooperativeRuntime(scheduler=lifo_scheduler)

        def worker(i):
            log.append(i)
            return i

        def main():
            futs = [rt.fork(worker, i) for i in range(3)]
            for f in futs:
                yield f

        rt.run(main)
        assert log == [2, 1, 0]  # LIFO ran the youngest first

    def test_bad_scheduler_index_rejected(self):
        rt = CooperativeRuntime(scheduler=lambda width: width + 5)

        def main():
            yield rt.fork(lambda: 1)

        with pytest.raises(RuntimeStateError, match="scheduler returned"):
            rt.run(main)
