"""Tests for the concurrent.futures-style verified executor."""

import threading

import pytest

from repro.errors import DeadlockAvoidedError, RuntimeStateError, TaskFailedError
from repro.runtime.executor import VerifiedExecutor


class TestExecutorBasics:
    def test_submit_and_result(self):
        with VerifiedExecutor(max_workers=2) as ex:
            fut = ex.submit(pow, 2, 10)
            assert ex.result(fut) == 1024

    def test_map_preserves_order(self):
        with VerifiedExecutor(max_workers=4) as ex:
            assert list(ex.map(lambda x: x * x, range(8))) == [
                x * x for x in range(8)
            ]

    def test_map_multiple_iterables(self):
        with VerifiedExecutor() as ex:
            assert list(ex.map(lambda a, b: a + b, [1, 2], [10, 20])) == [11, 22]

    def test_task_failure(self):
        with VerifiedExecutor() as ex:
            fut = ex.submit(lambda: 1 / 0)
            with pytest.raises(TaskFailedError) as exc_info:
                ex.result(fut)
            assert isinstance(exc_info.value.__cause__, ZeroDivisionError)

    def test_submit_after_shutdown(self):
        ex = VerifiedExecutor()
        ex.shutdown()
        with pytest.raises(RuntimeStateError):
            ex.submit(lambda: 1)

    def test_shutdown_waits_for_outstanding_work(self):
        done = []
        ex = VerifiedExecutor(max_workers=2)
        gate = threading.Event()

        def slow():
            gate.wait()
            done.append(1)

        for _ in range(4):
            ex.submit(slow)
        gate.set()
        ex.shutdown(wait=True)
        assert len(done) == 4

    def test_shutdown_is_idempotent(self):
        ex = VerifiedExecutor()
        ex.shutdown()
        ex.shutdown()


class TestNestedParallelism:
    def test_nested_submit_does_not_starve_the_pool(self):
        """The stdlib ThreadPoolExecutor deadlock case: tasks submitting
        and waiting on subtasks, with fewer workers than waiters."""
        with VerifiedExecutor(max_workers=2) as ex:

            def fib(n):
                if n < 2:
                    return n
                a = ex.submit(fib, n - 1)
                b = ex.submit(fib, n - 2)
                return a.join() + b.join()

            fut = ex.submit(fib, 10)
            assert ex.result(fut) == 55
        assert ex.runtime.compensations > 0 or ex.runtime.peak_workers >= 2

    def test_cyclic_result_waits_are_refused(self):
        with VerifiedExecutor(max_workers=4) as ex:
            box = {}
            ready = threading.Event()
            outcomes = []

            def t1():
                ready.wait()
                try:
                    return box["f2"].join()
                except DeadlockAvoidedError:
                    outcomes.append("t1")
                    return 1

            def t2():
                try:
                    return box["f1"].join()
                except DeadlockAvoidedError:
                    outcomes.append("t2")
                    return 2

            box["f1"] = ex.submit(t1)
            box["f2"] = ex.submit(t2)
            ready.set()
            ex.result(box["f1"])
            ex.result(box["f2"])
            assert len(outcomes) == 1
            assert ex.detector.stats.deadlocks_avoided == 1

    def test_verification_counts(self):
        with VerifiedExecutor(max_workers=2, policy="TJ-SP") as ex:
            futs = [ex.submit(lambda: 1) for _ in range(6)]
            for f in futs:
                ex.result(f)
            assert ex.verifier.stats.joins_checked == 6
            assert ex.detector.stats.false_positives == 0

    def test_external_joins_from_multiple_threads(self):
        """Several plain threads using the same executor concurrently."""
        with VerifiedExecutor(max_workers=4) as ex:
            results = []
            lock = threading.Lock()

            def user(i):
                fut = ex.submit(lambda: i * 2)
                value = ex.result(fut)
                with lock:
                    results.append(value)

            threads = [threading.Thread(target=user, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert sorted(results) == [i * 2 for i in range(8)]
