"""The supervision layer: join deadlines, the stall watchdog, registry.

These are the no-hang guarantees of ``repro.runtime.supervisor``: a join
with a deadline raises :class:`JoinTimeoutError` (leaving the Armus
graph and registry clean, joinable again later), and a *true* join cycle
— even under ``policy=None``, where the paper's avoidance machinery is
off — terminates every blocked task with
:class:`DeadlockDetectedError` carrying the cycle, instead of hanging.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import (
    DeadlockDetectedError,
    JoinTimeoutError,
    TaskFailedError,
)
from repro.runtime import Future, TaskHandle, TaskRuntime, WorkSharingRuntime
from repro.runtime.supervisor import JoinRegistry, StallWatchdog

RUNTIMES = [
    ("threaded", lambda **kw: TaskRuntime(**kw)),
    ("pool", lambda **kw: WorkSharingRuntime(workers=2, max_workers=64, **kw)),
]


def _sleeper(seconds):
    time.sleep(seconds)
    return "done"


@pytest.mark.parametrize("label,make_rt", RUNTIMES, ids=[r[0] for r in RUNTIMES])
class TestJoinTimeout:
    def test_timeout_raises_and_carries_the_edge(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            fut = rt.fork(_sleeper, 0.4)
            with pytest.raises(JoinTimeoutError) as info:
                fut.join(timeout=0.05)
            assert info.value.joinee is fut.task
            assert info.value.timeout == pytest.approx(0.05)
            # supervision state must not outlive the timed-out wait
            assert rt.blocked_joins() == []
            assert len(rt.detector.graph) == 0
            # the same future joins fine once the task terminates
            return fut.join()

        assert rt.run(program) == "done"

    def test_timeout_is_a_timeout_error(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            fut = rt.fork(_sleeper, 0.3)
            try:
                with pytest.raises(TimeoutError):
                    fut.join(timeout=0.01)
            finally:
                fut.join()

        rt.run(program)

    def test_default_join_timeout_applies(self, label, make_rt):
        rt = make_rt(policy="TJ-SP", default_join_timeout=0.05)

        def program():
            fut = rt.fork(_sleeper, 0.4)
            with pytest.raises(JoinTimeoutError) as info:
                fut.join()  # no explicit timeout: the default governs
            assert info.value.timeout == pytest.approx(0.05)
            # an explicit timeout overrides the default
            return fut.join(timeout=5.0)

        assert rt.run(program) == "done"

    def test_batch_timeout_shares_one_deadline(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            quick = rt.fork(_sleeper, 0.0)
            slow = rt.fork(_sleeper, 0.5)
            with pytest.raises(JoinTimeoutError):
                rt.join_batch([quick, slow], timeout=0.08)
            assert rt.blocked_joins() == []
            return slow.join()

        assert rt.run(program) == "done"

    def test_stats_count_the_timed_out_join_once(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            fut = rt.fork(_sleeper, 0.3)
            with pytest.raises(JoinTimeoutError):
                fut.join(timeout=0.01)
            fut.join()

        rt.run(program)
        # one check for the timed-out attempt, one for the successful one
        assert rt.verifier.stats.joins_checked == 2


@pytest.mark.parametrize("label,make_rt", RUNTIMES, ids=[r[0] for r in RUNTIMES])
class TestWatchdog:
    def test_true_cycle_under_policy_none_is_diagnosed(self, label, make_rt):
        """The acceptance scenario: an unverified join cycle terminates."""
        rt = make_rt(policy=None, watchdog=0.02)
        box = {}
        released = threading.Event()

        def a():
            released.wait(5)
            return box["b"].join()

        def b():
            return box["a"].join()

        def program():
            box["a"] = rt.fork(a)
            box["b"] = rt.fork(b)
            released.set()
            with pytest.raises(TaskFailedError) as info:
                box["a"].join()
            with pytest.raises(TaskFailedError):
                box["b"].join()  # drain the other cycle member too
            return info.value.__cause__

        cause = rt.run(program)
        # One cycle member may observe the other's failure before its own
        # diagnosis, wrapping it in further TaskFailedError layers; the
        # root cause is always the watchdog's DeadlockDetectedError.
        while isinstance(cause, TaskFailedError):
            cause = cause.__cause__
        assert isinstance(cause, DeadlockDetectedError)
        assert len(cause.cycle) == 2
        assert {t.name for t in cause.cycle} == {
            box["a"].task.name,
            box["b"].task.name,
        }
        assert rt.watchdog.deadlocks_detected == 2  # both blocked tasks
        assert rt.blocked_joins() == []
        assert len(rt.detector.graph) == 0

    def test_no_false_positives_on_a_busy_program(self, label, make_rt):
        rt = make_rt(policy="TJ-SP", watchdog=0.005)

        def child(depth):
            if depth == 0:
                time.sleep(0.02)
                return 1
            return rt.fork(child, depth - 1).join() + 1

        assert rt.run(child, 4) == 5
        assert rt.watchdog.deadlocks_detected == 0

    def test_watchdog_disabled(self, label, make_rt):
        rt = make_rt(policy="TJ-SP", watchdog=False)
        assert rt.watchdog is None
        assert rt.run(lambda: rt.fork(_sleeper, 0.01).join()) == "done"


class TestWatchdogScan:
    """Synchronous scan() behaviour on a hand-built registry."""

    def _record(self, registry, done=False):
        joiner = TaskHandle(None, name=f"j{id(registry)}")
        joinee = TaskHandle(None)
        fut = Future(None, joinee)
        if done:
            fut._set_result(None)
        return registry.register(joiner, joinee, fut)

    def test_pending_cycle_is_delivered_to_every_member(self):
        registry = JoinRegistry()
        a, b = TaskHandle(None, name="a"), TaskHandle(None, name="b")
        fut_a, fut_b = Future(None, a), Future(None, b)
        ra = registry.register(a, b, fut_b)
        rb = registry.register(b, a, fut_a)
        dog = StallWatchdog(registry)
        delivered = dog.scan()
        assert len(delivered) == 1
        assert set(delivered[0]) == {a, b}
        assert isinstance(ra.exc, DeadlockDetectedError)
        assert isinstance(rb.exc, DeadlockDetectedError)
        assert set(ra.exc.cycle) == {a, b}
        assert dog.deadlocks_detected == 2

    def test_cycle_with_a_done_future_is_a_transient(self):
        registry = JoinRegistry()
        a, b = TaskHandle(None, name="a"), TaskHandle(None, name="b")
        fut_a, fut_b = Future(None, a), Future(None, b)
        fut_a._set_result(42)  # b's wait is about to unregister
        ra = registry.register(a, b, fut_b)
        rb = registry.register(b, a, fut_a)
        dog = StallWatchdog(registry)
        assert dog.scan() == []
        assert ra.exc is None and rb.exc is None
        assert dog.deadlocks_detected == 0

    def test_acyclic_registry_is_clean(self):
        registry = JoinRegistry()
        a, b, c = (TaskHandle(None) for _ in range(3))
        registry.register(a, b, Future(None, b))
        registry.register(b, c, Future(None, c))
        dog = StallWatchdog(registry)
        assert dog.scan() == []

    def test_unregister_removes_the_record(self):
        registry = JoinRegistry()
        record = self._record(registry)
        assert len(registry) == 1
        registry.unregister(record)
        assert len(registry) == 0


class TestInterruptibleRootJoin:
    def test_keyboard_interrupt_reaches_a_blocked_root_join(self):
        """The root task's blocked join is a poll loop, not a bare
        Event.wait, so an injected KeyboardInterrupt surfaces promptly
        (this is what makes Ctrl-C work mid-join)."""
        rt = TaskRuntime(policy="TJ-SP")
        interrupted_after = []

        def program():
            fut = rt.fork(_sleeper, 1.0)
            timer = threading.Timer(0.05, __import__("_thread").interrupt_main)
            timer.start()
            start = time.monotonic()
            try:
                fut.join()
            except KeyboardInterrupt:
                interrupted_after.append(time.monotonic() - start)
                raise
            finally:
                timer.cancel()

        with pytest.raises(KeyboardInterrupt):
            rt.run(program)
        assert interrupted_after and interrupted_after[0] < 0.9
        assert rt.blocked_joins() == []
        assert len(rt.detector.graph) == 0


class TestVirtualClockSupervision:
    """The supervision clock hook: a virtual clock makes join deadlines
    fire deterministically, with no wall-clock waiting."""

    @pytest.mark.parametrize("name,make", RUNTIMES)
    def test_join_timeout_fires_in_virtual_time(self, name, make):
        from repro.runtime.sim import VirtualClock

        clock = VirtualClock()
        rt = make(policy="TJ-SP", clock=clock, watchdog=False)
        release = threading.Event()

        def slow():
            release.wait(30)  # real wait; the root releases it
            return "done"

        def main():
            future = rt.fork(slow)
            try:
                future.join(timeout=500.0)  # 500 *virtual* seconds
            except JoinTimeoutError:
                release.set()
                return "timeout"
            return "joined"

        t0 = time.monotonic()
        assert rt.run(main) == "timeout"
        # A wall clock would have waited 500s; the virtual clock jumps.
        assert time.monotonic() - t0 < 10.0
        assert clock.monotonic() >= 500.0

    def test_timed_out_join_is_retryable_under_virtual_time(self):
        from repro.runtime.sim import VirtualClock

        rt = TaskRuntime("TJ-SP", clock=VirtualClock(), watchdog=False)
        release = threading.Event()

        def slow():
            release.wait(30)
            return "done"

        def main():
            future = rt.fork(slow)
            try:
                future.join(timeout=5.0)
            except JoinTimeoutError:
                release.set()
            # Virtual waits consume their whole timeout instantly, so
            # give the real worker thread wall time to finish before the
            # retry (a timed-out join must stay joinable).
            while not future.done():
                time.sleep(0.01)
            return future.join(timeout=30.0)

        assert rt.run(main) == "done"
