"""Unit tests for current-task tracking."""

import threading

import pytest

from repro.errors import RuntimeStateError
from repro.runtime.context import current_task, require_current_task, task_scope
from repro.runtime.task import TaskHandle, TaskState


def make_task(name):
    return TaskHandle(vertex=object(), name=name)


class TestTaskScope:
    def test_scope_installs_and_restores(self):
        t = make_task("t")
        assert current_task() is None
        with task_scope(t):
            assert current_task() is t
        assert current_task() is None

    def test_nested_scopes(self):
        outer, inner = make_task("outer"), make_task("inner")
        with task_scope(outer):
            with task_scope(inner):
                assert current_task() is inner
            assert current_task() is outer

    def test_scope_restores_on_exception(self):
        t = make_task("t")
        with pytest.raises(ValueError):
            with task_scope(t):
                raise ValueError("boom")
        assert current_task() is None

    def test_thread_isolation(self):
        t = make_task("main-thread-task")
        seen = []

        def other():
            seen.append(current_task())

        with task_scope(t):
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert seen == [None]

    def test_require_current_task(self):
        with pytest.raises(RuntimeStateError, match="no current task"):
            require_current_task()
        t = make_task("t")
        with task_scope(t):
            assert require_current_task() is t


class TestTaskHandle:
    def test_identity_semantics(self):
        a, b = make_task("x"), make_task("x")
        assert a != b and a == a
        assert len({a, b}) == 2

    def test_unique_uids_and_repr(self):
        a, b = make_task("a"), make_task("b")
        assert a.uid != b.uid
        assert "created" in repr(a)
        a.state = TaskState.RUNNING
        assert "running" in repr(a)
