"""Unit and integration tests for the blocking (thread-per-task) runtime."""

import threading

import pytest

from repro import (
    DeadlockAvoidedError,
    PolicyViolationError,
    TaskFailedError,
    TaskRuntime,
)
from repro.errors import RuntimeStateError
from repro.runtime import current_task


class TestBasics:
    def test_fork_join_result(self):
        rt = TaskRuntime()

        def main():
            return rt.fork(lambda: 21).join() * 2

        assert rt.run(main) == 42

    def test_nested_forks(self):
        rt = TaskRuntime()

        def fib(n):
            if n < 2:
                return n
            a = rt.fork(fib, n - 1)
            b = rt.fork(fib, n - 2)
            return a.join() + b.join()

        assert rt.run(fib, 10) == 55

    def test_args_and_kwargs(self):
        rt = TaskRuntime()

        def child(x, y=0):
            return x + y

        def main():
            return rt.fork(child, 1, y=2).join()

        assert rt.run(main) == 3

    def test_get_alias(self):
        rt = TaskRuntime()

        def main():
            return rt.fork(lambda: "ok").get()

        assert rt.run(main) == "ok"

    def test_run_returns_root_exceptions(self):
        rt = TaskRuntime()
        with pytest.raises(ValueError, match="boom"):
            rt.run(lambda: (_ for _ in ()).throw(ValueError("boom")))

    def test_task_exception_wrapped_at_join(self):
        rt = TaskRuntime()

        def bad():
            raise ValueError("inner")

        def main():
            fut = rt.fork(bad)
            with pytest.raises(TaskFailedError) as exc_info:
                fut.join()
            assert isinstance(exc_info.value.__cause__, ValueError)
            return "recovered"

        assert rt.run(main) == "recovered"

    def test_future_repr_and_done(self):
        rt = TaskRuntime()

        def main():
            gate = threading.Event()
            fut = rt.fork(gate.wait)
            assert not fut.done()
            assert "pending" in repr(fut)
            gate.set()
            fut.join()
            assert fut.done()
            assert "done" in repr(fut)

        rt.run(main)

    def test_current_task_inside_and_outside(self):
        rt = TaskRuntime()
        assert current_task() is None

        def main():
            assert current_task() is not None
            names = rt.fork(lambda: current_task().name).join()
            return names

        assert rt.run(main).startswith("task-")
        assert current_task() is None


class TestStateErrors:
    def test_fork_outside_task(self):
        rt = TaskRuntime()
        with pytest.raises(RuntimeStateError):
            rt.fork(lambda: 1)

    def test_join_outside_task(self):
        rt = TaskRuntime()

        def main():
            return rt.fork(lambda: 1)

        fut = rt.run(main)
        with pytest.raises(RuntimeStateError):
            fut.join()

    def test_run_twice(self):
        rt = TaskRuntime()
        rt.run(lambda: None)
        with pytest.raises(RuntimeStateError, match="already hosted"):
            rt.run(lambda: None)

    def test_foreign_future(self):
        rt1 = TaskRuntime()
        rt2 = TaskRuntime()

        def main1():
            return rt1.fork(lambda: 1)

        fut = rt1.run(main1)

        def main2():
            with pytest.raises(RuntimeStateError, match="different runtime"):
                rt2.join(fut)

        rt2.run(main2)


class TestPolicyEnforcement:
    def test_child_joining_parent_faults_without_fallback(self):
        rt = TaskRuntime(policy="TJ-SP", fallback=False)

        def main():
            box = {}
            started = threading.Event()

            def child():
                started.wait()
                with pytest.raises(PolicyViolationError):
                    box["own_future"].join()
                return "faulted-as-expected"

            fut = rt.fork(child)
            # Hand the child a future it must not join: its own (the order
            # is irreflexive; a permitted self-join would block forever).
            box["own_future"] = fut
            started.set()
            return fut.join()

        assert rt.run(main) == "faulted-as-expected"

    def test_grandchild_join_ok_under_tj_flagged_under_kj(self):
        def program(rt):
            def main():
                grand_fut = {}

                def child():
                    grand_fut["g"] = rt.fork(lambda: 7)
                    return 1

                c = rt.fork(child)
                c.join()
                return grand_fut["g"].join()

            return rt.run(main)

        tj = TaskRuntime(policy="TJ-SP")
        assert program(tj) == 7
        assert tj.detector.stats.false_positives == 0

        kj = TaskRuntime(policy="KJ-SS")
        assert program(kj) == 7
        # under KJ the grandchild join is rejected... except the join on the
        # child transferred knowledge (KJ-learn), so it is actually known.
        assert kj.detector.stats.false_positives == 0

    def test_unordered_descendant_joins_trip_kj_fallback(self):
        """The Listing-1 pattern: join the grandchild *before* the child."""

        def program(rt):
            def main():
                futures = {}

                def child():
                    futures["g"] = rt.fork(lambda: 7)
                    return 1

                futures["c"] = rt.fork(child)
                # wait (unchecked) for the grandchild future to exist
                while "g" not in futures:
                    pass
                total = futures["g"].join()  # KJ-invalid: g unknown to root
                total += futures["c"].join()
                return total

            return rt.run(main)

        tj = TaskRuntime(policy="TJ-SP")
        assert program(tj) == 8
        assert tj.detector.stats.false_positives == 0

        kj = TaskRuntime(policy="KJ-VC")
        assert program(kj) == 8
        assert kj.detector.stats.false_positives == 1

    def test_real_deadlock_avoided(self):
        """Two tasks joining each other: one receives DeadlockAvoidedError."""
        rt = TaskRuntime(policy="TJ-SP")

        def main():
            box = {}
            f2_ready = threading.Event()
            outcome = []

            def task1():
                f2_ready.wait()
                try:
                    return box["f2"].join()
                except DeadlockAvoidedError:
                    outcome.append("t1-avoided")
                    return "t1"

            def task2():
                try:
                    return box["f1"].join()
                except DeadlockAvoidedError:
                    outcome.append("t2-avoided")
                    return "t2"

            box["f1"] = rt.fork(task1)
            box["f2"] = rt.fork(task2)
            f2_ready.set()
            r1 = box["f1"].join()
            r2 = box["f2"].join()
            return outcome, (r1, r2)

        outcome, _ = rt.run(main)
        assert len(outcome) == 1  # exactly one side was refused
        assert rt.detector.stats.deadlocks_avoided == 1

    def test_null_policy_checks_nothing(self):
        rt = TaskRuntime(policy=None)

        def main():
            return rt.fork(lambda: 5).join()

        assert rt.run(main) == 5
        assert rt.verifier.stats.joins_checked == 1
        assert rt.verifier.stats.joins_rejected == 0


class TestScale:
    def test_many_tasks_star(self):
        rt = TaskRuntime(policy="TJ-SP")
        n = 200

        def main():
            futs = [rt.fork(lambda i=i: i) for i in range(n)]
            return sum(f.join() for f in futs)

        assert rt.run(main) == n * (n - 1) // 2
        assert rt.tasks_started == n
        # the pooled fork fast path reuses parked threads: far fewer OS
        # threads than tasks on a sequential fork/join star
        assert rt.threads_started <= n

    def test_join_same_future_twice(self):
        rt = TaskRuntime(policy="TJ-SP")

        def main():
            fut = rt.fork(lambda: 9)
            return fut.join() + fut.join()

        assert rt.run(main) == 18

    def test_many_tasks_join_the_same_future(self):
        """A future is copyable: many siblings may block on one task
        concurrently, and all get the result."""
        rt = TaskRuntime(policy="TJ-SP")
        gate = threading.Event()

        def main():
            slow = rt.fork(lambda: (gate.wait(), 13)[1])

            def waiter():
                return slow.join()

            waiters = [rt.fork(waiter) for _ in range(10)]
            gate.set()
            return [w.join() for w in waiters]

        assert rt.run(main) == [13] * 10
        assert rt.detector.stats.false_positives == 0
        assert rt.detector.stats.deadlocks_avoided == 0
