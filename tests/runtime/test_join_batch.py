"""The batch join API: ``join_batch`` on the threaded and pool runtimes.

One ``Verifier.check_joins`` call verifies a whole group of joins for
stable (TJ/none) policies; learning (KJ) policies transparently fall
back to per-future verification.  Results must match sequential joins
exactly — order, failures, policy faults and statistics included.
"""

from __future__ import annotations

import pytest

from repro.constructs import finish
from repro.errors import PolicyViolationError, TaskFailedError
from repro.runtime import TaskRuntime, WorkSharingRuntime


def _square(x):
    return x * x


def _boom():
    raise ValueError("boom")


RUNTIMES = [
    ("threaded", lambda **kw: TaskRuntime(**kw)),
    ("pool", lambda **kw: WorkSharingRuntime(workers=2, max_workers=64, **kw)),
]


@pytest.mark.parametrize("label,make_rt", RUNTIMES, ids=[r[0] for r in RUNTIMES])
class TestJoinBatch:
    def test_results_in_input_order(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            futures = [rt.fork(_square, i) for i in range(8)]
            return rt.join_batch(futures)

        assert rt.run(program) == [i * i for i in range(8)]

    def test_empty_batch(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")
        assert rt.run(lambda: rt.join_batch([])) == []

    def test_batched_stats_match_sequential(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            futures = [rt.fork(_square, i) for i in range(6)]
            rt.join_batch(futures)

        rt.run(program)
        stats = rt.verifier.stats
        assert stats.forks == 7  # root + 6 children
        assert stats.joins_checked == 6
        assert stats.joins_rejected == 0

    def test_return_exceptions_collects_failures_in_place(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            futures = [rt.fork(_square, 3), rt.fork(_boom), rt.fork(_square, 4)]
            return rt.join_batch(futures, return_exceptions=True)

        nine, failure, sixteen = rt.run(program)
        assert (nine, sixteen) == (9, 16)
        assert isinstance(failure, TaskFailedError)

    def test_failure_raises_without_return_exceptions(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            futures = [rt.fork(_boom), rt.fork(_square, 4)]
            try:
                rt.join_batch(futures)
            finally:
                # drain the sibling so the pool can shut down cleanly
                futures[1].join()

        with pytest.raises(TaskFailedError):
            rt.run(program)

    def test_policy_fault_in_batch_without_fallback(self, label, make_rt):
        """An older sibling joining a younger one faults mid-batch."""
        rt = make_rt(policy="TJ-SP", fallback=False)

        def child(sibling_future):
            if sibling_future is not None:
                rt.join_batch([sibling_future])
            return 1

        def program():
            older_box = []

            def older():
                # forked first => TJ-greater; joining the younger sibling
                # (forked later, hence TJ-smaller) violates the order
                while not older_box:
                    pass
                return rt.join_batch([older_box[0]])

            older_fut = rt.fork(older)
            younger_fut = rt.fork(_square, 5)
            older_box.append(younger_fut)
            try:
                older_fut.join()
            finally:
                younger_fut.join()

        with pytest.raises(TaskFailedError) as info:
            rt.run(program)
        assert isinstance(info.value.__cause__, PolicyViolationError)

    def test_kj_policy_uses_per_future_fallback(self, label, make_rt):
        """Learning policies still verify batches correctly, one by one."""
        rt = make_rt(policy="KJ-VC")

        def program():
            futures = [rt.fork(_square, i) for i in range(5)]
            return rt.join_batch(futures)

        assert rt.run(program) == [0, 1, 4, 9, 16]
        assert rt.verifier.stats.joins_checked == 5

    def test_foreign_future_rejected(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")
        other = TaskRuntime(policy="TJ-SP")

        def outer():
            fut = other.fork(_square, 2)
            try:
                from repro.errors import RuntimeStateError

                with pytest.raises(RuntimeStateError):
                    rt.join_batch([fut])
            finally:
                fut.join()
            return True

        assert other.run(outer)


@pytest.mark.parametrize("label,make_rt", RUNTIMES, ids=[r[0] for r in RUNTIMES])
class TestFinishUsesBatchDrain:
    def test_finish_results_unchanged(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            with finish(rt) as scope:
                for i in range(10):
                    scope.async_(_square, i)
            return sorted(scope.results)

        assert rt.run(program) == sorted(i * i for i in range(10))

    def test_finish_collects_all_failures(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            try:
                with finish(rt) as scope:
                    scope.async_(_boom)
                    scope.async_(_square, 2)
                    scope.async_(_boom)
            except TaskFailedError:
                return len(scope.failures)
            return 0

        assert rt.run(program) == 2

    def test_finish_batch_verification_counts(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            with finish(rt) as scope:
                for i in range(7):
                    scope.async_(_square, i)
            return True

        assert rt.run(program)
        assert rt.verifier.stats.joins_checked == 7


@pytest.mark.parametrize("label,make_rt", RUNTIMES, ids=[r[0] for r in RUNTIMES])
class TestBatchIndex:
    """``TaskFailedError.batch_index`` pinpoints the failing position."""

    def test_raised_failure_carries_its_index(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            futures = [rt.fork(_square, 1), rt.fork(_boom), rt.fork(_square, 2)]
            try:
                rt.join_batch(futures)
            except TaskFailedError as exc:
                return exc.batch_index
            finally:
                for fut in futures:
                    if not fut.done():
                        fut._wait(5.0)

        assert rt.run(program) == 1

    def test_collected_failures_carry_their_indices(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            futures = [rt.fork(_boom), rt.fork(_square, 3), rt.fork(_boom)]
            results = rt.join_batch(futures, return_exceptions=True)
            return [
                r.batch_index if isinstance(r, TaskFailedError) else r
                for r in results
            ]

        assert rt.run(program) == [0, 9, 2]

    def test_individual_join_has_no_batch_index(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            fut = rt.fork(_boom)
            try:
                fut.join()
            except TaskFailedError as exc:
                return exc.batch_index

        assert rt.run(program) is None
