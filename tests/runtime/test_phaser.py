"""Tests for phasers (barriers) with generalised deadlock avoidance."""

import threading

import pytest

from repro import TaskRuntime
from repro.armus.generalized import GeneralizedDetector
from repro.errors import DeadlockAvoidedError, RuntimeStateError, TaskFailedError
from repro.runtime import Phaser


class TestPhaserBasics:
    def test_two_party_barrier(self):
        rt = TaskRuntime()
        ph = Phaser()
        log = []
        lock = threading.Lock()
        all_registered = threading.Barrier(2)  # registration handshake only

        def party(name):
            ph.register()
            all_registered.wait()  # both parties registered before signals
            with lock:
                log.append(f"{name}-before")
            ph.signal_and_wait()
            with lock:
                log.append(f"{name}-after")
            ph.deregister()
            return name

        def main():
            f1 = rt.fork(party, "a")
            f2 = rt.fork(party, "b")
            return f1.join(), f2.join()

        assert rt.run(main) == ("a", "b")
        # the phaser ordered all befores ahead of all afters
        assert {e for e in log[:2]} == {"a-before", "b-before"}
        assert {e for e in log[2:]} == {"a-after", "b-after"}

    def test_multiple_phases(self):
        rt = TaskRuntime()
        ph = Phaser()
        order = []
        lock = threading.Lock()

        all_registered = threading.Barrier(2)

        def party(name):
            ph.register()
            all_registered.wait()
            for phase in range(3):
                with lock:
                    order.append((phase, name))
                ph.signal_and_wait()
            ph.deregister()

        def main():
            futs = [rt.fork(party, n) for n in ("x", "y")]
            for f in futs:
                f.join()

        rt.run(main)
        # per phase, both parties recorded before the next phase starts
        phases = [p for p, _ in order]
        assert phases == sorted(phases)
        assert ph.phase >= 3

    def test_signal_without_wait_split_phase(self):
        rt = TaskRuntime()
        ph = Phaser()

        def producer():
            ph.register()
            phase = ph.signal()  # fuzzy barrier: arrive, keep working
            ph.deregister()
            return phase

        def main():
            f = rt.fork(producer)
            return f.join()

        assert rt.run(main) == 0

    def test_wait_for_past_phase_returns_immediately(self):
        rt = TaskRuntime()
        ph = Phaser()

        def solo():
            ph.register()
            ph.signal_and_wait()  # advances to phase 1 (single party)
            assert ph.wait(0) == 0  # already past
            ph.deregister()
            return ph.phase

        def main():
            return rt.fork(solo).join()

        assert rt.run(main) >= 1

    def test_registration_errors(self):
        rt = TaskRuntime()
        ph = Phaser()

        def main():
            ph.register()
            with pytest.raises(RuntimeStateError):
                ph.register()
            ph.deregister()
            with pytest.raises(RuntimeStateError):
                ph.deregister()
            with pytest.raises(RuntimeStateError):
                ph.signal()

        rt.run(main)

    def test_deregister_releases_waiters(self):
        rt = TaskRuntime()
        ph = Phaser()
        registered = threading.Event()

        def quitter():
            ph.register()
            registered.set()
            ph.deregister()  # leaves without ever signalling

        def main():
            f = rt.fork(quitter)
            registered.wait()
            ph.wait(0)  # released by the deregistration, not a signal
            return f.join() or "released"

        assert rt.run(main) == "released"


class TestPhaserDeadlockAvoidance:
    def test_crossed_phasers_avoided(self):
        """Two parties each waiting on the other's barrier — the classic
        barrier deadlock, refused with a recoverable error."""
        rt = TaskRuntime()
        detector = GeneralizedDetector()
        p, q = Phaser(detector, name="P"), Phaser(detector, name="Q")
        p_ready, q_ready = threading.Event(), threading.Event()

        def a():
            p.register()
            p_ready.set()
            q_ready.wait()
            try:
                q.wait(0)  # waits on Q, which needs b... who waits on P
                return "a-unblocked"
            except DeadlockAvoidedError:
                return "a-avoided"
            finally:
                p.deregister()

        def b():
            q.register()
            q_ready.set()
            p_ready.wait()
            try:
                p.wait(0)
                return "b-unblocked"
            except DeadlockAvoidedError:
                return "b-avoided"
            finally:
                q.deregister()

        def main():
            fa, fb = rt.fork(a), rt.fork(b)
            return {fa.join(), fb.join()}

        results = rt.run(main)
        assert len([r for r in results if r.endswith("avoided")]) >= 1
        assert detector.stats.deadlocks_avoided >= 1

    def test_waiting_on_own_unarrived_phase_is_refused(self):
        """wait() before signalling your own phase is a self-cycle."""
        rt = TaskRuntime()
        ph = Phaser()

        def selfish():
            ph.register()
            try:
                ph.wait()  # I impede this phase myself
                return "unblocked"
            except DeadlockAvoidedError:
                return "avoided"
            finally:
                ph.deregister()

        def main():
            return rt.fork(selfish).join()

        assert rt.run(main) == "avoided"

    def test_signal_and_wait_never_self_deadlocks(self):
        rt = TaskRuntime()
        ph = Phaser()

        def fine():
            ph.register()
            result = ph.signal_and_wait()
            ph.deregister()
            return result

        def main():
            return rt.fork(fine).join()

        assert rt.run(main) == 0

    def test_mixed_join_and_barrier_cycle(self):
        """A cycle through one join edge and one barrier edge — beyond
        both TJ and task-graph Armus, caught by the generalised model
        when the join is routed through it."""
        detector = GeneralizedDetector()
        rt = TaskRuntime(policy=None, fallback=False)
        ph = Phaser(detector, name="B")
        t1_blocked = threading.Event()
        fut_box = {}

        from repro.runtime import current_task

        def t1():
            me = current_task()  # same identity the phaser registers
            ph.register()
            while "f2" not in fut_box:
                pass
            # t1 waits for t2's termination: model the join as an event
            detector.block(me, "t2-done")
            t1_blocked.set()
            try:
                return fut_box["f2"].join()
            finally:
                detector.unblock(me, "t2-done")
                ph.deregister()

        def t2():
            me = current_task()
            detector.add_impeder(me, "t2-done")
            t1_blocked.wait()  # deterministic: t1's edge is in place
            try:
                ph.wait(0)  # needs t1 to arrive; t1 waits for me: cycle
                return "t2-unblocked"
            except DeadlockAvoidedError:
                return "t2-avoided"
            finally:
                detector.remove_impeder(me, "t2-done")

        def main():
            f1 = rt.fork(t1)
            fut_box["f2"] = rt.fork(t2)
            r2 = fut_box["f2"].join()
            r1 = f1.join()
            return r1, r2

        r1, r2 = rt.run(main)
        assert r2 == "t2-avoided"
        assert r1 == "t2-avoided"  # t1's join returned t2's value
        assert detector.stats.deadlocks_avoided == 1
