"""Tests for the asyncio adapter runtime."""

import asyncio

import pytest

from repro import (
    DeadlockAvoidedError,
    PolicyViolationError,
    TaskFailedError,
)
from repro.errors import RuntimeStateError
from repro.runtime import AsyncioRuntime


def run(coro):
    return asyncio.run(coro)


class TestBasics:
    def test_fork_and_await(self):
        rt = AsyncioRuntime()

        async def child():
            return 21

        async def main():
            fut = rt.fork(child)
            return 2 * await fut

        assert run(rt.run(main)) == 42

    def test_join_method(self):
        rt = AsyncioRuntime()

        async def child():
            return "x"

        async def main():
            fut = rt.fork(child)
            return await fut.join()

        assert run(rt.run(main)) == "x"

    def test_nested_forks(self):
        rt = AsyncioRuntime()

        async def fib(n):
            if n < 2:
                return n
            a = rt.fork(fib, n - 1)
            b = rt.fork(fib, n - 2)
            return await a + await b

        assert run(rt.run(fib, 10)) == 55

    def test_current_task_tracking(self):
        rt = AsyncioRuntime()

        async def child():
            return rt.current_task().name

        async def main():
            me = rt.current_task().name
            other = await rt.fork(child)
            return me, other

        me, other = run(rt.run(main))
        assert me == "root" and other != "root"

    def test_failure_wrapped(self):
        rt = AsyncioRuntime()

        async def bad():
            raise ValueError("inner")

        async def main():
            fut = rt.fork(bad)
            with pytest.raises(TaskFailedError) as exc_info:
                await fut
            assert isinstance(exc_info.value.__cause__, ValueError)
            return "ok"

        assert run(rt.run(main)) == "ok"

    def test_repr_and_done(self):
        rt = AsyncioRuntime()

        async def main():
            fut = rt.fork(asyncio.sleep, 0)
            assert "pending" in repr(fut)
            await fut
            assert fut.done() and "done" in repr(fut)

        run(rt.run(main))


class TestStateErrors:
    def test_fork_outside_run(self):
        rt = AsyncioRuntime()

        async def orphan():
            with pytest.raises(RuntimeStateError):
                rt.fork(asyncio.sleep, 0)

        run(orphan())

    def test_run_twice(self):
        rt = AsyncioRuntime()

        async def main():
            return 1

        run(rt.run(main))
        with pytest.raises(RuntimeStateError):
            run(rt.run(main))

    def test_foreign_future(self):
        rt1, rt2 = AsyncioRuntime(), AsyncioRuntime()

        async def program():
            async def child():
                return 1

            async def main1():
                return rt1.fork(child)

            fut = await rt1.run(main1)

            async def main2():
                with pytest.raises(RuntimeStateError):
                    await rt2._join(fut)

            await rt2.run(main2)

        run(program())


class TestDeadlockAvoidance:
    def test_mutual_await_is_refused_not_hung(self):
        rt = AsyncioRuntime(policy="TJ-SP")

        async def program():
            box = {}
            outcomes = []

            async def worker(me, other):
                while other not in box:
                    await asyncio.sleep(0)
                try:
                    return await box[other]
                except DeadlockAvoidedError:
                    outcomes.append(me)
                    return f"{me}-recovered"

            async def main():
                box["a"] = rt.fork(worker, "a", "b")
                box["b"] = rt.fork(worker, "b", "a")
                return await box["a"], await box["b"]

            results = await rt.run(main)
            return outcomes, results

        outcomes, _ = run(program())
        assert len(outcomes) == 1
        assert rt.detector.stats.deadlocks_avoided == 1

    def test_policy_violation_without_fallback(self):
        rt = AsyncioRuntime(policy="TJ-SP", fallback=False)

        async def main():
            box = {}
            gate = asyncio.Event()

            async def selfish():
                await gate.wait()
                with pytest.raises(PolicyViolationError):
                    await box["me"]
                return "faulted"

            box["me"] = rt.fork(selfish)
            gate.set()
            return await box["me"]

        assert run(rt.run(main)) == "faulted"

    def test_grandchild_await_tj_vs_kj(self):
        async def program(policy):
            rt = AsyncioRuntime(policy=policy)
            box = {}

            async def child():
                box["g"] = rt.fork(asyncio.sleep, 0, result=7)
                return 1

            async def main():
                rt.fork(child)
                while "g" not in box:
                    await asyncio.sleep(0)
                return await box["g"]

            value = await rt.run(main)
            return value, rt.detector.stats.false_positives

        value, tj_fp = run(program("TJ-SP"))
        assert value == 7 and tj_fp == 0
        value, kj_fp = run(program("KJ-SS"))
        assert value == 7 and kj_fp == 1
