"""Cross-process determinism of the schedule explorers and the simulator.

Same seed, two fresh interpreters: ``explore_schedules`` must enumerate
the identical schedule set, ``fuzz_schedules`` must draw the identical
random schedules with the identical outcomes, and ``SimRuntime`` must
record the identical decision trace.  This is what makes a seed (or a
witness file) a portable repro: hash randomisation or interpreter state
must not leak into any scheduling decision.
"""

import json
import os
import subprocess
import sys

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)

_CHILD = r"""
import json
import sys

from repro.runtime.explore import explore_schedules, fuzz_schedules
from repro.runtime.sim import SimRuntime


def program(rt):
    out = []

    def worker(name):
        yield None
        out.append(name)
        return name

    def main():
        futures = [rt.fork(worker, n) for n in ("a", "b")]
        for future in futures:
            yield future
        return tuple(out)

    return main


explored = explore_schedules(program, policy="TJ-SP", max_schedules=500)
fuzzed = fuzz_schedules(program, policy="TJ-SP", runs=20, seed=5)

sim = SimRuntime(None, seed=99)
sim_result = sim.run(program(sim))
witness = sim.recorded_schedule

print(json.dumps({
    "explored": sorted(
        [list(o.schedule), repr(o.result)] for o in explored.outcomes
    ),
    "exhausted": explored.exhausted,
    "fuzzed": [[list(o.schedule), repr(o.result)] for o in fuzzed.outcomes],
    "sim": {
        "result": repr(sim_result),
        "choices": list(witness.choices),
        "widths": list(witness.widths),
        "steps": sim.steps,
    },
}, sort_keys=True))
"""


def _run_child() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC
    # Different hash seeds per child: determinism must not lean on
    # PYTHONHASHSEED being pinned.
    env.pop("PYTHONHASHSEED", None)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_explorers_and_simulator_agree_across_processes():
    first = _run_child()
    second = _run_child()
    assert first == second
    # sanity: the child actually explored multiple interleavings
    assert len(first["explored"]) > 1
    assert first["exhausted"] is True
    assert len(first["fuzzed"]) == 20
    assert first["sim"]["widths"]  # the simulator faced real decisions
