"""Tests for the blocking work-sharing pool runtime."""

import threading

import pytest

from repro import DeadlockAvoidedError, TaskFailedError
from repro.errors import RuntimeStateError
from repro.runtime import WorkSharingRuntime


class TestBasics:
    def test_fork_join(self):
        rt = WorkSharingRuntime(workers=2)

        def main():
            return rt.fork(lambda: 21).join() * 2

        assert rt.run(main) == 42

    def test_many_independent_tasks(self):
        rt = WorkSharingRuntime(workers=4)
        n = 100

        def main():
            futs = [rt.fork(lambda i=i: i * i) for i in range(n)]
            return sum(f.join() for f in futs)

        assert rt.run(main) == sum(i * i for i in range(n))
        # independent tasks never block workers: the pool stays small
        assert rt.peak_workers == 4
        assert rt.compensations == 0

    def test_unjoined_tasks_complete_before_run_returns(self):
        rt = WorkSharingRuntime(workers=2)
        done = []

        def main():
            for i in range(10):
                rt.fork(lambda i=i: done.append(i))
            return "root-done"

        assert rt.run(main) == "root-done"
        assert sorted(done) == list(range(10))  # implicit top-level finish

    def test_failure_wrapped(self):
        rt = WorkSharingRuntime()

        def main():
            with pytest.raises(TaskFailedError):
                rt.fork(lambda: 1 / 0).join()
            return "ok"

        assert rt.run(main) == "ok"

    def test_run_twice_refused(self):
        rt = WorkSharingRuntime()
        rt.run(lambda: None)
        with pytest.raises(RuntimeStateError):
            rt.run(lambda: None)

    def test_bad_configuration(self):
        with pytest.raises(ValueError):
            WorkSharingRuntime(workers=0)
        with pytest.raises(ValueError):
            WorkSharingRuntime(workers=8, max_workers=4)


class TestCompensation:
    def test_nested_blocking_grows_the_pool(self):
        """Recursive fork+join with a 2-worker pool: without compensation
        this would starve (all workers blocked on children); with it the
        pool grows just enough to keep making progress."""
        rt = WorkSharingRuntime(workers=2, max_workers=64)

        def fib(n):
            if n < 2:
                return n
            a = rt.fork(fib, n - 1)
            b = rt.fork(fib, n - 2)
            return a.join() + b.join()

        assert rt.run(fib, 10) == 55
        assert rt.compensations > 0
        assert rt.peak_workers > 2

    def test_single_worker_chain(self):
        """Depth-k chain of joins on a 1-worker pool — the pathological
        case for work sharing; compensation must add ~k workers."""
        rt = WorkSharingRuntime(workers=1, max_workers=64)

        def chain(depth):
            if depth == 0:
                return 0
            return rt.fork(chain, depth - 1).join() + 1

        assert rt.run(chain, 10) == 10
        assert rt.peak_workers >= 10

    def test_root_blocking_needs_no_compensation(self):
        rt = WorkSharingRuntime(workers=1)
        gate = threading.Event()

        def main():
            fut = rt.fork(lambda: (gate.wait(), 5)[1])
            gate.set()
            return fut.join()  # root thread is not a pool worker

        assert rt.run(main) == 5
        assert rt.compensations == 0


class TestVerification:
    def test_deadlock_avoided_in_pool(self):
        rt = WorkSharingRuntime(policy="TJ-SP", workers=4)

        def main():
            box = {}
            ready = threading.Event()
            recovered = []

            def t1():
                ready.wait()
                try:
                    return box["f2"].join()
                except DeadlockAvoidedError:
                    recovered.append("t1")
                    return 1

            def t2():
                try:
                    return box["f1"].join()
                except DeadlockAvoidedError:
                    recovered.append("t2")
                    return 2

            box["f1"] = rt.fork(t1)
            box["f2"] = rt.fork(t2)
            ready.set()
            box["f1"].join()
            box["f2"].join()
            return recovered

        recovered = rt.run(main)
        assert len(recovered) == 1
        assert rt.detector.stats.deadlocks_avoided == 1

    def test_policy_stats_flow_through(self):
        rt = WorkSharingRuntime(policy="TJ-SP", workers=2)

        def main():
            futs = [rt.fork(lambda: 1) for _ in range(5)]
            return sum(f.join() for f in futs)

        assert rt.run(main) == 5
        assert rt.verifier.stats.forks == 6
        assert rt.verifier.stats.joins_checked == 5
        assert rt.detector.stats.false_positives == 0

    def test_benchmarks_run_on_the_pool(self):
        """The Section 6 benchmarks are runtime-agnostic: spot-check two
        on the work-sharing pool."""
        from repro.benchsuite import make_benchmark

        for name, params in (
            ("Strassen", {"n": 128, "cutoff": 64}),
            ("Series", {"coefficients": 40, "samples": 50}),
        ):
            bench = make_benchmark(name, **params)
            bench.build()
            rt = WorkSharingRuntime(policy="TJ-SP", workers=4)
            result = rt.run(bench.run, rt)
            assert bench.verify(result)
            assert rt.detector.stats.false_positives == 0
