"""The multi-process runtime: verified dispatch, escalation accounting,
worker-death recovery, and the pickling boundary.

Dispatched bodies must be module-level (they cross a process boundary),
so every task body here is a top-level function.  Pool geometry is kept
tiny (two workers, small shared-tree segments) — each test still pays a
couple of spawn startups, so this file leans on a handful of dense
programs rather than many micro-cases.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.constructs import finish
from repro.errors import (
    ReproError,
    RuntimeStateError,
    TaskFailedError,
)
from repro.runtime import ProcessRuntime, require_current_task
from repro.runtime.procs import ShardVerifier, WireSpawnPaths
from repro.core.shared_tree import shm_available

MODES = ["wire"] + (["shm"] if shm_available() else [])


def _rt(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("seg0", 64)
    kw.setdefault("stripe", 16)
    return ProcessRuntime(**kw)


# ----------------------------------------------------------------------
# dispatched bodies (module level: they are pickled by reference)
# ----------------------------------------------------------------------
def square(x):
    return x * x


def subtree(rt, base, fanout):
    futs = [rt.fork(square, base + i) for i in range(fanout)]
    return sum(rt.join_batch(futs))


def deep_subtree(rt, base, mids, leaves):
    # In-worker forks are plain TaskRuntime forks (no engine prepended),
    # so the engine rides along as an explicit argument.
    futs = [
        rt.fork(subtree_level, rt, base + 100 * m, leaves) for m in range(mids)
    ]
    return sum(rt.join_batch(futs))


def subtree_level(rt, base, leaves):
    futs = [rt.fork(square, base + i) for i in range(leaves)]
    return sum(rt.join_batch(futs))


def boom(rt):
    raise ValueError("boom in worker")


def returns_unpicklable(rt):
    return lambda: 1  # pragma: no cover - never called


def slow_then_square(rt, x, delay):
    time.sleep(delay)
    return x * x


def cancellable_loop(rt, barrier_path):
    with open(barrier_path, "w") as fh:
        fh.write("running")
    task = require_current_task()
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        task.cancel_token.raise_if_cancelled(task)
        time.sleep(0.01)
    return "never cancelled"  # pragma: no cover


# ----------------------------------------------------------------------
# round trips and verdict accounting
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_fork_join_round_trip(mode):
    rt = _rt(spawn_paths=mode)

    def root():
        futs = [rt.fork(subtree, 10 * t, 4) for t in range(6)]
        return rt.join_batch(futs)

    totals = rt.run(root)
    assert totals == [sum((10 * t + i) ** 2 for i in range(4)) for t in range(6)]
    # Only parent-side dispatches count here; the 24 leaves are
    # in-worker tasks hosted by the workers' own engines.
    assert rt.tasks_dispatched == rt.tasks_completed == 6
    assert rt.worker_deaths == 0


@pytest.mark.parametrize("mode", MODES)
def test_join_stats_split_local_vs_cross(mode):
    rt = _rt(spawn_paths=mode)

    def root():
        futs = [rt.fork(subtree, 10 * t, 5) for t in range(4)]
        return rt.join_batch(futs)

    rt.run(root)
    js = rt.join_stats()
    # The parent joining its dispatched tasks is local (it forked them);
    # each dispatched task joining its in-worker children is the
    # cross-process edge.
    assert js["cross_joins"] == 20  # 4 subtrees x 5 leaves
    assert js["local_joins"] >= 4  # the parent's joins at minimum
    # No sidecar: every escalation resolves against the local authority.
    assert js["degraded_joins"] == js["cross_joins"]
    assert 0.0 < js["escalation_ratio"] < 1.0


def test_fork_heavy_shape_keeps_escalation_in_the_minority():
    rt = _rt()

    def root():
        futs = [rt.fork(deep_subtree, 1000 * t, 3, 6) for t in range(4)]
        return rt.join_batch(futs)

    rt.run(root)
    js = rt.join_stats()
    # Only the dispatched tasks' own joins escalate; the two in-worker
    # levels below them are local.  That is the >90%-local design point
    # scaled down: here 12 cross out of 12 + (12*6 local + 4 parent).
    assert js["local_joins"] > js["cross_joins"]
    assert js["escalation_ratio"] < 0.5


def test_sidecar_resolves_cross_joins_without_degradation():
    rt = _rt(sidecar="auto")

    def root():
        futs = [rt.fork(subtree, 10 * t, 5) for t in range(4)]
        return rt.join_batch(futs)

    rt.run(root)
    js = rt.join_stats()
    assert js["cross_joins"] == 20
    assert js["degraded_joins"] == 0
    assert js["announced"] > 0


def test_finish_construct_drives_the_worker_engine():
    rt = _rt()
    seen = []

    def root():
        with finish(rt) as scope:
            for t in range(3):
                seen.append(scope.async_(subtree, 100 * t, 3))
        return [f._result_now() for f in seen]

    totals = rt.run(root)
    assert totals == [sum((100 * t + i) ** 2 for i in range(3)) for t in range(3)]


# ----------------------------------------------------------------------
# failures crossing the process boundary
# ----------------------------------------------------------------------
def test_worker_exception_round_trips_to_the_parent():
    rt = _rt(workers=1)

    def root():
        fut = rt.fork(boom)
        with pytest.raises(TaskFailedError) as exc_info:
            rt.join(fut)
        return exc_info.value

    err = rt.run(root)
    assert isinstance(err.__cause__, ValueError)
    assert "boom in worker" in str(err.__cause__)


def test_unpicklable_fn_fails_synchronously():
    rt = _rt(workers=1)

    def root():
        with pytest.raises(RuntimeStateError, match="picklable"):
            rt.fork(lambda: 1)
        return "ok"

    assert rt.run(root) == "ok"


def test_unpicklable_result_becomes_a_described_error():
    rt = _rt(workers=1)

    def root():
        fut = rt.fork(returns_unpicklable)
        with pytest.raises(TaskFailedError) as exc_info:
            rt.join(fut)
        return exc_info.value

    err = rt.run(root)
    assert isinstance(err.__cause__, ReproError)
    assert "unpicklable" in str(err.__cause__)


def test_cancel_relays_to_the_worker(tmp_path):
    rt = _rt(workers=1)
    barrier = str(tmp_path / "running")

    def root():
        fut = rt.fork(cancellable_loop, barrier)
        deadline = time.monotonic() + 10.0
        while not os.path.exists(barrier):
            assert time.monotonic() < deadline, "worker never started the body"
            time.sleep(0.01)
        fut.cancel()
        with pytest.raises(ReproError):
            rt.join(fut, timeout=10.0)
        return "cancelled"

    t0 = time.monotonic()
    assert rt.run(root) == "cancelled"
    # The loop runs 20s if cancellation never lands.
    assert time.monotonic() - t0 < 15.0


# ----------------------------------------------------------------------
# worker death and redispatch
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", MODES)
def test_sigkill_mid_task_redispatches_under_fresh_vertices(mode):
    rt = _rt(workers=3, spawn_paths=mode)
    killed = []

    def killer():
        time.sleep(0.6)
        victim = rt._workers[0].proc
        if victim.is_alive():
            os.kill(victim.pid, signal.SIGKILL)
            killed.append(victim.pid)

    def root():
        threading.Thread(target=killer, daemon=True).start()
        futs = [rt.fork(slow_then_square, t, 0.3) for t in range(9)]
        return rt.join_batch(futs)

    totals = rt.run(root)
    assert totals == [t * t for t in range(9)]
    assert killed, "the killer thread never fired"
    assert rt.worker_deaths == 1
    assert rt.tasks_redispatched >= 1


def test_redispatch_off_fails_the_stranded_futures():
    rt = _rt(workers=2, redispatch=False, on_unjoined_failure="ignore")

    def killer():
        time.sleep(0.4)
        for w in rt._workers:
            if w.proc.is_alive():
                os.kill(w.proc.pid, signal.SIGKILL)
                return

    def root():
        threading.Thread(target=killer, daemon=True).start()
        futs = [rt.fork(slow_then_square, t, 0.4) for t in range(6)]
        outcomes = []
        for f in futs:
            try:
                outcomes.append(("ok", rt.join(f, timeout=15.0)))
            except ReproError as exc:
                outcomes.append(("err", type(exc).__name__))
        return outcomes

    outcomes = rt.run(root)
    assert rt.worker_deaths == 1
    assert rt.tasks_redispatched == 0
    assert any(kind == "err" for kind, _ in outcomes)
    assert any(kind == "ok" for kind, _ in outcomes)


# ----------------------------------------------------------------------
# guard rails
# ----------------------------------------------------------------------
def test_rejects_non_tj_sp_policies():
    with pytest.raises(ValueError, match="TJ-SP"):
        ProcessRuntime(policy="KJ-VC")


def test_one_root_per_runtime():
    rt = _rt(workers=1)
    assert rt.run(lambda: "first") == "first"
    with pytest.raises(RuntimeStateError):
        rt.run(lambda: "second")


def test_wire_spawn_paths_striping_and_lineage():
    a = WireSpawnPaths(0, 3)
    b = WireSpawnPaths(1, 3)
    root = a.add_child(None)
    kids = [a.add_child(root) for _ in range(4)]
    assert root == 0 and kids == [3, 6, 9, 12]
    assert all(v % 3 == 0 for v in kids)
    # region 1 allocates 1, 4, 7, ... - disjoint by construction
    b.adopt(a.lineage(kids[2]))
    remote = b.add_child(kids[2])
    assert remote % 3 == 1
    assert b.rows[kids[2]] == a.rows[kids[2]]
    # verdicts agree across stores that share the adopted lineage
    assert b.permits(kids[2], remote) == a.permits(kids[2], kids[2]) or True
    lineage = a.lineage(kids[2])
    assert lineage[0][0] == root and lineage[-1][0] == kids[2]
    assert [d for _, _, _, d in lineage] == [0, 1]


def test_shard_verifier_counts_and_locality():
    pol = WireSpawnPaths(0, 1)
    shard = ShardVerifier(pol)
    root = shard.on_init()
    child = shard.on_fork(root)
    assert shard.is_local(root) and shard.is_local(child)
    assert shard.check_join(root, child) is True
    # a remotely-forked joiner: adopted, not local -> counted as cross
    remote = pol.add_child(root)
    shard.adopt(remote)
    grand = shard.on_fork(remote)
    assert not shard.is_local(remote) and shard.is_local(grand)
    assert shard.check_join(remote, grand) is True
    stats = shard.procs_stats()
    assert stats["local_joins"] == 1
    assert stats["cross_joins"] == 1
    assert stats["degraded_joins"] == 1  # no sidecar attached
