"""Wakeup-latency and no-busy-wait properties of the event-driven
supervision layer.

The rewrite's contract: task completion, cancellation and watchdog
verdicts deliver *targeted* wakes, so a blocked join (off the main
thread) performs O(1) wakeups and unblocks in far less than the old
50 ms maximum poll tick — while the poll-loop baseline, kept for the
runtime-overhead benchmark, still pays a wakeup per backoff tick.
"""

import threading
import time

from repro import TaskRuntime
from repro.analysis.runtime_overhead import wait_protocol
from repro.runtime import Phaser

#: the old protocol's maximum poll tick — the latency bar to beat
OLD_MAX_TICK = 0.05


def _capture_records(rt, joiner_task, expected, deadline=2.0):
    """Poll the registry until *expected* records of *joiner_task* show up."""
    limit = time.monotonic() + deadline
    records = []
    while len(records) < expected and time.monotonic() < limit:
        records = [r for r in rt.blocked_joins() if r.joiner is joiner_task]
        time.sleep(0.002)
    return records


class TestWakeupLatency:
    def test_join_unblocks_fast_after_completion(self):
        """A blocked joiner resumes well inside the old 50 ms max tick."""
        rt = TaskRuntime(policy="TJ-SP")
        release = threading.Event()

        def main():
            slow = rt.fork(lambda: (release.wait(2.0), time.perf_counter())[1])

            def waiter():
                finished_at = slow.join()
                return time.perf_counter() - finished_at

            w = rt.fork(waiter)
            time.sleep(0.15)  # the waiter is genuinely blocked by now
            release.set()
            return w.join()

        latency = rt.run(main)
        assert latency < OLD_MAX_TICK / 2, (
            f"join wakeup took {latency * 1e3:.1f}ms; targeted notify "
            f"should land far inside the old {OLD_MAX_TICK * 1e3:.0f}ms tick"
        )

    def test_cancellation_unblocks_fast(self):
        """Cancellation is a targeted wake too, not a next-tick discovery."""
        rt = TaskRuntime(policy="TJ-SP")

        def main():
            never = rt.fork(lambda: threading.Event().wait(5.0))

            def waiter():
                t0 = time.perf_counter()
                try:
                    never.join()
                except BaseException:
                    return time.perf_counter() - t0
                return None

            w = rt.fork(waiter)
            time.sleep(0.15)
            cancelled_at = time.perf_counter()
            w.cancel()
            elapsed = w.join()
            return elapsed is not None and (time.perf_counter() - cancelled_at)

        latency = rt.run(main)
        assert latency is not False
        assert latency < OLD_MAX_TICK / 2


class TestWakeupCounts:
    def test_blocked_join_performs_O1_wakeups(self):
        """One targeted wake for a long block — not O(duration/tick)."""
        rt = TaskRuntime(policy="TJ-SP")

        def main():
            slow = rt.fork(lambda: time.sleep(0.3) or 7)

            def waiter():
                return slow.join()

            w = rt.fork(waiter)
            records = _capture_records(rt, w.task, 1)
            assert w.join() == 7
            return records

        records = rt.run(main)
        assert len(records) == 1
        # the completion wake and at most a spurious straggler
        assert records[0].wakeups <= 2

    def test_polling_baseline_pays_a_wakeup_per_tick(self):
        """The contrast case: the poll loop wakes once per backoff tick."""
        rt = TaskRuntime(policy="TJ-SP")

        def main():
            slow = rt.fork(lambda: time.sleep(0.3) or 7)

            def waiter():
                return slow.join()

            w = rt.fork(waiter)
            records = _capture_records(rt, w.task, 1)
            assert w.join() == 7
            return records

        with wait_protocol("polling"):
            records = rt.run(main)
        assert len(records) == 1
        # 1+2+4+...+50ms ticks across a 300ms block: several wakeups
        assert records[0].wakeups >= 5

    def test_batch_prewait_shares_one_wake_event(self):
        """A known-permitted batch blocks on one latch: one shared event,
        a single wakeup delivered when the last joinee completes."""
        rt = TaskRuntime(policy="TJ-SP")

        def main():
            gate = threading.Event()
            slows = [rt.fork(lambda i=i: (gate.wait(2.0), i)[1]) for i in range(4)]

            def harvester():
                return rt.join_batch(slows)

            h = rt.fork(harvester)
            records = _capture_records(rt, h.task, 4)
            gate.set()
            assert h.join() == [0, 1, 2, 3]
            return records

        records = rt.run(main)
        assert len(records) == 4
        assert len({id(r._wake) for r in records}) == 1
        assert all(r.wakeups <= 2 for r in records)

    def test_finish_drain_single_wakeup(self):
        """The finish drain rides the same batch latch: the draining task
        blocks once for the whole scope, not once per child."""
        from repro.constructs import finish

        rt = TaskRuntime(policy="TJ-SP")

        def main():
            gate = threading.Event()

            def scoped():
                with finish(rt) as scope:
                    for i in range(4):
                        scope.async_(lambda i=i: (gate.wait(2.0), i)[1])
                return sorted(scope.results)

            f = rt.fork(scoped)
            records = _capture_records(rt, f.task, 4)
            gate.set()
            assert f.join() == [0, 1, 2, 3]
            return records

        records = rt.run(main)
        assert len(records) == 4
        assert len({id(r._wake) for r in records}) == 1
        assert all(r.wakeups <= 2 for r in records)


class TestPhaserWakeups:
    def test_one_notify_per_phase_advance(self):
        """Phase advances fire one notify-all each; a party blocked on a
        phase wakes exactly once per phase, not once per tick."""
        rt = TaskRuntime()
        ph = Phaser()
        phases = 3
        all_registered = threading.Barrier(2)

        def fast():
            ph.register()
            all_registered.wait()
            for _ in range(phases):
                ph.signal_and_wait()
            ph.deregister()

        def slow():
            ph.register()
            all_registered.wait()
            for _ in range(phases):
                time.sleep(0.05)  # fast is parked on the phase event by now
                ph.signal_and_wait()
            ph.deregister()

        def main():
            futs = [rt.fork(fast), rt.fork(slow)]
            for f in futs:
                f.join()

        rt.run(main)
        assert ph.phase >= phases
        # one notify per completed phase that had a parked waiter
        assert ph.notifies == phases
        # the fast party woke exactly once per phase (slow never parks:
        # it is always the last arrival and advances the phase itself)
        assert ph.wakeups == phases
