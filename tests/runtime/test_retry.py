"""Task retry with backoff: determinism, safety, and composition.

The load-bearing property is **no widening**: a retried task is a fresh
fork (a new vertex under the same parent), so the set of tasks
permitted to join the retry can only *shrink* relative to the failed
attempt — verified differentially against the policy family on random
fork trees.  The rest pins the backoff schedule (deterministic per
seed), the retryable filter (verdicts, cancellations and deadlock
diagnoses never retry), and composition with the supervision layer
(join timeouts, the stall watchdog, cancellation).
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.policy import POLICY_REGISTRY, make_policy
from repro.errors import (
    DeadlockDetectedError,
    JoinTimeoutError,
    PolicyViolationError,
    TaskCancelledError,
)
from repro.runtime import RetryPolicy, current_task
from repro.runtime.retry import DEFAULT_NON_RETRYABLE
from repro.runtime.threaded import TaskRuntime


# ----------------------------------------------------------------------
# the RetryPolicy object itself
# ----------------------------------------------------------------------
class TestRetryPolicySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_backoff_is_exponential_and_capped(self):
        spec = RetryPolicy(base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.0)
        assert spec.delay(1) == pytest.approx(0.01)
        assert spec.delay(2) == pytest.approx(0.02)
        assert spec.delay(3) == pytest.approx(0.04)
        assert spec.delay(4) == pytest.approx(0.05)  # capped
        assert spec.delay(9) == pytest.approx(0.05)

    def test_jitter_is_deterministic_per_seed_site_attempt(self):
        a = RetryPolicy(seed=7, jitter=0.5)
        b = RetryPolicy(seed=7, jitter=0.5)
        c = RetryPolicy(seed=8, jitter=0.5)
        for attempt in (1, 2, 3):
            assert a.delay(attempt, site="f") == b.delay(attempt, site="f")
        # different seeds and different sites draw different factors
        assert any(
            a.delay(k, site="f") != c.delay(k, site="f") for k in (1, 2, 3)
        )
        assert any(
            a.delay(k, site="f") != a.delay(k, site="g") for k in (1, 2, 3)
        )
        # jitter stays within the amplitude band around the raw delay
        raw = RetryPolicy(seed=7, jitter=0.0)
        for attempt in (1, 2, 3):
            lo, hi = 0.5 * raw.delay(attempt), 1.5 * raw.delay(attempt)
            assert lo <= a.delay(attempt, site="f") <= hi

    def test_retryable_filter(self):
        spec = RetryPolicy()
        assert spec.retryable(RuntimeError("transient"))
        for exc in (
            TaskCancelledError(),
            PolicyViolationError("TJ-SP", "a", "b"),
            DeadlockDetectedError(),
        ):
            assert not spec.retryable(exc)
        # every default-non-retryable class is honoured
        assert all(issubclass(t, BaseException) for t in DEFAULT_NON_RETRYABLE)
        narrow = RetryPolicy(retry_on=(KeyError,))
        assert narrow.retryable(KeyError("k"))
        assert not narrow.retryable(RuntimeError("other type"))


# ----------------------------------------------------------------------
# no widening: the differential property against the policy family
# ----------------------------------------------------------------------
def _random_tree(policy, seed, size=14):
    """Grow a random fork tree; returns the list of vertices."""
    rng = random.Random(seed)
    root = policy.add_child(None)
    vertices = [root]
    for _ in range(size):
        parent = rng.choice(vertices)
        vertices.append(policy.add_child(parent))
    return vertices


@pytest.mark.parametrize("policy_name", sorted(p for p in POLICY_REGISTRY if p != "none"))
def test_retry_never_widens_the_permitted_join_relation(policy_name):
    """For every vertex q: permits(q, attempt2) implies permits(q, attempt1).

    attempt1/attempt2 model a failed task and its retry — two forks under
    the same parent, the retry strictly later.  If a retry ever *widened*
    the relation, a join refused against the original could be permitted
    against the retry, losing the policy's soundness argument.
    """
    for seed in range(6):
        policy = make_policy(policy_name)
        vertices = _random_tree(policy, seed)
        parent = random.Random(1000 + seed).choice(vertices)
        attempt1 = policy.add_child(parent)
        attempt2 = policy.add_child(parent)  # the retry: a later sibling
        for q in vertices:
            if policy.permits(q, attempt2):
                assert policy.permits(q, attempt1), (
                    f"{policy_name} seed {seed}: retry widened the relation "
                    f"for joiner {q!r}"
                )


# ----------------------------------------------------------------------
# retries on the live runtime
# ----------------------------------------------------------------------
def _flaky(failures, exc=RuntimeError):
    """A task body that fails its first *failures* invocations."""
    state = {"calls": 0}

    def body():
        state["calls"] += 1
        if state["calls"] <= failures:
            raise exc(f"attempt {state['calls']} down")
        return state["calls"]

    return body, state


def test_fork_retries_to_success():
    rt = TaskRuntime(policy="TJ-SP")
    body, state = _flaky(2)
    spec = RetryPolicy(max_attempts=3, base_delay=0.0005, max_delay=0.002)

    def main():
        return rt.fork(body, retry=spec).join()

    assert rt.run(main) == 3  # third invocation answered
    assert state["calls"] == 3
    assert rt.tasks_retried == 2
    # every attempt was a *fresh fork*, re-verified like a younger sibling
    assert rt.verifier.stats.forks == 1 + 1 + 2  # root + child + 2 retries
    assert rt.verifier.stats.joins_checked == 1


def test_attempt_budget_exhausted_fails_with_last_error():
    rt = TaskRuntime(policy="TJ-SP", on_unjoined_failure="ignore")
    body, state = _flaky(99)
    spec = RetryPolicy(max_attempts=2, base_delay=0.0005, max_delay=0.002)

    def main():
        with pytest.raises(Exception) as info:
            rt.fork(body, retry=spec).join()
        assert "attempt 2 down" in str(info.value)

    rt.run(main)
    assert state["calls"] == 2
    assert rt.tasks_retried == 1


def test_non_retryable_failure_is_final():
    rt = TaskRuntime(policy="TJ-SP", on_unjoined_failure="ignore")
    body, state = _flaky(99, exc=TaskCancelledError)
    spec = RetryPolicy(max_attempts=5, base_delay=0.0005)

    def main():
        with pytest.raises(Exception):
            rt.fork(body, retry=spec).join()

    rt.run(main)
    assert state["calls"] == 1
    assert rt.tasks_retried == 0


def test_cancelled_task_is_not_retried():
    """Cancellation observed at failure time wins over the retry budget."""
    rt = TaskRuntime(policy="TJ-SP", on_unjoined_failure="ignore")
    calls = []

    def body():
        calls.append(1)
        current_task().cancel_token.cancel()  # cancel arrives mid-body
        raise RuntimeError("failed after cancellation")

    spec = RetryPolicy(max_attempts=5, base_delay=0.0005)

    def main():
        with pytest.raises(Exception):
            rt.fork(body, retry=spec).join()

    rt.run(main)
    assert len(calls) == 1
    assert rt.tasks_retried == 0


def test_join_timeout_then_retry_then_success_leaves_nothing_behind():
    """timeout -> retry -> success, with the watchdog on: afterwards the
    Armus graph and the join registry are empty and exactly one retry is
    on record (satellite: watchdog x retry interaction)."""
    rt = TaskRuntime(policy="TJ-SP", watchdog_interval=0.01)
    release = threading.Event()
    attempts = []

    def slow_grandchild():
        release.wait(2.0)
        return "done"

    def child():
        attempts.append(1)
        timeout = 0.02 if len(attempts) == 1 else 2.0
        if len(attempts) == 2:
            release.set()  # second attempt lets the grandchild finish
        return rt.fork(slow_grandchild).join(timeout=timeout)

    spec = RetryPolicy(max_attempts=2, base_delay=0.0005, max_delay=0.002)

    def main():
        return rt.fork(child, retry=spec).join()

    assert rt.run(main) == "done"
    assert len(attempts) == 2
    assert rt.tasks_retried == 1
    assert rt.watchdog is not None and rt.watchdog.deadlocks_detected == 0
    assert len(rt.detector.graph) == 0
    assert rt.blocked_joins() == []
    assert rt.detector.live_forced_edges == 0


def test_finish_forwards_retry():
    from repro.constructs import finish

    rt = TaskRuntime(policy="TJ-SP")
    body, state = _flaky(1)
    spec = RetryPolicy(max_attempts=2, base_delay=0.0005)

    def main():
        with finish(rt, retry=spec) as scope:
            scope.async_(body)

    rt.run(main)
    assert state["calls"] == 2
    assert rt.tasks_retried == 1
