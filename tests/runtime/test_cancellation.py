"""Cooperative cancellation: tokens, propagation, and the reaper.

``Future.cancel()`` requests cancellation; the task observes it at its
next cancellation point (fork, join entry, blocked wait, cooperative
scheduling step, or an explicit token check) and terminates with
:class:`TaskCancelledError`.  A queued-but-unstarted pool task is
dropped without ever running its body.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.constructs import finish
from repro.errors import (
    TaskCancelledError,
    TaskFailedError,
    UnjoinedTaskWarning,
)
from repro.runtime import (
    CooperativeRuntime,
    TaskRuntime,
    WorkSharingRuntime,
    require_current_task,
)

RUNTIMES = [
    ("threaded", lambda **kw: TaskRuntime(**kw)),
    ("pool", lambda **kw: WorkSharingRuntime(workers=2, max_workers=64, **kw)),
]


def _boom():
    raise ValueError("boom")


def _cancellable_loop():
    task = require_current_task()
    while True:
        task.cancel_token.raise_if_cancelled(task)
        time.sleep(0.002)


class TestPoolQueuedCancellation:
    def test_queued_task_never_runs(self):
        rt = WorkSharingRuntime(policy="TJ-SP", workers=1, max_workers=1)
        ran = []
        gate = threading.Event()

        def blocker():
            gate.wait(5)
            return "blocked"

        def victim():
            ran.append(True)  # pragma: no cover - must not execute

        def program():
            b = rt.fork(blocker)  # occupies the only worker
            v = rt.fork(victim)  # stays queued
            assert v.cancel() is True
            gate.set()
            with pytest.raises(TaskFailedError) as info:
                v.join()
            assert isinstance(info.value.__cause__, TaskCancelledError)
            assert v.cancelled()
            return b.join()

        assert rt.run(program) == "blocked"
        assert ran == []

    def test_cancel_after_completion_returns_false(self):
        rt = TaskRuntime(policy="TJ-SP")

        def program():
            fut = rt.fork(lambda: 42)
            assert fut.join() == 42
            assert fut.cancel() is False
            assert not fut.cancelled()
            return True

        assert rt.run(program)


@pytest.mark.parametrize("label,make_rt", RUNTIMES, ids=[r[0] for r in RUNTIMES])
class TestRunningTaskCancellation:
    def test_blocked_join_aborts_on_cancellation(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")
        release = threading.Event()

        def slow():
            release.wait(5)
            return "slow"

        def waiter(slow_fut):
            return slow_fut.join()  # blocks; cancellation aborts the wait

        def program():
            slow_fut = rt.fork(slow)
            waiter_fut = rt.fork(waiter, slow_fut)
            time.sleep(0.05)  # let the waiter block
            waiter_fut.cancel()
            with pytest.raises(TaskFailedError) as info:
                waiter_fut.join()
            assert isinstance(info.value.__cause__, TaskCancelledError)
            release.set()
            assert slow_fut.join() == "slow"
            # the abandoned wait left no supervision or detector state
            assert rt.blocked_joins() == []
            assert len(rt.detector.graph) == 0
            return True

        assert rt.run(program)

    def test_fork_is_a_cancellation_point(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")
        proceed = threading.Event()

        def forker():
            proceed.wait(5)
            rt.fork(lambda: None)  # pragma: no cover - fork must refuse

        def program():
            fut = rt.fork(forker)
            fut.cancel()
            proceed.set()
            with pytest.raises(TaskFailedError) as info:
                fut.join()
            assert isinstance(info.value.__cause__, TaskCancelledError)
            return True

        assert rt.run(program)

    def test_explicit_token_poll(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            fut = rt.fork(_cancellable_loop)
            time.sleep(0.02)
            fut.cancel()
            with pytest.raises(TaskFailedError):
                fut.join()
            assert fut.cancelled()
            return True

        assert rt.run(program)

    def test_join_batch_cancel_remaining(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            doomed = rt.fork(_boom)
            rest = [rt.fork(_cancellable_loop) for _ in range(2)]
            with pytest.raises(TaskFailedError) as info:
                rt.join_batch([doomed] + rest, cancel_remaining=True)
            assert info.value.batch_index == 0
            for fut in rest:
                with pytest.raises(TaskFailedError):
                    fut.join()
                assert fut.cancelled()
            return True

        assert rt.run(program)

    def test_finish_cancel_on_failure(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            with pytest.raises(TaskFailedError):
                with finish(rt, cancel_on_failure=True) as scope:
                    scope.async_(_boom)
                    for _ in range(3):
                        scope.async_(_cancellable_loop)
            cancelled = [f for f in scope.failures if isinstance(f.__cause__, TaskCancelledError)]
            assert len(cancelled) == 3
            return True

        assert rt.run(program)


class TestCooperativeCancellation:
    def test_scheduling_step_delivers_cancellation(self):
        rt = CooperativeRuntime(policy="TJ-SP")

        def spinner():
            while True:
                yield None

        def program():
            fut = rt.fork(spinner)
            yield None  # let the spinner start
            assert fut.cancel() is True
            yield None  # next step throws into the generator
            assert fut.done()
            assert fut.cancelled()
            return True

        assert rt.run(program)

    def test_task_can_catch_and_finish_gracefully(self):
        rt = CooperativeRuntime(policy="TJ-SP")

        def stubborn():
            try:
                while True:
                    yield None
            except TaskCancelledError:
                return "cleaned up"

        def program():
            fut = rt.fork(stubborn)
            yield None
            fut.cancel()
            yield None
            result = yield fut
            return result

        assert rt.run(program) == "cleaned up"


class TestUnjoinedFailureReaper:
    def test_warn_mode_surfaces_leaked_failures(self):
        rt = WorkSharingRuntime(policy="TJ-SP", workers=2)

        def program():
            rt.fork(_boom)  # never joined
            return True

        with pytest.warns(UnjoinedTaskWarning, match="never joined"):
            assert rt.run(program)

    def test_raise_mode_fails_the_run(self):
        rt = WorkSharingRuntime(policy="TJ-SP", workers=2, on_unjoined_failure="raise")

        def program():
            rt.fork(_boom)
            return True

        with pytest.raises(TaskFailedError) as info:
            rt.run(program)
        assert isinstance(info.value.__cause__, ValueError)

    def test_ignore_mode(self):
        rt = WorkSharingRuntime(policy="TJ-SP", workers=2, on_unjoined_failure="ignore")

        def program():
            rt.fork(_boom)
            return True

        assert rt.run(program)

    def test_cancelled_tasks_are_exempt(self):
        rt = WorkSharingRuntime(policy="TJ-SP", workers=2, on_unjoined_failure="raise")

        def program():
            fut = rt.fork(_cancellable_loop)
            time.sleep(0.02)
            fut.cancel()
            while not fut.done():
                time.sleep(0.005)
            return True  # cancelled + unjoined: the reaper must not raise

        assert rt.run(program)

    def test_joined_failures_are_not_reaped(self):
        rt = WorkSharingRuntime(policy="TJ-SP", workers=2, on_unjoined_failure="raise")

        def program():
            fut = rt.fork(_boom)
            with pytest.raises(TaskFailedError):
                fut.join()
            return True

        assert rt.run(program)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            TaskRuntime(policy="TJ-SP", on_unjoined_failure="explode")
