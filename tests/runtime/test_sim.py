"""Tests for the deterministic-simulation runtime: seeded scheduling,
exact schedule replay, and the virtual clock."""

import time

import pytest

from repro.errors import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    JoinTimeoutError,
    RuntimeStateError,
)
from repro.runtime import CooperativeRuntime
from repro.runtime.explore import Schedule
from repro.runtime.sim import SimRuntime, VirtualClock


def racy_program(rt):
    """Multiple tasks race to append; the result order is schedule-bound."""
    out = []

    def worker(name):
        yield None
        out.append(name)
        return name

    def main():
        futures = [rt.fork(worker, n) for n in ("a", "b", "c")]
        for future in futures:
            yield future
        return tuple(out)

    return main


def run_racy(rt):
    return rt.run(racy_program(rt))


class TestDeterminism:
    def test_same_seed_same_run(self):
        outcomes = []
        for _ in range(3):
            rt = SimRuntime(None, seed=42)
            result = run_racy(rt)
            outcomes.append((result, rt.recorded_schedule, rt.steps))
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_seeds_reach_different_interleavings(self):
        results = set()
        for seed in range(12):
            rt = SimRuntime(None, seed=seed)
            results.add(run_racy(rt))
        assert len(results) > 1  # the program genuinely races

    def test_unseeded_fifo_matches_plain_cooperative(self):
        """seed=None is the cooperative runtime plus recording."""
        coop = CooperativeRuntime(None)
        sim = SimRuntime(None, seed=None)
        assert coop.run(racy_program(coop)) == sim.run(racy_program(sim))
        assert all(c == 0 for c in sim.recorded_schedule.choices)


class TestReplay:
    def test_replay_retraces_decision_for_decision(self):
        rt = SimRuntime(None, seed=7)
        result = run_racy(rt)
        witness = rt.recorded_schedule
        assert witness.seed == 7

        replay = SimRuntime(None, schedule=witness)
        assert run_racy(replay) == result
        replayed = replay.recorded_schedule
        assert replayed.choices == witness.choices
        assert replayed.widths == witness.widths

    def test_strict_replay_rejects_width_divergence(self):
        rt = SimRuntime(None, seed=7)
        run_racy(rt)
        witness = rt.recorded_schedule

        def narrower(rt2):
            def main():
                f = rt2.fork(lambda: 1)
                yield None
                return (yield f)

            return main

        replay = SimRuntime(None, schedule=witness, strict=True)
        with pytest.raises(RuntimeStateError, match="diverged"):
            replay.run(narrower(replay))

    def test_schedule_file_roundtrip(self, tmp_path):
        rt = SimRuntime(None, seed=3)
        result = run_racy(rt)
        path = str(tmp_path / "schedule.json")
        rt.recorded_schedule.save(path)

        loaded = Schedule.load(path)
        replay = SimRuntime(None, schedule=loaded)
        assert run_racy(replay) == result


class TestVirtualClock:
    def test_sleep_is_instant_and_deadline_ordered(self):
        rt = SimRuntime(None, seed=None)
        order = []

        def sleeper(name, dt):
            yield rt.sleep(dt)
            order.append(name)
            return name

        def main():
            slow = rt.fork(sleeper, "slow", 5.0)
            fast = rt.fork(sleeper, "fast", 1.0)
            yield slow
            yield fast
            return tuple(order)

        t0 = time.perf_counter()
        assert rt.run(main) == ("fast", "slow")
        assert time.perf_counter() - t0 < 1.0  # no wall sleeping
        assert rt.now >= 5.0

    def test_untimed_event_wait_refused(self):
        class _Event:
            def is_set(self):
                return False

        with pytest.raises(RuntimeStateError, match="untimed"):
            VirtualClock().wait(_Event())

    def test_join_timeout_fires_at_the_virtual_deadline(self):
        rt = SimRuntime(None, seed=None, default_join_timeout=2.0)

        def stuck():
            yield rt.sleep(100.0)
            return "late"

        def main():
            future = rt.fork(stuck)
            try:
                yield future
            except JoinTimeoutError:
                return ("timeout", rt.now)
            return "joined"

        assert rt.run(main) == ("timeout", 2.0)
        assert rt.timeouts_fired == 1

    def test_timeout_then_deadlock_without_rescue(self):
        """The same mutual join deadlocks without a timeout and is
        rescued with one — the predictor's core asymmetry."""

        def mutual(rt):
            futures = {}

            def a():
                while "b" not in futures:
                    yield None
                try:
                    yield futures["b"]
                except JoinTimeoutError:
                    pass

            def b():
                while "a" not in futures:
                    yield None
                try:
                    yield futures["a"]
                except JoinTimeoutError:
                    pass

            def main():
                futures["a"] = rt.fork(a)
                futures["b"] = rt.fork(b)
                for name in ("a", "b"):
                    while True:
                        try:
                            yield futures[name]
                        except JoinTimeoutError:
                            continue  # the deadline applies to every join
                        break
                return "done"

            return main

        bare = SimRuntime(None, seed=None)
        with pytest.raises(DeadlockDetectedError) as excinfo:
            bare.run(mutual(bare))
        assert len(excinfo.value.cycle) >= 2

        rescued = SimRuntime(None, seed=None, default_join_timeout=1.0)
        assert rescued.run(mutual(rescued)) == "done"
        assert rescued.timeouts_fired >= 1

    def test_policy_avoids_what_the_bare_simulator_realizes(self):
        def mutual(rt):
            futures = {}

            def a():
                while "b" not in futures:
                    yield None
                try:
                    yield futures["b"]
                except DeadlockAvoidedError:
                    pass

            def b():
                while "a" not in futures:
                    yield None
                try:
                    yield futures["a"]
                except DeadlockAvoidedError:
                    pass

            def main():
                futures["a"] = rt.fork(a)
                futures["b"] = rt.fork(b)
                yield futures["a"]
                yield futures["b"]
                return "done"

            return main

        for policy in ("TJ-SP", "KJ-VC"):
            rt = SimRuntime(policy, fallback=True, seed=11)
            assert rt.run(mutual(rt)) == "done"


class TestMaxSteps:
    def test_step_budget_is_enforced(self):
        rt = SimRuntime(None, seed=None, max_steps=10)

        def spin():
            while True:
                yield None

        with pytest.raises(RuntimeStateError, match="exceeded"):
            rt.run(spin)
