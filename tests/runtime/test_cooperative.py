"""Unit and integration tests for the deterministic cooperative runtime."""

import pytest

from repro import (
    CooperativeRuntime,
    DeadlockAvoidedError,
    DeadlockDetectedError,
    PolicyViolationError,
    TaskFailedError,
)
from repro.errors import RuntimeStateError
from repro.runtime import current_task


class TestBasics:
    def test_generator_fork_join(self):
        rt = CooperativeRuntime()

        def child():
            return 21

        def main():
            fut = rt.fork(child)
            value = yield fut
            return value * 2

        assert rt.run(main) == 42

    def test_plain_function_root(self):
        rt = CooperativeRuntime()
        assert rt.run(lambda: 7) == 7

    def test_generator_children(self):
        rt = CooperativeRuntime()

        def child(n):
            yield None  # cooperative yield
            return n * n

        def main():
            futs = [rt.fork(child, i) for i in range(5)]
            total = 0
            for f in futs:
                total += yield f
            return total

        assert rt.run(main) == sum(i * i for i in range(5))

    def test_nested_generators(self):
        rt = CooperativeRuntime()

        def fib(n):
            if n < 2:
                return n
            a = rt.fork(fib, n - 1)
            b = rt.fork(fib, n - 2)
            ra = yield a
            rb = yield b
            return ra + rb

        assert rt.run(fib, 12) == 144

    def test_yield_none_reschedules(self):
        rt = CooperativeRuntime()
        log = []

        def ticker(name, count):
            for _ in range(count):
                log.append(name)
                yield None

        def main():
            a = rt.fork(ticker, "a", 3)
            b = rt.fork(ticker, "b", 3)
            yield a
            yield b

        rt.run(main)
        # FIFO scheduling interleaves the tickers deterministically
        assert log == ["a", "b", "a", "b", "a", "b"]

    def test_determinism_across_runs(self):
        def program(rt):
            order = []

            def worker(i):
                order.append(i)
                yield None
                order.append(10 + i)
                return i

            def main():
                futs = [rt.fork(worker, i) for i in range(4)]
                total = 0
                for f in futs:
                    total += yield f
                return total, tuple(order)

            return rt.run(main), rt.steps

        r1 = program(CooperativeRuntime())
        r2 = program(CooperativeRuntime())
        assert r1 == r2

    def test_task_exception_delivered_at_join(self):
        rt = CooperativeRuntime()

        def bad():
            raise ValueError("inner")

        def main():
            fut = rt.fork(bad)
            try:
                yield fut
            except TaskFailedError as exc:
                assert isinstance(exc.__cause__, ValueError)
                return "recovered"
            return "not reached"

        assert rt.run(main) == "recovered"

    def test_current_task_tracked_per_step(self):
        rt = CooperativeRuntime()

        def child():
            return current_task().name

        def main():
            me = current_task().name
            other = yield rt.fork(child)
            assert current_task().name == me
            return me, other

        me, other = rt.run(main)
        assert me == "root" and other != "root"


class TestJoinSemantics:
    def test_sync_join_on_done_future(self):
        rt = CooperativeRuntime()

        def main():
            fut = rt.fork(lambda: 5)
            yield fut  # wait for it
            # a second, synchronous join on the terminated task:
            return fut.join() + 1

        assert rt.run(main) == 6

    def test_sync_join_on_pending_future_refused(self):
        rt = CooperativeRuntime()

        def main():
            fut = rt.fork(lambda: 5)
            with pytest.raises(RuntimeStateError, match="yield future"):
                fut.join()
            return (yield fut)

        assert rt.run(main) == 5

    def test_yield_non_future_is_an_error_in_the_task(self):
        rt = CooperativeRuntime()

        def main():
            with pytest.raises(RuntimeStateError, match="yield a Future"):
                yield 42
            return "ok"

        assert rt.run(main) == "ok"

    def test_foreign_future_is_an_error_in_the_task(self):
        rt1 = CooperativeRuntime()
        rt2 = CooperativeRuntime()

        def main1():
            return rt1.fork(lambda: 1)

        foreign = rt1.run(main1)

        def main2():
            with pytest.raises(RuntimeStateError, match="different runtime"):
                yield foreign
            return "ok"

        assert rt2.run(main2) == "ok"

    def test_run_twice_refused(self):
        rt = CooperativeRuntime()
        rt.run(lambda: None)
        with pytest.raises(RuntimeStateError):
            rt.run(lambda: None)


class TestDeadlockHandling:
    def _mutual_join_program(self, rt):
        """Two siblings each joining the other — a guaranteed cycle."""
        box = {}

        def task1():
            while "f2" not in box:
                yield None
            return (yield box["f2"])

        def task2():
            return (yield box["f1"])

        def main():
            box["f1"] = rt.fork(task1)
            box["f2"] = rt.fork(task2)
            r1 = yield box["f1"]
            r2 = yield box["f2"]
            return r1, r2

        return main

    def test_unprotected_deadlock_is_detected_not_hung(self):
        rt = CooperativeRuntime(policy=None, fallback=False)
        main = self._mutual_join_program(rt)
        with pytest.raises(DeadlockDetectedError) as exc_info:
            rt.run(main)
        assert exc_info.value.cycle is not None

    def test_tj_with_fallback_avoids_the_deadlock(self):
        """Without recovery code, the avoided deadlock surfaces as a task
        failure chain whose root cause is DeadlockAvoidedError — the
        program terminates instead of hanging."""
        rt = CooperativeRuntime(policy="TJ-SP")
        main = self._mutual_join_program(rt)
        with pytest.raises(TaskFailedError) as exc_info:
            rt.run(main)
        cause = exc_info.value
        while isinstance(cause, TaskFailedError):
            cause = cause.__cause__
        assert isinstance(cause, DeadlockAvoidedError)
        assert rt.detector.stats.deadlocks_avoided == 1

    def test_avoided_deadlock_is_catchable_in_the_task(self):
        rt = CooperativeRuntime(policy="TJ-SP")
        box = {}

        def task1():
            while "f2" not in box:
                yield None
            try:
                return (yield box["f2"])
            except DeadlockAvoidedError:
                return "t1-recovered"

        def task2():
            try:
                return (yield box["f1"])
            except DeadlockAvoidedError:
                return "t2-recovered"

        def main():
            box["f1"] = rt.fork(task1)
            box["f2"] = rt.fork(task2)
            r1 = yield box["f1"]
            r2 = yield box["f2"]
            return {r1, r2}

        results = rt.run(main)
        recovered = {r for r in results if isinstance(r, str) and "recovered" in r}
        assert len(recovered) == 1
        assert rt.detector.stats.deadlocks_avoided == 1

    def test_policy_violation_without_fallback(self):
        rt = CooperativeRuntime(policy="TJ-SP", fallback=False)

        def main():
            fut = rt.fork(lambda: 1)
            own = {}

            def child():
                try:
                    yield own["fut"]
                except PolicyViolationError:
                    return "faulted"
                return "not reached"

            own["fut"] = rt.fork(child)
            yield fut
            return (yield own["fut"])

        assert rt.run(main) == "faulted"

    def test_self_join_refused(self):
        """A task yielding its own future: the irreflexive order refuses
        it before it can block forever."""
        rt = CooperativeRuntime(policy="TJ-SP")
        box = {}

        def selfish():
            while "me" not in box:
                yield None
            try:
                yield box["me"]
            except (PolicyViolationError, DeadlockAvoidedError) as exc:
                return type(exc).__name__
            return "not reached"

        def main():
            box["me"] = rt.fork(selfish)
            return (yield box["me"])

        result = rt.run(main)
        assert result in ("PolicyViolationError", "DeadlockAvoidedError")

    def test_self_cycle_three_tasks(self):
        """A three-task ring, deterministically avoided."""
        rt = CooperativeRuntime(policy="TJ-SP")
        box = {}

        def worker(me, other):
            while other not in box:
                yield None
            try:
                return (yield box[other])
            except DeadlockAvoidedError:
                return f"{me}-avoided"

        def main():
            box["f1"] = rt.fork(worker, "t1", "f2")
            box["f2"] = rt.fork(worker, "t2", "f3")
            box["f3"] = rt.fork(worker, "t3", "f1")
            results = []
            for key in ("f1", "f2", "f3"):
                results.append((yield box[key]))
            return results

        results = rt.run(main)
        # Exactly one worker was refused and recovered; the other two
        # joined successfully and returned the recovered value onward.
        assert len(set(results)) == 1
        assert results[0].endswith("-avoided")
        assert rt.detector.stats.deadlocks_avoided == 1
