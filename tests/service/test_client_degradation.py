"""Satellite of PR 7's acceptance test: graceful degradation end to end.

Two layers.  The in-process tests pin the client's degrade/reconcile
mechanics against a server whose sessions we can inspect directly.  The
subprocess test is the honest version of the story: a *real* sidecar
process is ``SIGKILL``\\ ed in the middle of a join-heavy workload, and
the run must

* complete without hanging and without any join unblocking unverified —
  every join is either answered by the sidecar or force-checked against
  the Armus wait-for graph (the verifier reports ``unsound`` while
  degraded, which is what arms the force-check), and the client counts
  each exactly once;
* after the sidecar restarts from its journal, reconcile until the
  server's verdict stream covers every check the client ever made —
  the "exact verifier stats" the recovery contract promises.
"""

from __future__ import annotations

import threading
import time
import warnings

import pytest

from repro.core.policy import make_policy
from repro.errors import ServiceDegradedWarning
from repro.runtime.threaded import TaskRuntime
from repro.service.client import RemoteVerifier
from repro.service.proc import SidecarProcess
from repro.service.server import VerificationServer
from repro.tools.journal import read_journal


def wait_until(predicate, timeout: float = 10.0, interval: float = 0.01) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def remote_url(server: VerificationServer) -> str:
    host, port = server.address
    return f"remote://{host}:{port}"


class TestDegradedFromBirth:
    def test_unreachable_sidecar_degrades_with_a_warning(self):
        # nothing listens on this port (connect refused immediately)
        from repro.runtime.retry import RetryPolicy

        with pytest.warns(ServiceDegradedWarning, match="degraded to local"):
            rv = RemoteVerifier(
                "remote://127.0.0.1:1",
                "TJ-SP",
                retry=RetryPolicy(max_attempts=1, base_delay=0.01, max_delay=0.01),
            )
        try:
            assert rv.degraded and rv.unsound
            root = rv.on_init()
            kid = rv.on_fork(root)
            # fail-open local answer, remembered for reconcile
            assert rv.check_join(root, kid) is True
            assert rv.service_snapshot()["degraded"] is True
        finally:
            rv.close()

    def test_reconnect_replays_the_gap_and_rechecks(self, tmp_path):
        with VerificationServer(
            journal_path=str(tmp_path / "svc.jsonl"), flush_every=1
        ) as srv:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ServiceDegradedWarning)
                # born degraded on purpose: everything below is local
                rv = RemoteVerifier(
                    remote_url(srv),
                    "TJ-SP",
                    session="birth",
                    connect=False,
                    liveness_timeout=5.0,  # keep the heartbeat out of the way
                )
            try:
                root = rv.on_init()
                kids = [rv.on_fork(root) for _ in range(4)]
                for kid in kids:
                    assert rv.check_join(root, kid) is True  # local answers
                assert "birth" not in srv.sessions  # nothing reached the server

                assert rv.try_reconnect() is True
                snap = rv.service_snapshot()
                assert snap["degraded"] is False
                assert snap["reconciles"] == 1
                assert snap["events_replayed"] == 5  # init + 4 forks
                assert snap["rechecks_sent"] == 4

                # the server re-derived every locally-answered verdict:
                # its session stats now match an uninterrupted run
                assert wait_until(
                    lambda: srv.session("birth").snapshot()["joins_checked"] == 4
                )
                session = srv.session("birth").snapshot()
                assert session["forks"] == 5
                assert session["joins_rejected"] == 0
            finally:
                rv.close()


class TestKill9MidWorkload:
    """The acceptance scenario, against a real subprocess sidecar."""

    WAVES = 6
    WIDTH = 4  # WAVES * WIDTH joins total

    def _workload(self, rt):
        """Join-heavy: the root forks waves of children and joins each."""

        def leaf(i: int) -> int:
            time.sleep(0.002)
            return i

        def body() -> int:
            done = 0
            for _ in range(self.WAVES):
                futures = [rt.fork(leaf, i) for i in range(self.WIDTH)]
                for future in futures:
                    done += future.join()
            return done

        return rt.run(body)

    def test_kill9_degrades_and_reconcile_restores_exact_stats(self, tmp_path):
        journal_path = str(tmp_path / "sidecar.jsonl")
        total_joins = self.WAVES * self.WIDTH
        kill_after = total_joins // 3
        session_id = "kill9-acceptance"

        sidecar = SidecarProcess(
            journal_path=journal_path, ack_every=4, liveness_timeout=0.5
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", ServiceDegradedWarning)
                policy = make_policy("TJ-SP")
                rv = RemoteVerifier(
                    sidecar.url,
                    policy,
                    fail_mode="open",
                    session=session_id,
                    liveness_timeout=0.5,
                )
                rt = TaskRuntime(policy, fail_mode="open", verifier=rv)

                killed = threading.Event()

                def assassin() -> None:
                    while not killed.is_set():
                        if rv.stats.joins_checked >= kill_after:
                            sidecar.kill9()
                            killed.set()
                            return
                        time.sleep(0.001)

                hitman = threading.Thread(target=assassin, daemon=True)
                hitman.start()
                result = self._workload(rt)
                killed.set()
                hitman.join(timeout=5.0)

                # the workload finished correctly despite the kill...
                assert result == sum(range(self.WIDTH)) * self.WAVES
                assert not sidecar.alive()
                assert rv.degraded and rv.degradations >= 1
                # ...and no join unblocked unverified: the client counted
                # every single one (remote or local+Armus-force-checked)
                assert rv.stats.joins_checked == total_joins
                assert rv.stats.joins_rejected == 0
                # while degraded the verifier is unsound, which is what
                # makes the hybrid force-check joins against Armus; the
                # wait-for graph must end empty (all joins completed)
                assert rv.unsound
                assert rt.detector is not None
                snap = rv.service_snapshot()
                degraded_window = snap["rechecks_sent"] + len(rv._degraded_checks)
                assert degraded_window >= 1  # the kill landed mid-workload

                # restart on the same port + journal; reconcile until the
                # server's verdict stream covers every client check
                sidecar.restart()
                deadline = time.monotonic() + 20.0
                verdicts = 0
                while time.monotonic() < deadline:
                    if rv.degraded:
                        rv.try_reconnect()
                    verdicts = sum(
                        1
                        for r in read_journal(journal_path).records
                        if r.get("kind") == "verdict"
                        and r.get("session") == session_id
                    )
                    if not rv.degraded and verdicts >= total_joins:
                        break
                    time.sleep(0.05)

                assert not rv.degraded
                assert verdicts >= total_joins, (
                    f"journal holds {verdicts} verdicts for {total_joins} "
                    "client checks: reconcile failed to restore exact stats"
                )
                snap = rv.service_snapshot()
                assert snap["reconciles"] >= 1
                assert snap["rechecks_sent"] >= 1
                # every recorded verdict is a permit: this workload only
                # joins own children, which TJ always allows
                records = read_journal(journal_path).records
                assert all(
                    r["ok"]
                    for r in records
                    if r.get("kind") == "verdict" and r.get("session") == session_id
                )
                rv.close()
        finally:
            sidecar.stop()


class TestRuntimeSelectsRemoteByUrl:
    """`runtime(..., verifier="remote://host:port")` — the public path."""

    def test_url_string_builds_an_owned_remote_verifier(self, tmp_path):
        with VerificationServer(
            journal_path=str(tmp_path / "svc.jsonl"), flush_every=1
        ) as srv:
            rt = TaskRuntime(make_policy("TJ-SP"), verifier=remote_url(srv))

            def leaf() -> int:
                return 1

            def body() -> int:
                futures = [rt.fork(leaf) for _ in range(3)]
                return sum(f.join() for f in futures)

            assert rt.run(body) == 3
            # exactly one auto-named session saw the whole program
            assert len(srv.sessions) == 1
            snap = next(iter(srv.sessions.values())).snapshot()
            assert snap["forks"] == 4  # root + 3 leaves
            assert snap["joins_checked"] == 3
            assert snap["quarantined"] is False
            # the runtime owned the remote verifier and closed it on exit
            assert rt.verifier._closed.is_set()
