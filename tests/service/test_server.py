"""The verification sidecar server: sessions, parity, isolation, recovery.

Everything here runs an in-process :class:`VerificationServer` over real
loopback TCP — the same sockets and threads as production, minus the
subprocess boundary (covered by ``test_client_degradation`` and the
chaos suite).  In-process matters for the fault tests: they reach into a
live session and swap its policy for one that explodes, which no public
surface allows (the registry contains no broken policies, by design).
"""

from __future__ import annotations

import socket
import time
import warnings

import pytest

from repro.core.policy import make_policy
from repro.core.verifier import Verifier
from repro.errors import (
    PolicyQuarantinedError,
    PolicyQuarantineWarning,
    ServiceBackpressureError,
    ServiceDegradedWarning,
)
from repro.service.client import RemoteVerifier, parse_remote_url
from repro.service.server import VerificationServer
from repro.service.wire import WIRE_VERSION, RecordStream


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.005) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def remote_url(server: VerificationServer) -> str:
    host, port = server.address
    return f"remote://{host}:{port}"


def raw_session(
    server: VerificationServer,
    session: str = "raw",
    *,
    policy: str = "TJ-SP",
    fail_mode: str = "open",
    wire: int = WIRE_VERSION,
):
    """Hand-rolled client: returns (stream, first server reply)."""
    sock = socket.create_connection(server.address, timeout=5.0)
    sock.settimeout(5.0)
    stream = RecordStream(sock)
    stream.send(
        {
            "kind": "hello",
            "session": session,
            "policy": policy,
            "fail_mode": fail_mode,
            "wire": wire,
            "resume": False,
        }
    )
    return stream, stream.recv()


class _ExplodingPolicy:
    """Stand-in for a policy with an internal bug: every call raises."""

    name = "TJ-SP"
    stable_permits = True

    def permits(self, joiner, joinee):
        raise RuntimeError("injected policy bug")

    def permits_many(self, joiner, joinees):
        raise RuntimeError("injected policy bug")


@pytest.fixture()
def server(tmp_path):
    srv = VerificationServer(
        journal_path=str(tmp_path / "service.jsonl"), ack_every=4, flush_every=1
    )
    with srv:
        yield srv


class TestHandshake:
    def test_welcome_quotes_the_session_state(self, server):
        stream, welcome = raw_session(server, "hs")
        try:
            assert welcome["kind"] == "welcome"
            assert welcome["session"] == "hs"
            assert welcome["last_seq"] == -1  # nothing applied yet
            assert welcome["quarantined"] is False
            assert welcome["fail_mode"] == "open"
            assert welcome["journal"] is True
        finally:
            stream.sock.close()

    def test_fail_raise_is_coerced_to_open(self, server):
        # "raise" cannot cross a process boundary; the welcome reports
        # the coercion so the client knows the posture it actually got.
        stream, welcome = raw_session(server, "coerce", fail_mode="raise")
        try:
            assert welcome["fail_mode"] == "open"
        finally:
            stream.sock.close()

    def test_wire_version_mismatch_is_refused(self, server):
        stream, reply = raw_session(server, "skew", wire=WIRE_VERSION + 1)
        try:
            assert reply["kind"] == "error"
            assert "wire version" in reply["message"]
        finally:
            stream.sock.close()

    def test_resume_with_a_different_policy_is_refused(self, server):
        first, _ = raw_session(server, "tenant", policy="TJ-SP")
        second, reply = raw_session(server, "tenant", policy="KJ-SS")
        try:
            assert reply["kind"] == "error"
            assert "TJ-SP" in reply["message"]
        finally:
            first.sock.close()
            second.sock.close()

    def test_duplicate_hello_on_an_open_session_is_an_error(self, server):
        stream, welcome = raw_session(server, "dup")
        try:
            assert welcome["kind"] == "welcome"
            stream.send(
                {
                    "kind": "hello",
                    "session": "dup",
                    "policy": "TJ-SP",
                    "fail_mode": "open",
                    "wire": WIRE_VERSION,
                    "resume": True,
                }
            )
            reply = stream.recv()
            assert reply["kind"] == "error"
            assert "duplicate hello" in reply["message"]
        finally:
            stream.sock.close()

    def test_resume_welcome_quotes_the_applied_watermark(self, server):
        stream, _ = raw_session(server, "resume")
        stream.send({"kind": "init", "task": 0, "cseq": 0})
        stream.send({"kind": "fork", "parent": 0, "child": 1, "cseq": 1})
        # a check is answered only after every earlier event applied
        stream.send({"kind": "check", "waiter": 0, "joinee": 1, "req": 0})
        while True:
            reply = stream.recv()
            if reply["kind"] == "verdict":
                break
        stream.sock.close()
        again, welcome = raw_session(server, "resume")
        try:
            assert welcome["last_seq"] == 1
        finally:
            again.sock.close()


class TestVerdictParity:
    """The sidecar must answer exactly as a local Verifier would."""

    def _program(self, v):
        """root forks a, b; a forks c.  Returns the four vertices."""
        root = v.on_init()
        a = v.on_fork(root)
        b = v.on_fork(root)
        c = v.on_fork(a)
        return root, a, b, c

    def test_single_checks_match_local(self, server):
        local = Verifier(make_policy("TJ-SP"))
        lroot, la, lb, lc = self._program(local)
        with RemoteVerifier(remote_url(server), "TJ-SP", session="parity-1") as rv:
            rroot, ra, rb, rc = self._program(rv)
            pairs = [
                ((lroot, la), (rroot, ra)),
                ((lroot, lb), (rroot, rb)),
                ((la, lc), (ra, rc)),
                ((la, lb), (ra, rb)),  # sibling join: the interesting verdict
                ((lb, lc), (rb, rc)),
                ((lroot, lc), (rroot, rc)),
            ]
            verdicts = []
            for (lw, lj), (rw, rj) in pairs:
                want = local.check_join(lw, lj)
                got = rv.check_join(rw, rj)
                assert got == want
                verdicts.append(want)
            # the program must exercise both verdicts or parity is vacuous
            assert True in verdicts and False in verdicts
            assert rv.stats.joins_checked == local.stats.joins_checked
            assert rv.stats.joins_rejected == local.stats.joins_rejected

    def test_batch_checks_match_local(self, server):
        local = Verifier(make_policy("TJ-SP"))
        lroot, la, lb, lc = self._program(local)
        with RemoteVerifier(remote_url(server), "TJ-SP", session="parity-2") as rv:
            rroot, ra, rb, rc = self._program(rv)
            want = local.check_joins(la, [lc, lb])
            got = rv.check_joins(ra, [rc, rb])
            assert got == want
            assert rv.check_joins(rroot, []) == []

    def test_server_session_counts_every_check(self, server):
        with RemoteVerifier(remote_url(server), "TJ-SP", session="counts") as rv:
            root, a, b, _ = self._program(rv)
            rv.check_join(root, a)
            rv.check_joins(root, [a, b])
            snap = server.session("counts").snapshot()
            assert snap["joins_checked"] == 3
            assert snap["forks"] == rv.stats.forks == 4
            assert snap["vertices"] == 4


class TestProtocolFaults:
    def test_check_against_an_unknown_rid_gets_an_error_reply(self, server):
        stream, _ = raw_session(server, "norid")
        try:
            stream.send({"kind": "check", "waiter": 7, "joinee": 8, "req": 99})
            reply = stream.recv()
            assert reply["kind"] == "error"
            assert reply["req"] == 99
            assert "unknown vertex" in reply["message"]
        finally:
            stream.sock.close()

    def test_duplicate_events_are_dropped_idempotently(self, server):
        # an over-eager resume replay must not double-apply state
        stream, _ = raw_session(server, "dups")
        try:
            stream.send({"kind": "init", "task": 0, "cseq": 0})
            for _ in range(3):  # the same fork three times
                stream.send({"kind": "fork", "parent": 0, "child": 1, "cseq": 1})
            stream.send({"kind": "check", "waiter": 0, "joinee": 1, "req": 0})
            while stream.recv()["kind"] != "verdict":
                pass
            snap = server.session("dups").snapshot()
            assert snap["forks"] == 2  # init + one fork, not three
            assert snap["applied_seq"] == 1
        finally:
            stream.sock.close()


class TestQuarantineIsolation:
    """One tenant's policy bug never poisons another tenant."""

    def _poison(self, server, session_id: str) -> None:
        server.session(session_id).verifier.policy = _ExplodingPolicy()

    def test_fail_open_client_adopts_the_quarantine_and_keeps_going(self, server):
        with RemoteVerifier(remote_url(server), "TJ-SP", session="sick") as sick, \
                RemoteVerifier(remote_url(server), "TJ-SP", session="healthy") as healthy:
            s_root = sick.on_init()
            s_kid = sick.on_fork(s_root)
            h_root = healthy.on_init()
            h_a = healthy.on_fork(h_root)
            h_b = healthy.on_fork(h_root)
            assert sick.check_join(s_root, s_kid) is True  # healthy so far

            self._poison(server, "sick")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PolicyQuarantineWarning)
                # fail-open: the faulting check still answers True
                assert sick.check_join(s_root, s_kid) is True
                assert wait_until(lambda: sick.quarantined)
            assert sick.unsound  # HybridVerifier force-checks from here on
            assert server.session("sick").snapshot()["quarantined"] is True

            # the other tenant's session is a different policy instance:
            # verdicts stay real, nothing is quarantined
            assert healthy.check_join(h_root, h_a) is True
            assert healthy.check_join(h_a, h_b) is False
            assert not healthy.quarantined
            assert server.session("healthy").snapshot()["quarantined"] is False

    def test_fail_closed_client_gets_the_quarantine_raised(self, server):
        with RemoteVerifier(
            remote_url(server), "TJ-SP", fail_mode="closed", session="closed"
        ) as rv:
            root = rv.on_init()
            kid = rv.on_fork(root)
            assert rv.check_join(root, kid) is True
            self._poison(server, "closed")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PolicyQuarantineWarning)
                with pytest.raises(PolicyQuarantinedError):
                    rv.check_join(root, kid)
                # and every later check short-circuits client-side
                with pytest.raises(PolicyQuarantinedError):
                    rv.check_join(root, kid)

    def test_quarantine_survives_in_the_journal(self, server):
        with RemoteVerifier(remote_url(server), "TJ-SP", session="post") as rv:
            root = rv.on_init()
            kid = rv.on_fork(root)
            rv.check_join(root, kid)
            self._poison(server, "post")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", PolicyQuarantineWarning)
                rv.check_join(root, kid)
                assert wait_until(lambda: rv.quarantined)
        assert server.journal is not None
        server.journal.flush()
        from repro.tools.journal import read_journal

        kinds = [
            r["kind"]
            for r in read_journal(server.journal.path).records
            if r.get("session") == "post"
        ]
        assert "quarantine" in kinds


class TestBackpressure:
    def test_full_inbox_refuses_and_the_client_raises(self, tmp_path):
        with VerificationServer(
            journal_path=str(tmp_path / "bp.jsonl"), inbox_limit=4, flush_every=1
        ) as srv:
            rv = RemoteVerifier(remote_url(srv), "TJ-SP", session="bp")
            try:
                root = rv.on_init()
                kid = rv.on_fork(root)
                assert rv.check_join(root, kid) is True  # session is live
                sess = srv.session("bp")
                sess.drain_gate.clear()  # park the worker between records
                try:
                    forks = 20
                    for _ in range(forks):
                        rv.on_fork(root)  # fire-and-forget floods the inbox
                    assert wait_until(lambda: sess.backpressure_refusals >= 1)
                    assert wait_until(lambda: rv._backpressure is not None)
                    # the refusal surfaces at the next synchronous call...
                    with pytest.raises(ServiceBackpressureError):
                        rv.check_join(root, kid)
                finally:
                    sess.drain_gate.set()
                # ...but nothing is lost: the refused events sat in the
                # replay buffer, and reconcile rounds re-deliver them.  A
                # replay can itself overrun the tiny inbox, so recovery
                # converges over several rounds — each one advances the
                # server's applied watermark by at least the inbox bound.
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", ServiceDegradedWarning)
                    for _ in range(50):
                        if sess.snapshot()["forks"] == 2 + forks:
                            break
                        if not rv.degraded:
                            rv._test_drop_connection()
                        rv.try_reconnect()
                        time.sleep(0.02)
                assert wait_until(lambda: sess.snapshot()["forks"] == 2 + forks)

                # the sticky refusal flag may have been re-set by late
                # replies; once drained, checks flow again
                def check_flows() -> bool:
                    try:
                        return rv.check_join(root, kid) is True
                    except ServiceBackpressureError:
                        return False

                assert wait_until(check_flows)
                assert sess.backpressure_refusals >= 1
            finally:
                rv.close()


class TestRestartRecovery:
    def test_sessions_are_rebuilt_from_the_journal_with_exact_stats(self, tmp_path):
        path = str(tmp_path / "svc.jsonl")
        with VerificationServer(journal_path=path, ack_every=2, flush_every=1) as srv:
            with RemoteVerifier(remote_url(srv), "TJ-SP", session="re") as rv:
                root = rv.on_init()
                kids = [rv.on_fork(root) for _ in range(3)]
                assert rv.check_joins(root, kids) == [True, True, True]
                assert rv.check_join(kids[0], kids[1]) is False
                before = srv.session("re").snapshot()
        # a clean stop flushed everything; a new server on the same
        # journal must rebuild the session by replay, not guesswork
        with VerificationServer(journal_path=path) as reborn:
            assert reborn.recovered_sessions == 1
            after = reborn.session("re").snapshot()
            for key in ("forks", "joins_checked", "joins_rejected", "vertices",
                        "applied_seq", "policy", "fail_mode"):
                assert after[key] == before[key], key
            # and the rebuilt session still answers — same verdicts
            with RemoteVerifier(remote_url(reborn), "TJ-SP", session="re") as rv2:
                pass  # resuming the session is itself the handshake check
            assert reborn.session("re").snapshot()["quarantined"] is False

    def test_restart_compacts_rather_than_corrupting_seq_density(self, tmp_path):
        from repro.tools.journal import read_journal

        path = str(tmp_path / "svc.jsonl")
        with VerificationServer(journal_path=path, flush_every=1) as srv:
            with RemoteVerifier(remote_url(srv), "TJ-SP", session="cmp") as rv:
                root = rv.on_init()
                kid = rv.on_fork(root)
                rv.check_join(root, kid)
        with VerificationServer(journal_path=path, flush_every=1) as srv2:
            with RemoteVerifier(remote_url(srv2), "TJ-SP", session="cmp") as rv:
                pass
        # read_journal itself asserts dense seq; a naive re-append after
        # replay would have broken it
        result = read_journal(path)
        assert not result.torn_tail
        assert [r["seq"] for r in result.records] == list(range(len(result.records)))

    def test_unreadable_journal_is_set_aside_not_trusted(self, tmp_path):
        path = str(tmp_path / "svc.jsonl")
        with open(path, "w") as fh:
            fh.write('{"kind": "start", "seq": 0}\n')
            fh.write("garbage that is not json\n")
            fh.write('{"kind": "verdict", "seq": 9000}\n')  # seq gap: corrupt
        with pytest.warns(RuntimeWarning, match="unreadable"):
            srv = VerificationServer(journal_path=path)
            srv.start()
        try:
            assert srv.recovered_sessions == 0
            assert srv.journal is not None  # fresh journal, same path
            import os

            assert os.path.exists(path + ".corrupt")
        finally:
            srv.stop()


class TestUrlParsing:
    def test_round_trip(self):
        assert parse_remote_url("remote://127.0.0.1:9009") == ("127.0.0.1", 9009)

    def test_rejects_other_schemes_and_missing_ports(self):
        for bad in ("tcp://x:1", "remote://", "remote://host", "remote://host:port"):
            with pytest.raises(ValueError):
                parse_remote_url(bad)
