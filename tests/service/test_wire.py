"""The sidecar wire protocol: framing, incremental decode, validation.

The framing layer is the trust boundary between processes — everything
above it assumes records arrive whole, in order, and well-formed.  These
tests pin the frame format (4-byte big-endian length + UTF-8 JSON), the
decoder's tolerance of arbitrary TCP chunk boundaries, and the shared
record vocabulary both endpoints validate against.
"""

from __future__ import annotations

import json
import struct

import pytest

from repro.errors import ServiceProtocolError
from repro.service.wire import (
    CLIENT_KINDS,
    MAX_FRAME,
    REQUIRED_FIELDS,
    SERVER_KINDS,
    WIRE_VERSION,
    FrameDecoder,
    encode_frame,
    validate_record,
)


class TestFraming:
    def test_frame_layout_is_length_prefixed_json(self):
        record = {"kind": "ping"}
        frame = encode_frame(record)
        (length,) = struct.unpack_from(">I", frame)
        assert length == len(frame) - 4
        assert json.loads(frame[4:]) == record

    def test_round_trip_one_frame(self):
        record = {"kind": "check", "waiter": 3, "joinee": 9, "req": 41}
        assert FrameDecoder().feed(encode_frame(record)) == [record]

    def test_many_frames_in_one_chunk_arrive_in_order(self):
        records = [{"kind": "fork", "parent": 0, "child": i, "cseq": i} for i in range(1, 8)]
        chunk = b"".join(encode_frame(r) for r in records)
        assert FrameDecoder().feed(chunk) == records

    def test_byte_at_a_time_feed_reassembles_frames(self):
        """TCP may deliver any chunking; the decoder must not care."""
        records = [
            {"kind": "init", "task": 0, "cseq": 0},
            {"kind": "verdict", "req": 0, "ok": True},
        ]
        data = b"".join(encode_frame(r) for r in records)
        decoder = FrameDecoder()
        out = []
        for i in range(len(data)):
            out.extend(decoder.feed(data[i : i + 1]))
        assert out == records
        assert decoder.pending_bytes == 0

    def test_partial_frame_stays_pending(self):
        frame = encode_frame({"kind": "pong"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-1]) == []
        assert decoder.pending_bytes == len(frame) - 1
        assert decoder.feed(frame[-1:]) == [{"kind": "pong"}]

    def test_oversize_length_prefix_is_a_protocol_error(self):
        bogus = struct.pack(">I", MAX_FRAME + 1)
        with pytest.raises(ServiceProtocolError):
            FrameDecoder().feed(bogus)

    def test_non_json_payload_is_a_protocol_error(self):
        payload = b"\xff\xfenot json"
        with pytest.raises(ServiceProtocolError):
            FrameDecoder().feed(struct.pack(">I", len(payload)) + payload)

    def test_non_object_payload_is_a_protocol_error(self):
        payload = json.dumps([1, 2, 3]).encode()
        with pytest.raises(ServiceProtocolError):
            FrameDecoder().feed(struct.pack(">I", len(payload)) + payload)

    def test_encode_refuses_oversize_record(self):
        record = {"kind": "check_batch", "joinees": list(range(MAX_FRAME // 4))}
        with pytest.raises(ServiceProtocolError):
            encode_frame(record)


class TestVocabulary:
    def test_every_kind_has_required_fields_listed(self):
        assert set(REQUIRED_FIELDS) == CLIENT_KINDS | SERVER_KINDS

    def test_validate_returns_the_kind(self):
        record = {"kind": "ack", "seq": 12}
        assert validate_record(record, SERVER_KINDS) == "ack"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceProtocolError):
            validate_record({"kind": "steal"}, CLIENT_KINDS)

    def test_kind_from_the_wrong_direction_rejected(self):
        # a server kind is not valid client traffic, and vice versa
        with pytest.raises(ServiceProtocolError):
            validate_record({"kind": "verdict", "req": 0, "ok": True}, CLIENT_KINDS)
        with pytest.raises(ServiceProtocolError):
            validate_record(
                {"kind": "check", "waiter": 0, "joinee": 1, "req": 0}, SERVER_KINDS
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(ServiceProtocolError) as exc:
            validate_record({"kind": "check", "waiter": 0, "req": 3}, CLIENT_KINDS)
        assert "joinee" in str(exc.value)

    def test_hello_carries_the_wire_version(self):
        assert "wire" in REQUIRED_FIELDS["hello"]
        assert WIRE_VERSION == 1


class TestFrameCapBoundary:
    """Batch join queries at the 1 MiB frame cap, to the byte.

    The procs runtime multiplexes worker sessions over one sidecar and
    its batch drains are the records most likely to brush the cap, so
    the boundary itself is pinned: a frame of exactly MAX_FRAME bytes
    must decode, one byte more must be refused cleanly, and the decoder
    must stay deterministic afterwards.
    """

    @staticmethod
    def _batch_record_of_payload_size(size):
        """A ``check_batch`` record whose JSON payload is exactly *size* bytes."""
        record = {
            "kind": "check_batch",
            "req": 7,
            "waiter": 0,
            "joinees": list(range(512)),
            "pad": "",
        }
        base = len(json.dumps(record, separators=(",", ":")).encode("utf-8"))
        record["pad"] = "x" * (size - base)
        payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
        assert len(payload) == size
        return record, payload

    def test_exact_cap_batch_frame_is_accepted(self):
        record, payload = self._batch_record_of_payload_size(MAX_FRAME)
        frame = encode_frame(record)  # the encoder must not refuse it either
        assert frame == struct.pack(">I", MAX_FRAME) + payload
        dec = FrameDecoder()
        # split mid-payload so the exact-cap frame crosses the buffering path
        cut = len(frame) // 2
        assert dec.feed(frame[:cut]) == []
        (back,) = dec.feed(frame[cut:])
        assert back == record
        assert validate_record(back, CLIENT_KINDS) == "check_batch"
        assert dec.pending_bytes == 0
        # decoder state intact afterwards: an ordinary frame still decodes
        (after,) = dec.feed(encode_frame({"kind": "ping", "req": 8}))
        assert after == {"kind": "ping", "req": 8}

    def test_cap_plus_one_is_rejected_with_a_clean_protocol_error(self):
        record, payload = self._batch_record_of_payload_size(MAX_FRAME + 1)
        with pytest.raises(ServiceProtocolError):
            encode_frame(record)  # the sender refuses to build it at all
        dec = FrameDecoder()
        # A hand-built oversize frame is rejected from the 4-byte prefix
        # alone — no buffering of the megabyte payload.
        with pytest.raises(ServiceProtocolError) as exc:
            dec.feed(struct.pack(">I", MAX_FRAME + 1))
        assert str(MAX_FRAME) in str(exc.value)
        assert dec.pending_bytes == struct.calcsize(">I")  # nothing consumed

    def test_decoder_stays_deterministic_after_a_rejected_prefix(self):
        dec = FrameDecoder()
        good = encode_frame({"kind": "ping", "req": 1})
        assert dec.feed(good) == [{"kind": "ping", "req": 1}]
        with pytest.raises(ServiceProtocolError):
            dec.feed(struct.pack(">I", MAX_FRAME + 1))
        # Framing is lost for good: every later feed re-raises instead of
        # resynchronising on garbage, so the caller must drop the
        # connection (the documented contract) — no silent half-reads.
        for _ in range(3):
            with pytest.raises(ServiceProtocolError):
                dec.feed(good)
        # A fresh decoder (new connection) is unaffected.
        assert FrameDecoder().feed(good) == [{"kind": "ping", "req": 1}]
