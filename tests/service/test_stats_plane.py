"""The sidecar's stats plane: the ``stats`` wire kind, frame fitting,
and the keepalive that keeps it reachable.

PR 10 turned the sidecar's ``stats`` reply into a telemetry carrier: when
the server was constructed under an active telemetry session, the reply
ships the sidecar's span ring (``trace``, for the parent's merged
distributed trace) and its metrics snapshot (``metrics``, for the fleet
view) alongside the counters.  That makes the reply the one frame in the
vocabulary that can outgrow :data:`MAX_FRAME`, so ``_fit_stats_reply``
trims the trace tail; and because the parent's :class:`SessionClient`
may idle for a whole run between escalations, ``ping()`` exists so the
liveness sweeper doesn't reap the connection before the final stats
pull.  All three are exercised here over real loopback TCP.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.service.client import SessionClient
from repro.service.server import VerificationServer, _fit_stats_reply
from repro.service.wire import MAX_FRAME

from .test_server import raw_session, remote_url, wait_until


@pytest.fixture()
def server(tmp_path):
    srv = VerificationServer(
        journal_path=str(tmp_path / "service.jsonl"), ack_every=4, flush_every=1
    )
    with srv:
        yield srv


def _ask_stats(stream, req: int = 7) -> dict:
    stream.send({"kind": "stats", "req": req})
    while True:
        reply = stream.recv()
        assert reply is not None, "connection closed before stats_reply"
        if reply["kind"] == "stats_reply":
            assert reply["req"] == req
            return reply["stats"]


class TestStatsWireKind:
    def test_roundtrip_without_telemetry_is_bare_counters(self, server):
        stream, welcome = raw_session(server, "bare")
        try:
            assert welcome["kind"] == "welcome"
            stats = _ask_stats(stream)
            assert stats["sessions"] == 1
            assert "bare" in stats["per_session"]
            # no telemetry at construction: no distributed payload
            assert "trace" not in stats
            assert "metrics" not in stats
        finally:
            stream.sock.close()

    def test_reply_ships_trace_and_metrics_under_telemetry(self, tmp_path):
        with obs.enabled():
            srv = VerificationServer(
                journal_path=str(tmp_path / "service.jsonl"), ack_every=4
            )
            with srv:
                stream, _ = raw_session(srv, "traced")
                try:
                    stream.send({"kind": "init", "task": 0, "cseq": 0})
                    stream.send({"kind": "fork", "parent": 0, "child": 1, "cseq": 1})
                    stream.send({"kind": "check", "waiter": 0, "joinee": 1, "req": 1})
                    while stream.recv()["kind"] != "verdict":
                        pass
                    stats = _ask_stats(stream)
                finally:
                    stream.sock.close()
        trace = stats["trace"]
        assert trace["label"] == "sidecar"
        # the check above left a join_check span in the shipped ring
        assert any(ev[1] == "join_check" for ev in trace["events"])
        assert "counters" in stats["metrics"]

    def test_stats_answers_ahead_of_the_verification_stream(self, server):
        # Introspection rides the connection reader, not the session
        # inbox: a stats query right behind a burst of state events is
        # answered without waiting for the session thread to drain them.
        stream, _ = raw_session(server, "busy")
        try:
            stream.send({"kind": "init", "task": 0, "cseq": 0})
            for seq in range(1, 33):
                stream.send({"kind": "fork", "parent": 0, "child": seq, "cseq": seq})
            stats = _ask_stats(stream)
            assert stats["sessions"] == 1
        finally:
            stream.sock.close()


class TestFitStatsReply:
    def _reply(self, events: list) -> dict:
        return {
            "kind": "stats_reply",
            "req": 1,
            "stats": {"server": {}, "trace": {"label": "sidecar", "events": events}},
        }

    def test_small_reply_passes_through_untouched(self):
        reply = self._reply([["X", "join_check", "dispatch", 1, 2, 3, {}]])
        fitted = _fit_stats_reply(reply)
        assert fitted is reply
        assert "trimmed" not in fitted["stats"]["trace"]
        assert len(fitted["stats"]["trace"]["events"]) == 1

    def test_oversized_trace_is_trimmed_from_the_oldest_end(self):
        pad = "x" * 512
        events = [["X", f"span-{i}", "dispatch", i, 1, 1, {"pad": pad}] for i in range(4096)]
        reply = self._reply(events)
        fitted = _fit_stats_reply(reply)
        size = len(json.dumps(fitted, separators=(",", ":")).encode("utf-8"))
        assert size <= MAX_FRAME - 4096
        trace = fitted["stats"]["trace"]
        kept = trace["events"]
        assert kept, "trimming must keep the newest tail, not empty the ring"
        # newest events survive; the drop count is recorded exactly
        assert kept[-1][1] == "span-4095"
        assert trace["trimmed"] == 4096 - len(kept)
        assert kept[0][1] == f"span-{trace['trimmed']}"

    def test_reply_without_trimmable_trace_is_returned_as_is(self):
        # Oversized but with no trace events to drop: the fitter yields
        # to the frame encoder's own MAX_FRAME error rather than guess.
        reply = {
            "kind": "stats_reply",
            "req": 1,
            "stats": {"server": {"blob": "y" * MAX_FRAME}},
        }
        assert _fit_stats_reply(reply) is reply


class TestKeepalive:
    def test_idle_connection_is_reaped_but_pinging_client_survives(self, tmp_path):
        srv = VerificationServer(
            journal_path=str(tmp_path / "service.jsonl"), liveness_timeout=0.75
        )
        with srv:
            pinger = SessionClient(remote_url(srv), "pinger")
            assert pinger.connect()
            idle_stream, _ = raw_session(srv, "idler")
            try:
                deadline = time.monotonic() + 1.6
                while time.monotonic() < deadline:
                    pinger.ping()
                    time.sleep(0.2)
                assert wait_until(lambda: srv.liveness_closes >= 1)
                assert not pinger.degraded
                stats = pinger.stats()
                assert stats is not None
                assert stats["liveness_closes"] >= 1
            finally:
                idle_stream.sock.close()
                pinger.close()
