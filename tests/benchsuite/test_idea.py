"""Unit and property tests for the IDEA cipher substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite.idea import (
    _mul,
    crypt_blocks,
    decrypt,
    encrypt,
    expand_key,
    invert_key,
    random_key,
)


KEY = bytes(range(16))


class TestKeySchedule:
    def test_52_subkeys_in_range(self):
        ek = expand_key(KEY)
        assert len(ek) == 52
        assert ((0 <= ek) & (ek <= 0xFFFF)).all()

    def test_first_eight_subkeys_are_the_user_key(self):
        ek = expand_key(KEY)
        for i in range(8):
            assert ek[i] == (KEY[2 * i] << 8) | KEY[2 * i + 1]

    def test_bad_key_length(self):
        with pytest.raises(ValueError):
            expand_key(b"short")

    def test_inverted_key_shape(self):
        dk = invert_key(expand_key(KEY))
        assert len(dk) == 52
        assert ((0 <= dk) & (dk <= 0xFFFF)).all()


class TestMulOperator:
    def test_zero_means_two_to_sixteen(self):
        # 0 * 0 = 2^16 * 2^16 mod (2^16+1) = 1
        assert _mul(np.array([0]), 0)[0] == 1

    def test_identity(self):
        xs = np.arange(1, 200)
        assert (_mul(xs, 1) == xs).all()

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_matches_scalar_definition(self, a, b):
        aa = 0x10000 if a == 0 else a
        bb = 0x10000 if b == 0 else b
        expected = (aa * bb) % 0x10001
        if expected == 0x10000:
            expected = 0
        assert _mul(np.array([a]), b)[0] == expected


class TestRoundTrip:
    def test_known_key_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, size=8 * 64, dtype=np.uint8)
        assert np.array_equal(decrypt(encrypt(data, KEY), KEY), data)

    def test_encryption_changes_data(self):
        data = np.zeros(8 * 16, dtype=np.uint8)
        assert not np.array_equal(encrypt(data, KEY), data)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=16, max_size=16), st.integers(1, 32))
    def test_roundtrip_property(self, key, blocks):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=8 * blocks, dtype=np.uint8)
        assert np.array_equal(decrypt(encrypt(data, key), key), data)

    def test_block_independence(self):
        """ECB mode: per-block results do not depend on neighbours."""
        rng = np.random.default_rng(2)
        data = rng.integers(0, 256, size=8 * 10, dtype=np.uint8)
        whole = encrypt(data, KEY)
        ek = expand_key(KEY)
        for i in range(10):
            part = crypt_blocks(data[8 * i : 8 * (i + 1)], ek)
            assert np.array_equal(part, whole[8 * i : 8 * (i + 1)])


class TestInputValidation:
    def test_rejects_non_uint8(self):
        with pytest.raises(ValueError):
            crypt_blocks(np.zeros(8, dtype=np.int32), expand_key(KEY))

    def test_rejects_partial_blocks(self):
        with pytest.raises(ValueError):
            crypt_blocks(np.zeros(12, dtype=np.uint8), expand_key(KEY))

    def test_random_key_shape(self):
        key = random_key(np.random.default_rng(0))
        assert isinstance(key, bytes) and len(key) == 16
