"""Unit tests for the benchmark base class and registry."""

import pytest

from repro.benchsuite import (
    ALL_BENCHMARKS,
    BENCHMARK_REGISTRY,
    EXTRA_BENCHMARKS,
    Benchmark,
    make_benchmark,
    register_benchmark,
)
from repro.runtime import CooperativeRuntime, TaskRuntime


class TestRegistry:
    def test_all_table2_benchmarks_registered(self):
        for name in ALL_BENCHMARKS:
            assert name in BENCHMARK_REGISTRY

    def test_extras_registered(self):
        for name in EXTRA_BENCHMARKS:
            assert name in BENCHMARK_REGISTRY

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="known:"):
            make_benchmark("Nope")

    def test_register_decorator(self):
        @register_benchmark
        class Tiny(Benchmark):
            name = "TinyTestOnly"

            @classmethod
            def default_params(cls):
                return {"x": 1}

            def run(self, rt):
                return self.params["x"]

            def verify(self, result):
                return result == self.params["x"]

        try:
            b = make_benchmark("TinyTestOnly", x=5)
            result, _ = b.execute(None)
            assert b.verify(result)
        finally:
            del BENCHMARK_REGISTRY["TinyTestOnly"]


class TestParameterHandling:
    def test_defaults_applied(self):
        b = make_benchmark("Series")
        assert b.params["coefficients"] == 1000

    def test_overrides_applied(self):
        b = make_benchmark("Series", coefficients=5)
        assert b.params["coefficients"] == 5

    def test_unknown_parameter_rejected_with_name(self):
        with pytest.raises(TypeError, match="unknown parameters.*bogus"):
            make_benchmark("Series", bogus=1)

    def test_paper_params_documented(self):
        for name in ALL_BENCHMARKS:
            bench = make_benchmark(name)
            assert bench.paper_params, f"{name} lacks paper_params"


class TestRuntimeSelection:
    def test_threaded_default(self):
        b = make_benchmark("Series")
        assert isinstance(b.make_runtime("TJ-SP"), TaskRuntime)

    def test_nqueens_is_cooperative(self):
        b = make_benchmark("NQueens")
        assert isinstance(b.make_runtime("TJ-SP"), CooperativeRuntime)

    def test_fallback_flag_passed_through(self):
        b = make_benchmark("Series")
        rt = b.make_runtime("TJ-SP", fallback=False)
        assert rt.detector is None

    def test_execute_builds_once(self):
        b = make_benchmark("Series", coefficients=5, samples=50)
        assert not b._built
        b.execute(None)
        assert b._built
        expected = b.expected_first
        b.execute(None)  # second run reuses inputs
        assert b.expected_first == expected
