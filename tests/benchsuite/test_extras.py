"""Tests for the extra (non-Table-2) benchmark programs."""

import numpy as np
import pytest

from repro.benchsuite import EXTRA_BENCHMARKS, make_benchmark
from repro.runtime import WorkSharingRuntime

SMALL = {
    "Fib": {"n": 12, "cutoff": 6},
    "MergeSort": {"n": 1 << 11, "cutoff": 1 << 9},
    "FanInReduce": {"leaves": 16},
}


@pytest.mark.parametrize("name", EXTRA_BENCHMARKS)
class TestExtras:
    def test_baseline(self, name):
        b = make_benchmark(name, **SMALL[name])
        result, _ = b.execute(None)
        assert b.verify(result)

    @pytest.mark.parametrize("policy", ["TJ-SP", "KJ-SS"])
    def test_verified(self, name, policy):
        b = make_benchmark(name, **SMALL[name])
        result, rt = b.execute(policy)
        assert b.verify(result)
        assert rt.detector.stats.deadlocks_avoided == 0

    def test_tj_never_flags(self, name):
        b = make_benchmark(name, **SMALL[name])
        _, rt = b.execute("TJ-SP")
        assert rt.detector.stats.false_positives == 0

    def test_on_work_sharing_pool(self, name):
        b = make_benchmark(name, **SMALL[name])
        b.build()
        rt = WorkSharingRuntime(policy="TJ-SP", workers=2, max_workers=64)
        result = rt.run(b.run, rt)
        assert b.verify(result)


class TestExtraDetails:
    def test_fib_small_values(self):
        b = make_benchmark("Fib", n=10, cutoff=3)
        result, _ = b.execute(None)
        assert result == 55

    def test_mergesort_really_sorts(self):
        b = make_benchmark("MergeSort", n=512, cutoff=64)
        b.build()
        result, _ = b.execute(None)
        assert b.verify(result)

    def test_fanin_requires_power_of_two(self):
        b = make_benchmark("FanInReduce", leaves=24)
        with pytest.raises(ValueError):
            b.build()

    def test_fanin_joins_are_kj_valid(self):
        """Every reducer joins older siblings: no fallback even under KJ."""
        b = make_benchmark("FanInReduce", leaves=32)
        _, rt = b.execute("KJ-VC")
        assert rt.detector.stats.false_positives == 0
