"""Unit tests for the measurement harness."""

import pytest

from repro.benchsuite import Harness, make_benchmark
from repro.benchsuite.harness import PolicyMeasurement


@pytest.fixture(scope="module")
def tiny_report():
    harness = Harness(repetitions=2, warmup=1, policies=("TJ-SP", "KJ-SS"))
    bench = make_benchmark("Series", coefficients=20, samples=50)
    return harness.measure_benchmark(bench)


class TestHarness:
    def test_rejects_zero_repetitions(self):
        with pytest.raises(ValueError):
            Harness(repetitions=0)

    def test_report_structure(self, tiny_report):
        assert tiny_report.name == "Series"
        assert set(tiny_report.policies) == {"TJ-SP", "KJ-SS"}
        assert tiny_report.baseline.policy is None
        assert len(tiny_report.baseline.times) == 2

    def test_all_runs_verified(self, tiny_report):
        assert tiny_report.baseline.verified
        assert all(m.verified for m in tiny_report.policies.values())

    def test_overheads_are_positive(self, tiny_report):
        for p in tiny_report.policies:
            assert tiny_report.time_overhead(p) > 0
            assert tiny_report.memory_overhead(p) > 0

    def test_event_counts_recorded(self, tiny_report):
        m = tiny_report.policies["TJ-SP"]
        assert m.forks == 21  # root + 20 coefficient tasks
        assert m.joins_checked == 20
        assert m.verifier_space_units > 0

    def test_baseline_policy_stores_nothing(self, tiny_report):
        assert tiny_report.baseline.verifier_space_units == 0

    def test_memory_measured(self, tiny_report):
        assert tiny_report.baseline.peak_bytes > 0

    def test_memory_can_be_disabled(self):
        harness = Harness(repetitions=1, warmup=0, policies=(), measure_memory=False)
        m = harness.measure_policy(make_benchmark("Series", coefficients=5, samples=50), None)
        assert m.peak_bytes == 0


class TestPolicyMeasurement:
    def test_mean_and_stdev(self):
        m = PolicyMeasurement(policy="x", times=[1.0, 2.0, 3.0])
        assert m.mean_time == 2.0
        assert m.stdev_time == 1.0

    def test_stdev_single_sample(self):
        m = PolicyMeasurement(policy="x", times=[1.0])
        assert m.stdev_time == 0.0

    def test_no_samples_yields_nan_not_zero_division(self):
        import math

        m = PolicyMeasurement(policy="x")
        assert math.isnan(m.mean_time)
        assert math.isnan(m.stdev_time)

    def test_no_samples_marks_measurement_unverified(self):
        m = PolicyMeasurement(policy="x")
        assert m.verified  # dataclass default until stats are read
        m.mean_time
        assert not m.verified

    def test_samples_keep_measurement_verified(self):
        m = PolicyMeasurement(policy="x", times=[0.5])
        m.mean_time, m.stdev_time
        assert m.verified
