"""Integration tests: each benchmark computes the right answer under every
policy configuration, and its policy-validity profile matches Section 6.1."""

import numpy as np
import pytest

from repro.benchsuite import ALL_BENCHMARKS, make_benchmark
from repro.benchsuite.jacobi import jacobi_reference
from repro.benchsuite.nqueens import KNOWN_SOLUTIONS, count_queens_sequential
from repro.benchsuite.smith_waterman import smith_waterman_reference
from repro.benchsuite.strassen import strassen_sequential

# small-but-meaningful parameters, one per benchmark, for fast CI
SMALL = {
    "Jacobi": {"n": 64, "blocks": 2, "iterations": 3},
    "Smith-Waterman": {"length": 120, "chunks": 4},
    "Crypt": {"size_bytes": 64 * 1024, "tasks": 32},
    "Strassen": {"n": 128, "cutoff": 64},
    "Series": {"coefficients": 60, "samples": 100},
    "NQueens": {"n": 8, "cutoff": 2},
}


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestCorrectness:
    def test_baseline_verifies(self, name):
        b = make_benchmark(name, **SMALL[name])
        result, _ = b.execute(None)
        assert b.verify(result)

    def test_tj_sp_verifies_with_zero_false_positives(self, name):
        b = make_benchmark(name, **SMALL[name])
        result, rt = b.execute("TJ-SP")
        assert b.verify(result)
        assert rt.detector.stats.false_positives == 0
        assert rt.detector.stats.deadlocks_avoided == 0

    @pytest.mark.parametrize("policy", ["TJ-GT", "TJ-JP", "TJ-OM"])
    def test_other_tj_algorithms_verify(self, name, policy):
        b = make_benchmark(name, **SMALL[name])
        result, rt = b.execute(policy)
        assert b.verify(result)
        assert rt.detector.stats.false_positives == 0

    @pytest.mark.parametrize("policy", ["KJ-VC", "KJ-SS"])
    def test_kj_verifies(self, name, policy):
        b = make_benchmark(name, **SMALL[name])
        result, rt = b.execute(policy)
        assert b.verify(result)
        if name == "NQueens":
            # the one benchmark that trips the KJ fallback (Section 6.1)
            assert rt.detector.stats.false_positives > 0
        else:
            assert rt.detector.stats.false_positives == 0
        assert rt.detector.stats.deadlocks_avoided == 0

    def test_unknown_param_rejected(self, name):
        with pytest.raises(TypeError):
            make_benchmark(name, definitely_not_a_param=1)


class TestBenchmarkDetails:
    def test_unknown_benchmark_name(self):
        with pytest.raises(KeyError):
            make_benchmark("NoSuchBench")

    def test_jacobi_reference_keeps_boundary(self):
        g = np.ones((8, 8))
        g[0, :] = 5
        out = jacobi_reference(g, 2)
        assert (out[0, :] == 5).all()

    def test_jacobi_rejects_bad_blocking(self):
        b = make_benchmark("Jacobi", n=10, blocks=3)
        with pytest.raises(ValueError):
            b.build()

    def test_smith_waterman_reference_known_case(self):
        # identical sequences: perfect local alignment of full length
        a = np.array([0, 1, 2, 3] * 5, dtype=np.int8)
        assert smith_waterman_reference(a, a) == 2 * len(a)

    def test_smith_waterman_no_match(self):
        a = np.zeros(10, dtype=np.int8)
        b = np.ones(10, dtype=np.int8)
        assert smith_waterman_reference(a, b) == 0

    def test_strassen_sequential_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.random((64, 64)), rng.random((64, 64))
        assert np.allclose(strassen_sequential(a, b, 16), a @ b)

    def test_strassen_rejects_non_power_of_two(self):
        b = make_benchmark("Strassen", n=100)
        with pytest.raises(ValueError):
            b.build()

    def test_nqueens_sequential_known_counts(self):
        for n in range(1, 10):
            assert count_queens_sequential(n) == KNOWN_SOLUTIONS[n]

    def test_nqueens_fifo_order_never_trips_kj(self):
        b = make_benchmark("NQueens", n=7, cutoff=2, join_order="fifo")
        result, rt = b.execute("KJ-SS")
        assert b.verify(result)
        assert rt.detector.stats.false_positives == 0

    def test_nqueens_random_order_is_seed_deterministic(self):
        fps = []
        for _ in range(2):
            b = make_benchmark("NQueens", n=8, cutoff=2, seed=7)
            _, rt = b.execute("KJ-SS")
            fps.append(rt.detector.stats.false_positives)
        assert fps[0] == fps[1] > 0

    def test_crypt_rejects_indivisible_sizes(self):
        b = make_benchmark("Crypt", size_bytes=1000, tasks=3)
        with pytest.raises(ValueError):
            b.build()

    def test_series_verify_rejects_wrong_length(self):
        b = make_benchmark("Series", coefficients=10, samples=50)
        b.build()
        assert not b.verify([(2.88, 0.0)])

    def test_repr_shows_params(self):
        b = make_benchmark("Series", coefficients=10)
        assert "coefficients=10" in repr(b)
