"""Tests for report serialisation and the SVG Figure 2 renderer."""

import pytest

from repro.analysis.figure2_svg import render_figure2_svg
from repro.analysis.io import (
    load_reports,
    reports_from_json,
    reports_to_json,
    save_reports,
)

from .test_reports import fake_report


@pytest.fixture
def reports():
    factors = {"KJ-VC": (1.5, 2.0), "KJ-SS": (1.1, 1.3), "TJ-SP": (1.05, 1.1)}
    return [
        fake_report("Alpha", 1.0, 1_000_000, factors),
        fake_report("Beta", 0.5, 2_000_000, factors),
    ]


class TestJsonRoundTrip:
    def test_roundtrip_preserves_everything(self, reports):
        text = reports_to_json(reports)
        back = reports_from_json(text)
        assert len(back) == 2
        for orig, copy in zip(reports, back):
            assert copy.name == orig.name
            assert copy.baseline.times == orig.baseline.times
            assert set(copy.policies) == set(orig.policies)
            for p in orig.policies:
                assert copy.policies[p].times == orig.policies[p].times
                assert copy.time_overhead(p) == pytest.approx(orig.time_overhead(p))

    def test_file_roundtrip(self, reports, tmp_path):
        path = str(tmp_path / "reports.json")
        save_reports(reports, path)
        back = load_reports(path)
        assert [r.name for r in back] == ["Alpha", "Beta"]

    def test_schema_version_checked(self):
        with pytest.raises(ValueError, match="unsupported schema"):
            reports_from_json('{"schema": 99, "reports": []}')

    def test_json_is_deterministic(self, reports):
        assert reports_to_json(reports) == reports_to_json(reports)


class TestSvg:
    def test_valid_svg_structure(self, reports):
        svg = render_figure2_svg(reports)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") >= 2 * 4  # bars for 2 groups x 4 configs

    def test_benchmarks_and_configs_labelled(self, reports):
        svg = render_figure2_svg(reports)
        for token in ("Alpha", "Beta", "KJ-VC", "TJ-SP", "baseline"):
            assert token in svg

    def test_whiskers_present(self, reports):
        svg = render_figure2_svg(reports)
        assert "<line" in svg  # CI whiskers

    def test_custom_title_escaped(self, reports):
        svg = render_figure2_svg(reports, title="a < b & c")
        assert "a &lt; b &amp; c" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_figure2_svg([])
