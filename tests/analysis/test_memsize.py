"""Tests for deep memory measurement."""

import sys

import pytest

from repro.analysis.memsize import deep_size_of, policy_bytes_per_task
from repro.core import make_policy
from repro.formal.actions import Fork, Init
from repro.formal.generators import chain_fork_trace, star_fork_trace

from ..core.test_policies_common import replay_forks


class TestDeepSizeOf:
    def test_atomic(self):
        assert deep_size_of(42) == sys.getsizeof(42)
        assert deep_size_of("hello") == sys.getsizeof("hello")

    def test_list_includes_elements(self):
        xs = ["a" * 50, "b" * 50]
        assert deep_size_of(xs) > sys.getsizeof(xs) + 100

    def test_shared_objects_counted_once(self):
        shared = "x" * 1000
        assert deep_size_of([shared, shared]) < 2 * sys.getsizeof(shared)

    def test_cycles_terminate(self):
        a: list = []
        a.append(a)
        assert deep_size_of(a) >= sys.getsizeof(a)

    def test_dict_keys_and_values(self):
        d = {"k" * 100: "v" * 100}
        assert deep_size_of(d) > sys.getsizeof(d) + 200

    def test_slots_objects(self):
        class Slotted:
            __slots__ = ("x", "y")

            def __init__(self):
                self.x = "payload" * 20
                self.y = [1, 2, 3]

        obj = Slotted()
        assert deep_size_of(obj) > sys.getsizeof(obj) + 100

    def test_instance_dict(self):
        class Plain:
            def __init__(self):
                self.data = list(range(100))

        assert deep_size_of(Plain()) > 100 * 28 // 2


class TestPolicyBytes:
    def test_requires_vertices(self):
        with pytest.raises(ValueError):
            policy_bytes_per_task(make_policy("TJ-SP"), [])

    def test_tj_sp_legacy_chain_costs_more_than_star(self):
        """O(n h) vs O(n): tuple spawn paths on a chain dwarf those on a star."""
        n = 300
        chain_policy = make_policy("TJ-SP-legacy")
        chain_vertices = replay_forks(chain_policy, chain_fork_trace(n)).values()
        star_policy = make_policy("TJ-SP-legacy")
        star_vertices = replay_forks(star_policy, star_fork_trace(n)).values()
        chain_bytes = policy_bytes_per_task(chain_policy, chain_vertices)
        star_bytes = policy_bytes_per_task(star_policy, star_vertices)
        assert chain_bytes > 10 * star_bytes

    def test_tj_sp_interned_chain_no_heavier_than_star(self):
        """Interned prefixes are shared: chains cost O(n) bytes, like stars."""
        n = 300
        chain_policy = make_policy("TJ-SP")
        chain_vertices = replay_forks(chain_policy, chain_fork_trace(n)).values()
        star_policy = make_policy("TJ-SP")
        star_vertices = replay_forks(star_policy, star_fork_trace(n)).values()
        chain_bytes = policy_bytes_per_task(chain_policy, chain_vertices)
        star_bytes = policy_bytes_per_task(star_policy, star_vertices)
        assert chain_bytes < 3 * star_bytes

    def test_kj_vc_star_heavier_than_kj_ss(self):
        """Materialised vectors vs O(1) snapshots on the Crypt shape."""
        n = 300
        vc = make_policy("KJ-VC")
        vc_vertices = replay_forks(vc, star_fork_trace(n)).values()
        ss = make_policy("KJ-SS")
        ss_vertices = replay_forks(ss, star_fork_trace(n)).values()
        assert policy_bytes_per_task(vc, vc_vertices) > 5 * policy_bytes_per_task(
            ss, ss_vertices
        )

    def test_tj_gt_flat_per_task_cost(self):
        """O(n) space: bytes per task roughly constant across sizes."""
        costs = []
        for n in (100, 800):
            policy = make_policy("TJ-GT")
            vertices = replay_forks(policy, chain_fork_trace(n)).values()
            costs.append(policy_bytes_per_task(policy, vertices))
        assert costs[1] < costs[0] * 2  # no superlinear growth
