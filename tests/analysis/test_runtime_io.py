"""BENCH_runtime.json schema v7: the predict and obs_dist blocks round-trip."""

import json

import pytest

from repro.analysis.io import load_runtime, runtime_from_json, runtime_to_json, save_runtime
from repro.analysis.runtime_overhead import (
    ObsDistMeasurement,
    PredictMeasurement,
    RuntimeOverheadResult,
)


def _result_with_predict():
    return RuntimeOverheadResult(
        join_chain={},
        reports=[],
        join_chain_params={},
        overhead_params={},
        predict=PredictMeasurement(
            programs=3,
            journals=3,
            events=74,
            elapsed=0.004,
            flagged_programs=2,
            predictions=2,
            sim_width=6,
            sim_rounds=8,
            sim_elapsed=0.0007,
            coop_elapsed=0.0006,
        ),
        predict_params={"programs": 3, "seed": 0},
    )


class TestPredictBlock:
    def test_roundtrip(self, tmp_path):
        result = _result_with_predict()
        path = str(tmp_path / "BENCH_runtime.json")
        save_runtime(result, path)
        loaded = load_runtime(path)
        assert loaded.predict == result.predict
        assert loaded.predict_params == result.predict_params

    def test_schema_version_is_7(self):
        payload = json.loads(runtime_to_json(_result_with_predict()))
        assert payload["schema"] == 7
        assert payload["predict"]["measurement"]["events"] == 74

    def test_derived_metrics(self):
        result = _result_with_predict()
        assert result.predict_events_per_second == pytest.approx(74 / 0.004)
        assert result.predict_sim_overhead == pytest.approx(0.0007 / 0.0006)

    def test_older_files_load_without_the_block(self):
        bare = RuntimeOverheadResult(
            join_chain={}, reports=[], join_chain_params={}, overhead_params={}
        )
        payload = json.loads(runtime_to_json(bare))
        assert "predict" not in payload
        payload["schema"] = 5  # a pre-predict file
        loaded = runtime_from_json(json.dumps(payload))
        assert loaded.predict is None
        assert loaded.predict_params == {}

    def test_unknown_schema_rejected(self):
        payload = json.loads(runtime_to_json(_result_with_predict()))
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            runtime_from_json(json.dumps(payload))


def _result_with_obs_dist():
    return RuntimeOverheadResult(
        join_chain={},
        reports=[],
        join_chain_params={},
        overhead_params={},
        obs_dist=ObsDistMeasurement(
            workers=2,
            dispatches=16,
            mids=3,
            leaves=6,
            spin=40,
            tasks=352,
            off_times=[1.7, 1.6, 1.65],
            on_times=[1.6, 1.62, 1.7],
            trace_events=917,
            trace_pids=4,
            metric_sources=3,
        ),
        obs_dist_params={"workers": 2, "dispatches": 16},
    )


class TestObsDistBlock:
    def test_roundtrip(self, tmp_path):
        result = _result_with_obs_dist()
        path = str(tmp_path / "BENCH_runtime.json")
        save_runtime(result, path)
        loaded = load_runtime(path)
        assert loaded.obs_dist == result.obs_dist
        assert loaded.obs_dist_params == result.obs_dist_params

    def test_derived_metrics(self):
        m = _result_with_obs_dist().obs_dist
        assert m.off_median == 1.65
        assert m.on_median == 1.62
        assert m.overhead == pytest.approx(1.62 / 1.65)

    def test_older_files_load_without_the_block(self):
        bare = RuntimeOverheadResult(
            join_chain={}, reports=[], join_chain_params={}, overhead_params={}
        )
        payload = json.loads(runtime_to_json(bare))
        assert "obs_dist" not in payload
        payload["schema"] = 6  # a pre-obs_dist file
        loaded = runtime_from_json(json.dumps(payload))
        assert loaded.obs_dist is None
        assert loaded.obs_dist_params == {}
