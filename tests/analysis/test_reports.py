"""Unit tests for the Table 1/Table 2/Figure 2 report generators."""

import pytest

from repro.analysis.figure2 import figure2_data, render_figure2
from repro.analysis.table1 import measure_policy_costs, render_table1
from repro.analysis.table2 import overhead_summary, render_table2
from repro.benchsuite.harness import BenchmarkReport, PolicyMeasurement
from repro.formal.generators import chain_fork_trace, star_fork_trace


def fake_report(name, base_time, base_mem, factors):
    baseline = PolicyMeasurement(policy=None, times=[base_time] * 3, peak_bytes=base_mem)
    policies = {
        p: PolicyMeasurement(
            policy=p,
            times=[base_time * tf, base_time * tf * 1.01, base_time * tf * 0.99],
            peak_bytes=int(base_mem * mf),
        )
        for p, (tf, mf) in factors.items()
    }
    return BenchmarkReport(name=name, params={}, baseline=baseline, policies=policies)


@pytest.fixture
def reports():
    factors = {"KJ-VC": (1.5, 2.0), "KJ-SS": (1.1, 1.3), "TJ-SP": (1.05, 1.1)}
    return [
        fake_report("Alpha", 1.0, 1_000_000, factors),
        fake_report("Beta", 0.5, 2_000_000, factors),
    ]


class TestTable2:
    def test_overheads_computed(self, reports):
        r = reports[0]
        assert r.time_overhead("KJ-VC") == pytest.approx(1.5)
        assert r.memory_overhead("TJ-SP") == pytest.approx(1.1)

    def test_summary_geomeans(self, reports):
        s = overhead_summary(reports, ["KJ-VC", "TJ-SP"])
        assert s["KJ-VC"]["time"] == pytest.approx(1.5)
        assert s["TJ-SP"]["memory"] == pytest.approx(1.1)

    def test_render_contains_all_rows(self, reports):
        table = render_table2(reports)
        for token in ("Alpha", "Beta", "KJ-VC", "TJ-SP", "Geom. mean"):
            assert token in table

    def test_best_factor_marked(self, reports):
        table = render_table2(reports)
        # TJ-SP is best on every row; stars must appear next to 1.05x
        assert "*1.05x" in table

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            render_table2([])

    def test_zero_baseline_memory_guard(self):
        r = fake_report("Zed", 1.0, 0, {"TJ-SP": (1.0, 1.0)})
        assert r.memory_overhead("TJ-SP") == 0.0  # 0 bytes / floor of 1


class TestFigure2:
    def test_data_shape(self, reports):
        data = figure2_data(reports)
        assert set(data) == {"Alpha", "Beta"}
        assert set(data["Alpha"]) == {"baseline", "KJ-VC", "KJ-SS", "TJ-SP"}

    def test_render(self, reports):
        chart = render_figure2(reports)
        assert "95% CI" in chart and "Alpha:" in chart
        # bars scale: the slowest config should reach near full width
        assert "#" * 20 in chart

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            render_figure2([])


class TestTable1:
    def test_measure_policy_costs(self):
        p = measure_policy_costs("TJ-SP", "chain", chain_fork_trace(100), queries=50)
        assert p.n_tasks == 100
        assert p.fork_us > 0 and p.join_us > 0 and p.space_units > 0

    def test_render(self):
        points = [
            measure_policy_costs("TJ-GT", "star", star_fork_trace(50), queries=20),
            measure_policy_costs("KJ-SS", "star", star_fork_trace(50), queries=20),
        ]
        text = render_table1(points)
        assert "TJ-GT" in text and "KJ-SS" in text
        assert "paper bounds" in text

    def test_render_empty_rejected(self):
        with pytest.raises(ValueError):
            render_table1([])
