"""Unit and property tests for the statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    confidence_interval,
    geometric_mean,
    mean,
    stdev,
    t_critical,
)


class TestMeanStdev:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_known(self):
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.13809, rel=1e-4
        )

    def test_stdev_short(self):
        assert stdev([1.0]) == 0.0


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_matches_paper_style_factors(self):
        # geomean of identical factors is the factor
        assert geometric_mean([1.06] * 6) == pytest.approx(1.06)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20))
    def test_bounded_by_min_and_max(self, xs):
        g = geometric_mean(xs)
        assert min(xs) - 1e-12 <= g <= max(xs) + 1e-12

    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=10))
    def test_scale_invariance(self, xs):
        g = geometric_mean(xs)
        assert geometric_mean([x * 2 for x in xs]) == pytest.approx(2 * g)


class TestConfidenceInterval:
    def test_t_critical_small_samples(self):
        assert t_critical(1) == pytest.approx(12.706, rel=1e-3)
        assert t_critical(29) == pytest.approx(2.045, rel=1e-3)

    def test_t_critical_bad_df(self):
        with pytest.raises(ValueError):
            t_critical(0)

    def test_single_sample_has_zero_width(self):
        mu, half = confidence_interval([3.0])
        assert (mu, half) == (3.0, 0.0)

    def test_known_interval(self):
        xs = [1.0, 2.0, 3.0, 4.0, 5.0]
        mu, half = confidence_interval(xs)
        assert mu == 3.0
        # s = sqrt(2.5), t(4, .975) = 2.776
        assert half == pytest.approx(2.776 * math.sqrt(2.5) / math.sqrt(5), rel=1e-3)

    def test_wider_at_higher_confidence(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        _, h95 = confidence_interval(xs, 0.95)
        _, h99 = confidence_interval(xs, 0.99)
        assert h99 > h95

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=30))
    def test_interval_contains_mean(self, xs):
        mu, half = confidence_interval(xs)
        assert half >= 0
        assert min(xs) - 1e-9 <= mu <= max(xs) + 1e-9
