"""Tests for the consolidated reproduction report."""

import pytest

from repro.analysis.report import ReportConfig, build_report


@pytest.fixture(scope="module")
def report_text():
    config = ReportConfig(
        repetitions=1,
        table1_sizes=(64,),
        benchmark_params={
            "Jacobi": {"n": 64, "blocks": 2, "iterations": 2},
            "Smith-Waterman": {"length": 120, "chunks": 4},
            "Crypt": {"size_bytes": 64 * 1024, "tasks": 32},
            "Strassen": {"n": 128, "cutoff": 64},
            "Series": {"coefficients": 40, "samples": 50},
            "NQueens": {"n": 7, "cutoff": 2},
        },
    )
    return build_report(config)


class TestReport:
    def test_sections_present(self, report_text):
        for heading in (
            "# Transitive Joins — reproduction report",
            "## Verdicts",
            "## Table 1",
            "## Table 2",
            "## Figure 2",
            "## Fallback activity",
        ):
            assert heading in report_text

    def test_verdicts_rendered(self, report_text):
        assert "REPRODUCED" in report_text
        assert "fallback on any benchmark" in report_text

    def test_invariant_verdicts_always_hold(self, report_text):
        """Timing-based verdicts can wobble at tiny scales; the two
        structural verdicts (TJ never flags; NQueens the only KJ
        violator) must hold in every run."""
        lines = [l for l in report_text.splitlines() if l.startswith("-")]
        structural = [
            l
            for l in lines
            if "fallback on any benchmark" in l or "only benchmark" in l
        ]
        assert structural and all(l.startswith("- REPRODUCED") for l in structural)

    def test_all_benchmarks_in_fallback_section(self, report_text):
        for name in ("Jacobi", "NQueens", "Series"):
            assert f"- {name}:" in report_text

    def test_geomeans_line(self, report_text):
        assert "Geometric means:" in report_text
