"""The high-level constructs work on every blocking runtime."""

import operator

import pytest

from repro.constructs import CilkFrame, FinishAccumulator, finish
from repro.runtime import TaskRuntime, WorkSharingRuntime


def runtimes():
    return [
        ("threaded", lambda: TaskRuntime(policy="TJ-SP")),
        ("pool", lambda: WorkSharingRuntime(policy="TJ-SP", workers=2, max_workers=64)),
    ]


@pytest.mark.parametrize("kind,factory", runtimes(), ids=["threaded", "pool"])
class TestConstructsAcrossRuntimes:
    def test_finish(self, kind, factory):
        rt = factory()

        def main():
            with finish(rt) as scope:
                def tree(d):
                    if d:
                        scope.async_(tree, d - 1)
                        scope.async_(tree, d - 1)
                    return 1

                scope.async_(tree, 4)
            return len(scope.results)

        assert rt.run(main) == 31
        assert rt.detector.stats.false_positives == 0

    def test_accumulator(self, kind, factory):
        rt = factory()

        def main():
            acc = FinishAccumulator(rt, op=operator.add, initial=0)
            for i in range(20):
                acc.put(lambda i=i: i)
            return acc.get()

        assert rt.run(main) == 190

    def test_cilk(self, kind, factory):
        rt = factory()

        def fib(n):
            if n < 2:
                return n
            with CilkFrame(rt) as frame:
                a = frame.spawn(fib, n - 1)
                b = frame.spawn(fib, n - 2)
            return a.join() + b.join()

        assert rt.run(fib, 9) == 34
