"""Failure propagation through finish scopes and phasers.

A crashing child must not leave residue behind: the finish scope still
drains every spawned task (so the Armus graph is empty and no forced
edge is live at exit), and a phaser party that dies without signalling
turns into a bounded ``JoinTimeoutError`` for everyone waiting on the
phase — not a hang.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.constructs import finish
from repro.errors import JoinTimeoutError, TaskFailedError
from repro.runtime import Phaser, TaskRuntime, WorkSharingRuntime

RUNTIMES = [
    ("threaded", lambda **kw: TaskRuntime(**kw)),
    ("pool", lambda **kw: WorkSharingRuntime(workers=2, max_workers=64, **kw)),
]


def _boom():
    raise RuntimeError("child crashed")


@pytest.mark.parametrize("label,make_rt", RUNTIMES, ids=[r[0] for r in RUNTIMES])
class TestFinishFailurePropagation:
    def test_crash_leaves_no_armus_state(self, label, make_rt):
        rt = make_rt(policy="KJ-SS")  # KJ: joins actually consult Armus

        def program():
            with pytest.raises(TaskFailedError) as info:
                with finish(rt) as scope:
                    scope.async_(lambda: 1)
                    scope.async_(_boom)
                    scope.async_(lambda: 2)
            assert isinstance(info.value.__cause__, RuntimeError)
            return True

        assert rt.run(program)
        assert len(rt.detector.graph) == 0
        assert rt.detector.live_forced_edges == 0
        assert rt.blocked_joins() == []

    def test_all_failures_are_collected(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")

        def program():
            with pytest.raises(TaskFailedError):
                with finish(rt) as scope:
                    for _ in range(3):
                        scope.async_(_boom)
                    scope.async_(lambda: "ok")
            assert len(scope.failures) == 3
            assert scope.results == ["ok"]
            return True

        assert rt.run(program)

    def test_body_exception_still_drains_children(self, label, make_rt):
        rt = make_rt(policy="TJ-SP")
        finished = []

        def slow_child():
            time.sleep(0.05)
            finished.append(True)

        def program():
            with pytest.raises(ValueError, match="body"):
                with finish(rt) as scope:
                    scope.async_(slow_child)
                    raise ValueError("body")
            # the body's exception wins, but the child was still awaited
            assert finished == [True]
            return True

        assert rt.run(program)
        assert len(rt.detector.graph) == 0

    def test_nested_spawner_crashes_after_spawning(self, label, make_rt):
        """A child that registers a grandchild into the scope and then
        crashes: the grandchild must still be joined before exit."""
        rt = make_rt(policy="TJ-SP")
        grandchild_ran = threading.Event()

        def grandchild():
            time.sleep(0.02)
            grandchild_ran.set()
            return "deep"

        def child(scope):
            scope.async_(grandchild)
            raise RuntimeError("spawner down")

        def program():
            with pytest.raises(TaskFailedError):
                with finish(rt) as scope:
                    scope.async_(child, scope)
            assert grandchild_ran.is_set()
            assert "deep" in scope.results
            return True

        assert rt.run(program)
        assert len(rt.detector.graph) == 0
        assert rt.detector.live_forced_edges == 0


@pytest.mark.parametrize("label,make_rt", RUNTIMES, ids=[r[0] for r in RUNTIMES])
class TestPhaserPartyFailure:
    def test_dead_party_turns_into_a_bounded_timeout(self, label, make_rt):
        """A party that crashes before signalling can no longer advance
        the phase; the surviving party's bounded wait raises
        JoinTimeoutError naming the phase event instead of hanging."""
        rt = make_rt(policy="TJ-SP", on_unjoined_failure="ignore")
        ph = Phaser(name="doomed")
        registered = threading.Barrier(2)
        outcome = {}

        def dies():
            ph.register()
            registered.wait(5)
            raise RuntimeError("party down")  # never signals

        def survives():
            ph.register()
            registered.wait(5)
            try:
                ph.signal_and_wait(timeout=0.1)
            except JoinTimeoutError as exc:
                outcome["exc"] = exc
            ph.deregister()

        def program():
            d = rt.fork(dies)
            s = rt.fork(survives)
            with pytest.raises(TaskFailedError):
                d.join()
            s.join()
            return True

        assert rt.run(program)
        exc = outcome["exc"]
        assert exc.joinee == ("doomed", 0)
        assert exc.timeout == pytest.approx(0.1)
        # the bounded wait released its waits-for edge on the way out
        assert ph.detector.blocked_tasks() == 0
