"""Tests for the finish construct and finish accumulators."""

import operator

import pytest

from repro import TaskRuntime, TaskFailedError
from repro.constructs import FinishAccumulator, FinishScope, finish
from repro.errors import RuntimeStateError


class TestFinish:
    def test_awaits_direct_children(self):
        rt = TaskRuntime()

        def main():
            with finish(rt) as scope:
                for i in range(8):
                    scope.async_(lambda i=i: i)
            return sum(scope.results)

        assert rt.run(main) == 28

    def test_awaits_transitively_spawned_tasks(self):
        """The defining property of finish: nested spawns are awaited."""
        rt = TaskRuntime()
        seen = []

        def walker(depth, scope):
            if depth > 0:
                scope.async_(walker, depth - 1, scope)
                scope.async_(walker, depth - 1, scope)
            seen.append(depth)
            return 1

        def main():
            with finish(rt) as scope:
                scope.async_(walker, 4, scope)
            return len(scope.results)

        assert rt.run(main) == 2**5 - 1
        assert len(seen) == 31  # every task really ran before exit

    def test_finish_is_tj_valid_but_not_always_kj_valid(self):
        """The arbitrary-descendant drain never trips TJ."""

        def program(policy):
            rt = TaskRuntime(policy=policy)

            def walker(depth, scope):
                if depth > 0:
                    scope.async_(walker, depth - 1, scope)
                return 1

            def main():
                with finish(rt) as scope:
                    scope.async_(walker, 6, scope)
                return len(scope.results)

            assert rt.run(main) == 7
            return rt.detector.stats.false_positives

        assert program("TJ-SP") == 0
        # KJ may or may not trip depending on scheduling; both fine — the
        # assertion is that TJ never does.

    def test_results_before_close_rejected(self):
        rt = TaskRuntime()

        def main():
            with finish(rt) as scope:
                scope.async_(lambda: 1)
                with pytest.raises(RuntimeStateError):
                    scope.results
            return scope.results

        assert rt.run(main) == [1]

    def test_spawn_after_close_rejected(self):
        rt = TaskRuntime()

        def main():
            with finish(rt) as scope:
                pass
            with pytest.raises(RuntimeStateError):
                scope.async_(lambda: 1)

        rt.run(main)

    def test_task_failure_propagates(self):
        rt = TaskRuntime()

        def main():
            with finish(rt) as scope:
                scope.async_(lambda: 1 / 0)

        with pytest.raises(TaskFailedError) as exc_info:
            rt.run(main)
        assert isinstance(exc_info.value.__cause__, ZeroDivisionError)

    def test_body_exception_wins_but_tasks_still_awaited(self):
        rt = TaskRuntime()
        ran = []

        def main():
            with finish(rt) as scope:
                scope.async_(lambda: ran.append(1))
                raise ValueError("body")

        with pytest.raises(ValueError, match="body"):
            rt.run(main)
        assert ran == [1]


class TestFinishAccumulator:
    def test_sum(self):
        rt = TaskRuntime()

        def main():
            acc = FinishAccumulator(rt, op=operator.add, initial=0)
            for i in range(10):
                acc.put(lambda i=i: i)
            return acc.get()

        assert rt.run(main) == 45

    def test_nested_contributions(self):
        rt = TaskRuntime()

        def main():
            acc = FinishAccumulator(rt, op=operator.add, initial=0)

            def tree(depth):
                if depth > 0:
                    acc.async_(tree, depth - 1)
                    acc.async_(tree, depth - 1)
                return 1

            acc.async_(tree, 3)
            return acc.get(), acc.task_count

        total, count = rt.run(main)
        assert total == count == 15

    def test_custom_operator(self):
        rt = TaskRuntime()

        def main():
            acc = FinishAccumulator(rt, op=operator.mul, initial=1)
            for i in range(1, 6):
                acc.put(lambda i=i: i)
            return acc.get()

        assert rt.run(main) == 120

    def test_get_is_idempotent(self):
        rt = TaskRuntime()

        def main():
            acc = FinishAccumulator(rt)
            acc.put(lambda: 2)
            return acc.get(), acc.get()

        assert rt.run(main) == (2, 2)

    def test_task_count_requires_get(self):
        rt = TaskRuntime()

        def main():
            acc = FinishAccumulator(rt)
            acc.put(lambda: 1)
            with pytest.raises(RuntimeStateError):
                acc.task_count
            acc.get()
            return acc.task_count

        assert rt.run(main) == 1
