"""Tests for Cilk-style spawn/sync."""

import pytest

from repro import TaskRuntime, TaskFailedError
from repro.constructs import CilkFrame


class TestCilkFrame:
    def test_fib(self):
        rt = TaskRuntime()

        def fib(n):
            if n < 2:
                return n
            frame = CilkFrame(rt)
            a = frame.spawn(fib, n - 1)
            b = frame.spawn(fib, n - 2)
            frame.sync()
            return a.join() + b.join()

        assert rt.run(fib, 11) == 89

    def test_sync_returns_results_in_fork_order(self):
        rt = TaskRuntime()

        def main():
            frame = CilkFrame(rt)
            for i in range(5):
                frame.spawn(lambda i=i: i * 10)
            assert frame.outstanding == 5
            results = frame.sync()
            assert frame.outstanding == 0
            return results

        assert rt.run(main) == [0, 10, 20, 30, 40]

    def test_fully_strict_runs_are_kj_valid(self):
        """Cilk's restriction means even KJ never needs the fallback."""
        rt = TaskRuntime(policy="KJ-SS")

        def fib(n):
            if n < 2:
                return n
            with CilkFrame(rt) as frame:
                a = frame.spawn(fib, n - 1)
                b = frame.spawn(fib, n - 2)
            return a.join() + b.join()

        assert rt.run(fib, 9) == 34
        assert rt.detector.stats.false_positives == 0

    def test_context_manager_syncs_on_exit(self):
        rt = TaskRuntime()
        done = []

        def main():
            with CilkFrame(rt) as frame:
                frame.spawn(lambda: done.append(1))
            return list(done)

        assert rt.run(main) == [1]

    def test_failure_propagates_through_sync(self):
        rt = TaskRuntime()

        def main():
            frame = CilkFrame(rt)
            frame.spawn(lambda: 1 / 0)
            frame.sync()

        with pytest.raises(TaskFailedError):
            rt.run(main)

    def test_body_exception_wins_over_task_failure(self):
        rt = TaskRuntime()

        def main():
            with CilkFrame(rt) as frame:
                frame.spawn(lambda: 1 / 0)
                raise ValueError("body")

        with pytest.raises(ValueError, match="body"):
            rt.run(main)
