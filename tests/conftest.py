"""Shared fixtures and hypothesis strategies.

Trace strategies build structured programs directly from drawn choices
(not from opaque RNG seeds) so hypothesis can shrink failures to minimal
counterexamples.
"""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.formal.actions import Fork, Init, Join
from repro.formal.kj_relation import KJKnowledge
from repro.formal.tj_relation import TJOrderOracle


def _name(i: int) -> str:
    return f"t{i}"


@st.composite
def fork_traces(draw, min_tasks: int = 1, max_tasks: int = 30):
    """init + forks: each new task picks a uniformly drawn existing parent."""
    n = draw(st.integers(min_tasks, max_tasks))
    trace = [Init(_name(0))]
    for i in range(1, n):
        parent = draw(st.integers(0, i - 1))
        trace.append(Fork(_name(parent), _name(i)))
    return trace


@st.composite
def tj_valid_traces(draw, max_tasks: int = 25, max_joins: int = 25):
    """Interleaved forks and TJ-permitted joins (a TJ-valid trace)."""
    n_tasks = draw(st.integers(1, max_tasks))
    n_joins = draw(st.integers(0, max_joins))
    ops = draw(
        st.permutations(["fork"] * (n_tasks - 1) + ["join"] * n_joins)
    )
    oracle = TJOrderOracle()
    oracle.init(_name(0))
    trace = [Init(_name(0))]
    created = 1
    for op in ops:
        if op == "fork":
            parent = _name(draw(st.integers(0, created - 1)))
            child = _name(created)
            trace.append(Fork(parent, child))
            oracle.fork(parent, child)
            created += 1
        else:
            if created < 2:
                continue
            i = draw(st.integers(0, created - 1))
            j = draw(st.integers(0, created - 1))
            if i == j:
                continue
            a, b = _name(i), _name(j)
            if oracle.less(b, a):
                a, b = b, a
            trace.append(Join(a, b))
    return trace


@st.composite
def kj_valid_traces(draw, max_tasks: int = 20, max_joins: int = 20):
    """Interleaved forks and KJ-permitted joins (a KJ-valid trace)."""
    n_tasks = draw(st.integers(1, max_tasks))
    n_joins = draw(st.integers(0, max_joins))
    ops = draw(
        st.permutations(["fork"] * (n_tasks - 1) + ["join"] * n_joins)
    )
    knowledge = KJKnowledge()
    knowledge.init(_name(0))
    trace = [Init(_name(0))]
    created = 1
    for op in ops:
        if op == "fork":
            parent = _name(draw(st.integers(0, created - 1)))
            child = _name(created)
            trace.append(Fork(parent, child))
            knowledge.fork(parent, child)
            created += 1
        else:
            known = [
                (a, b)
                for i in range(created)
                for a in [_name(i)]
                for b in sorted(knowledge.knowledge_of(a), key=str)
            ]
            if not known:
                continue
            a, b = known[draw(st.integers(0, len(known) - 1))]
            trace.append(Join(a, b))
            knowledge.join(a, b)
    return trace


@st.composite
def traces_with_arbitrary_joins(draw, max_tasks: int = 20, max_joins: int = 15):
    """Structurally valid traces whose joins are unconstrained.

    These may or may not be policy-valid or deadlock-free — the raw
    material for soundness properties.
    """
    base = draw(fork_traces(min_tasks=2, max_tasks=max_tasks))
    n = sum(1 for a in base if isinstance(a, (Init, Fork)))
    n_joins = draw(st.integers(0, max_joins))
    trace = list(base)
    for _ in range(n_joins):
        i = draw(st.integers(0, n - 1))
        j = draw(st.integers(0, n - 1))
        if i != j:
            trace.append(Join(_name(i), _name(j)))
    return trace


@pytest.fixture(params=["TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM"])
def tj_policy_name(request):
    """Parametrise a test over all four TJ verifier algorithms."""
    return request.param


@pytest.fixture(params=["KJ-VC", "KJ-SS", "KJ-CC"])
def kj_policy_name(request):
    """Parametrise a test over both KJ verifier implementations."""
    return request.param


@pytest.fixture(params=["TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM", "KJ-VC", "KJ-SS"])
def any_policy_name(request):
    return request.param
