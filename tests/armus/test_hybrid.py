"""Unit tests for the hybrid (policy + Armus) verifier and trace replay."""

import random

import pytest

from repro.armus.hybrid import HybridVerifier, replay_trace
from repro.core import TJSpawnPaths, make_policy
from repro.formal.actions import Fork, Init, Join
from repro.formal.generators import random_tj_valid_trace
from repro.kj import KJSnapshotSets


class TestHybridVerifier:
    def test_permitted_join_no_fallback_activity(self):
        h = HybridVerifier(TJSpawnPaths())
        root_v = h.on_init()
        child_v = h.on_fork(root_v)
        blocked = h.begin_join("root", "child", root_v, child_v, joinee_done=False)
        assert blocked
        assert h.detector.stats.false_positives == 0
        h.end_join("root", "child")
        h.on_join_completed(root_v, child_v)

    def test_flagged_join_on_done_task_is_vacuous_false_positive(self):
        h = HybridVerifier(TJSpawnPaths())
        root_v = h.on_init()
        child_v = h.on_fork(root_v)
        # child joining root is TJ-invalid, but the root has "terminated"
        blocked = h.begin_join("child", "root", child_v, root_v, joinee_done=True)
        assert not blocked
        assert h.detector.stats.false_positives == 1
        assert h.verifier.stats.joins_rejected == 1

    def test_name_and_policy_accessors(self):
        policy = KJSnapshotSets()
        h = HybridVerifier(policy)
        assert h.name == "KJ-SS"
        assert h.policy is policy


class TestReplayTrace:
    def test_tj_valid_trace_has_no_false_positives_under_tj(self):
        trace = random_tj_valid_trace(random.Random(0), 30, 40)
        h = replay_trace(trace, make_policy("TJ-SP"))
        assert h.verifier.stats.joins_rejected == 0
        assert h.detector.stats.false_positives == 0

    def test_grandchild_joins_trip_kj_but_not_tj(self):
        trace = [
            Init("r"),
            Fork("r", "c"),
            Fork("c", "g"),
            Join("r", "g"),  # KJ-invalid, TJ-valid
            Join("r", "c"),
        ]
        kj = replay_trace(trace, make_policy("KJ-SS"))
        tj = replay_trace(trace, make_policy("TJ-SP"))
        assert kj.detector.stats.false_positives == 1
        assert tj.detector.stats.false_positives == 0

    def test_kj_learn_applied_during_replay(self):
        trace = [
            Init("r"),
            Fork("r", "c"),
            Fork("c", "g"),
            Join("r", "c"),  # learn: r now knows g
            Join("r", "g"),  # no longer flagged
        ]
        kj = replay_trace(trace, make_policy("KJ-SS"))
        assert kj.detector.stats.false_positives == 0

    def test_replay_counts_all_joins(self):
        trace = random_tj_valid_trace(random.Random(1), 20, 25)
        n_joins = sum(isinstance(a, Join) for a in trace)
        h = replay_trace(trace, make_policy("KJ-VC"))
        assert h.verifier.stats.joins_checked == n_joins
