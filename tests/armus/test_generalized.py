"""Tests for the generalised (bipartite wait/impede) Armus model."""

import pytest

from repro.armus.generalized import GeneralizedDetector
from repro.errors import DeadlockAvoidedError


class TestBasicModel:
    def test_block_and_unblock(self):
        d = GeneralizedDetector()
        d.add_impeder("t2", "ev")
        d.block("t1", "ev")
        assert d.blocked_tasks() == 1
        d.unblock("t1", "ev")
        assert d.blocked_tasks() == 0

    def test_futures_as_events_two_cycle(self):
        """Encoding joins: task X impedes the event 'X terminated'."""
        d = GeneralizedDetector()
        d.add_impeder("a", "a-done")
        d.add_impeder("b", "b-done")
        d.block("a", "b-done")
        with pytest.raises(DeadlockAvoidedError):
            d.block("b", "a-done")
        assert d.stats.deadlocks_avoided == 1

    def test_no_false_alarm_on_shared_event(self):
        d = GeneralizedDetector()
        d.add_impeder("c", "ev")
        d.block("a", "ev")
        d.block("b", "ev")  # two waiters, impeder not blocked: fine
        assert d.stats.deadlocks_avoided == 0

    def test_self_wait_on_own_event_is_a_cycle(self):
        d = GeneralizedDetector()
        d.add_impeder("a", "ev")
        with pytest.raises(DeadlockAvoidedError):
            d.block("a", "ev")

    def test_removing_impeder_dissolves_cycles(self):
        d = GeneralizedDetector()
        d.add_impeder("a", "a-done")
        d.add_impeder("b", "b-done")
        d.block("a", "b-done")
        d.remove_impeder("a", "a-done")  # a "terminated"
        d.block("b", "a-done")  # now safe
        assert d.stats.deadlocks_avoided == 0

    def test_long_alternating_cycle(self):
        d = GeneralizedDetector()
        n = 6
        for i in range(n):
            d.add_impeder(f"t{i}", f"e{i}")
        for i in range(n - 1):
            d.block(f"t{i}", f"e{i+1}")
        with pytest.raises(DeadlockAvoidedError):
            d.block(f"t{n-1}", "e0")

    def test_barrier_style_multiparty_cycle(self):
        """Two barriers, two parties each, crossed waits."""
        d = GeneralizedDetector()
        # barrier P impeded by a1, a2; barrier Q impeded by b1, b2
        for t in ("a1", "a2"):
            d.add_impeder(t, "P")
        for t in ("b1", "b2"):
            d.add_impeder(t, "Q")
        # a1 arrives at P then waits on Q; b1 arrives at Q then waits on P
        d.remove_impeder("a1", "P")
        d.block("a1", "Q")
        d.remove_impeder("b1", "Q")
        d.block("b1", "P")
        # a2 waits on Q: impeder b2 not blocked -> fine
        d.block("a2", "Q")
        # b2 waiting on P closes the cycle: P needs a2, a2 waits Q, Q needs
        # b2, b2 would wait P
        with pytest.raises(DeadlockAvoidedError):
            d.block("b2", "P")


class TestGraphModels:
    def _loaded(self, model):
        d = GeneralizedDetector(model=model)
        d.add_impeder("a", "a-done")
        d.add_impeder("b", "b-done")
        d.add_impeder("c", "c-done")
        d.block("a", "b-done")
        d.block("b", "c-done")
        return d

    @pytest.mark.parametrize("model", ["wfg", "sg", "auto"])
    def test_all_models_agree(self, model):
        d = self._loaded(model)
        with pytest.raises(DeadlockAvoidedError):
            d.block("c", "a-done")

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            GeneralizedDetector(model="nope")

    def test_auto_counts_both_kinds_of_checks(self):
        d = GeneralizedDetector(model="auto")
        # few tasks, many events -> wfg
        for i in range(10):
            d.add_impeder("t", f"e{i}")
        d.block("w", "e0")
        assert d.stats.wfg_checks == 1
        # many tasks, one event -> sg for the next check
        d2 = GeneralizedDetector(model="auto")
        d2.add_impeder("t0", "ev")
        for i in range(10):
            d2.block(f"w{i}", "ev")
        assert d2.stats.sg_checks >= 1

    def test_projections_expose_edges(self):
        d = self._loaded("auto")
        assert ("a", "b") in d.wfg_edges()
        assert ("a-done", "b-done") in d.sg_edges() or ("b-done", "c-done") in d.sg_edges()

    def test_projection_cycle_equivalence(self):
        """WFG has a cycle iff SG has a cycle, on random bipartite states."""
        import random

        from repro.formal.deadlock import find_cycle

        rng = random.Random(0)
        for _ in range(100):
            d = GeneralizedDetector()
            tasks = [f"t{i}" for i in range(5)]
            events = [f"e{i}" for i in range(4)]
            for t in tasks:
                for e in events:
                    if rng.random() < 0.3:
                        d.add_impeder(t, e)
                    if rng.random() < 0.25:
                        d._waits.setdefault(t, set()).add(e)  # bypass checks
            def cyc(edges):
                graph = {}
                for a, b in edges:
                    graph.setdefault(a, set()).add(b)
                    graph.setdefault(b, set())
                return find_cycle(graph) is not None

            assert cyc(d.wfg_edges()) == cyc(d.sg_edges())
