"""Unit tests for the waits-for graph."""

import threading

from repro.armus.graph import WaitsForGraph


class TestWaitsForGraph:
    def test_empty(self):
        g = WaitsForGraph()
        assert len(g) == 0
        assert not g.has_path("a", "b")

    def test_add_remove(self):
        g = WaitsForGraph()
        g.add_edge("a", "b")
        assert g.edges() == [("a", "b")]
        g.remove_edge("a", "b")
        assert len(g) == 0

    def test_remove_missing_is_noop(self):
        g = WaitsForGraph()
        g.remove_edge("a", "b")
        assert len(g) == 0

    def test_trivial_path(self):
        g = WaitsForGraph()
        assert g.has_path("x", "x")

    def test_transitive_path(self):
        g = WaitsForGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "d")
        assert g.has_path("a", "d")
        assert not g.has_path("d", "a")

    def test_branching_paths(self):
        g = WaitsForGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("c", "d")
        assert g.has_path("a", "d")
        assert not g.has_path("b", "d")

    def test_path_disappears_after_removal(self):
        g = WaitsForGraph()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.remove_edge("b", "c")
        assert not g.has_path("a", "c")

    def test_concurrent_mutation_is_safe(self):
        g = WaitsForGraph()

        def worker(base):
            for i in range(300):
                g.add_edge((base, i), (base, i + 1))
                g.has_path((base, 0), (base, i + 1))
            for i in range(300):
                g.remove_edge((base, i), (base, i + 1))

        threads = [threading.Thread(target=worker, args=(k,)) for k in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(g) == 0
