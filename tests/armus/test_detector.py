"""Unit tests for the Armus cycle-detecting avoidance protocol."""

import pytest

from repro.armus.detector import ArmusDetector
from repro.errors import DeadlockAvoidedError


class TestBasicProtocol:
    def test_permitted_join_registers_edge(self):
        d = ArmusDetector()
        d.block("a", "b", flagged=False)
        assert d.graph.edges() == [("a", "b")]
        d.unblock("a", "b")
        assert len(d.graph) == 0

    def test_flagged_join_counts_false_positive(self):
        d = ArmusDetector()
        d.block("a", "b", flagged=True)
        assert d.stats.false_positives == 1
        assert d.stats.cycle_checks == 1
        assert d.live_forced_edges == 1
        d.unblock("a", "b")
        assert d.live_forced_edges == 0

    def test_two_cycle_avoided(self):
        d = ArmusDetector()
        d.block("a", "b", flagged=True)
        with pytest.raises(DeadlockAvoidedError) as exc_info:
            d.block("b", "a", flagged=True)
        assert d.stats.deadlocks_avoided == 1
        assert set(exc_info.value.cycle) == {"a", "b"}
        # the refused edge was not registered:
        assert d.graph.edges() == [("a", "b")]

    def test_long_cycle_avoided(self):
        d = ArmusDetector()
        d.block("a", "b", flagged=False)
        d.block("b", "c", flagged=False)
        d.block("c", "d", flagged=True)
        with pytest.raises(DeadlockAvoidedError):
            d.block("d", "a", flagged=True)

    def test_non_cycle_flagged_join_proceeds(self):
        d = ArmusDetector()
        d.block("a", "b", flagged=False)
        d.block("c", "b", flagged=True)  # shares the joinee: no cycle
        assert d.stats.false_positives == 1
        assert d.stats.deadlocks_avoided == 0


class TestPermittedJoinChecking:
    def test_no_cycle_check_while_no_forced_edges(self):
        """The provably-safe fast path: all-permitted graphs are acyclic."""
        d = ArmusDetector()
        d.block("a", "b", flagged=False)
        d.block("b", "c", flagged=False)
        assert d.stats.cycle_checks == 0

    def test_permitted_joins_checked_once_forced_edge_live(self):
        d = ArmusDetector()
        d.block("a", "b", flagged=True)
        checks = d.stats.cycle_checks
        d.block("c", "d", flagged=False)
        assert d.stats.cycle_checks == checks + 1

    def test_check_resumes_skipping_after_forced_edge_clears(self):
        d = ArmusDetector()
        d.block("a", "b", flagged=True)
        d.unblock("a", "b")
        checks = d.stats.cycle_checks
        d.block("c", "d", flagged=False)
        assert d.stats.cycle_checks == checks

    def test_permitted_join_closing_cycle_through_forced_edge_is_refused(self):
        """The soundness scenario from the module docstring: a policy-
        permitted join must not silently complete a cycle whose other
        edges were admitted as false positives."""
        d = ArmusDetector()
        # forced (policy-flagged, admitted) edges: c -> a and b -> c
        d.block("c", "a", flagged=True)
        d.block("b", "c", flagged=True)
        # now the *permitted* join a -> b would close a -> b -> c -> a
        with pytest.raises(DeadlockAvoidedError):
            d.block("a", "b", flagged=False)
        assert d.stats.deadlocks_avoided == 1


class TestVacuousFalsePositives:
    def test_count_false_positive_touches_stats_only(self):
        d = ArmusDetector()
        d.count_false_positive()
        d.count_false_positive()
        assert d.stats.false_positives == 2
        # no edge, no cycle check, no forced-edge bookkeeping
        assert len(d.graph) == 0
        assert d.stats.cycle_checks == 0
        assert d.live_forced_edges == 0

    def test_hybrid_terminated_joinee_uses_the_public_counter(self):
        """A flagged join whose joinee already terminated never blocks,
        but the false positive is still recorded — through the public
        API, not by reaching into the detector's lock."""
        from repro.armus.hybrid import HybridVerifier
        from repro.core.policy import POLICY_REGISTRY

        hybrid = HybridVerifier(POLICY_REGISTRY["TJ-SP"]())
        root = hybrid.on_init()
        child = hybrid.on_fork(root)
        # older sibling joining a younger one: TJ flags it
        younger = hybrid.on_fork(root)
        blocked = hybrid.begin_join("child", "younger", child, younger, joinee_done=True)
        assert blocked is False
        assert hybrid.detector.stats.false_positives == 1
        assert len(hybrid.detector.graph) == 0
        assert hybrid.detector.live_forced_edges == 0
