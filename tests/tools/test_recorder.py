"""Unit and integration tests for the trace recorder."""

from repro import TaskRuntime
from repro.core import TJSpawnPaths
from repro.formal.actions import Fork, Init, Join
from repro.formal.trace import is_structurally_valid, is_tj_valid
from repro.tools import TraceRecordingPolicy


class TestRecorderUnit:
    def test_records_init_and_forks(self):
        rec = TraceRecordingPolicy(TJSpawnPaths())
        root = rec.add_child(None)
        a = rec.add_child(root)
        rec.add_child(a)
        assert rec.snapshot() == [Init("t0"), Fork("t0", "t1"), Fork("t1", "t2")]

    def test_records_joins_at_check_time(self):
        rec = TraceRecordingPolicy(TJSpawnPaths())
        root = rec.add_child(None)
        a = rec.add_child(root)
        assert rec.permits(root, a)
        assert not rec.permits(a, root)  # recorded even though rejected
        joins = [x for x in rec.snapshot() if isinstance(x, Join)]
        assert joins == [Join("t0", "t1"), Join("t1", "t0")]

    def test_records_join_when_inner_policy_raises(self):
        """A crashing inner policy still leaves the attempt in the trace,
        tagged denied — an exception is 'no verdict reached', and an
        offline reader must never mistake it for a permit."""

        class Exploding(TJSpawnPaths):
            def permits(self, joiner, joinee):
                raise ZeroDivisionError("synthetic policy bug")

        rec = TraceRecordingPolicy(Exploding())
        root = rec.add_child(None)
        a = rec.add_child(root)
        try:
            rec.permits(root, a)
        except ZeroDivisionError:
            pass
        else:  # pragma: no cover - the recorder must re-raise
            raise AssertionError("recorder swallowed the policy bug")
        joins = [x for x in rec.snapshot() if isinstance(x, Join)]
        assert joins == [Join("t0", "t1")]
        assert joins[0].permitted is False

    def test_join_permitted_tag_does_not_affect_equality(self):
        """`permitted` is diagnostic metadata: traces recorded online
        compare equal to offline-built ones that never saw verdicts."""
        assert Join("t0", "t1", permitted=False) == Join("t0", "t1")
        assert Join("t0", "t1", permitted=True) == Join("t0", "t1", permitted=False)

    def test_delegation(self):
        inner = TJSpawnPaths()
        rec = TraceRecordingPolicy(inner)
        assert rec.name == "TJ-SP-obj"
        root = rec.add_child(None)
        rec.add_child(root)
        assert rec.space_units() == inner.space_units() > 0

    def test_snapshot_is_a_copy(self):
        rec = TraceRecordingPolicy(TJSpawnPaths())
        rec.add_child(None)
        snap = rec.snapshot()
        snap.clear()
        assert rec.snapshot() != []


class TestRecorderIntegration:
    def test_recorded_runtime_trace_is_tj_valid(self):
        rec = TraceRecordingPolicy(TJSpawnPaths())
        rt = TaskRuntime(policy=rec)

        def fib(n):
            if n < 2:
                return n
            a, b = rt.fork(fib, n - 1), rt.fork(fib, n - 2)
            return a.join() + b.join()

        assert rt.run(fib, 8) == 21
        trace = rec.snapshot()
        assert is_structurally_valid(trace)
        assert is_tj_valid(trace)
        assert sum(isinstance(a, Fork) for a in trace) == rt.tasks_started
