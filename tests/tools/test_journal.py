"""The trace journal: writer batching, torn-tail reader, clean replay.

The durability contract under test: records are buffered, *critical*
records (start, denied verdicts, block, avoided, quarantine, retry)
reach the OS immediately, and the reader tolerates exactly the damage a
``kill -9`` can cause — one truncated final record — while refusing to
paper over anything else.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import JournalCorruptError, JournalError
from repro.runtime.threaded import TaskRuntime
from repro.tools.journal import TraceJournal, read_journal
from repro.tools.replay import replay_journal


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "trace.jsonl")


def _durable_lines(path):
    """Lines currently visible in the file (what kill -9 would preserve)."""
    with open(path) as fh:
        return [line for line in fh.read().split("\n") if line]


class _V:
    """Minimal vertex stand-in with identity."""


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------
class TestWriter:
    def test_round_trip_of_every_record_kind(self, path):
        a, b, c = _V(), _V(), _V()
        with TraceJournal(path) as j:
            j.log_start(policy="TJ-SP", runtime="TaskRuntime", fail_mode="open")
            j.log_init(a)
            j.log_fork(a, b)
            j.log_fork(a, c)
            j.log_verdict(b, c, False)
            j.log_verdict(a, b, True)
            j.log_block(a, b)
            j.log_unblock(a, b)
            j.log_join(a, b)
            j.log_avoided(b, c)
            j.log_quarantine("TJ-SP", "permits", "ZeroDivisionError('x')")
            j.log_retry(b, c, 1, "RuntimeError('down')")
        result = read_journal(path)
        assert not result.torn_tail
        kinds = [r["kind"] for r in result.records]
        assert kinds == [
            "start", "init", "fork", "fork", "verdict", "verdict",
            "block", "unblock", "join", "avoided", "quarantine", "retry",
        ]
        assert [r["seq"] for r in result.records] == list(range(12))
        # names are interned in first-seen order and stay stable
        assert result.records[1]["task"] == "t0"
        assert result.records[2] == {
            "kind": "fork", "parent": "t0", "child": "t1", "seq": 2,
        }
        assert result.records[4]["ok"] is False
        assert result.records[11]["attempt"] == 1

    def test_arbitrary_strings_are_json_quoted(self, path):
        with TraceJournal(path) as j:
            j.log_start(policy='we"ird\\name', runtime="x\ny", fail_mode="open")
            j.log_quarantine("p", "permits", 'Err("quoted \\ stuff")')
        records = read_journal(path).records
        assert records[0]["policy"] == 'we"ird\\name'
        assert records[0]["runtime"] == "x\ny"
        assert records[1]["error"] == 'Err("quoted \\ stuff")'

    def test_noncritical_records_batch_critical_flush_now(self, path):
        a, b = _V(), _V()
        j = TraceJournal(path, flush_every=64)
        j.log_init(a)
        j.log_fork(a, b)
        assert _durable_lines(path) == []  # buffered, not yet durable
        j.log_block(a, b)  # critical: flush before you sleep
        durable = _durable_lines(path)
        assert len(durable) == 3  # the flush carries the buffer with it
        assert json.loads(durable[-1])["kind"] == "block"
        j.close()

    def test_flush_every_bound_is_honoured(self, path):
        vs = [_V() for _ in range(8)]
        j = TraceJournal(path, flush_every=4)
        j.log_init(vs[0])
        for v in vs[1:4]:
            j.log_fork(vs[0], v)
        assert len(_durable_lines(path)) == 4  # 4th append hit the bound
        j.close()

    def test_closed_journal_refuses_appends(self, path):
        j = TraceJournal(path)
        j.close()
        j.close()  # idempotent
        with pytest.raises(JournalError):
            j.log_init(_V())

    def test_flush_every_validated(self, path):
        with pytest.raises(ValueError):
            TraceJournal(path, flush_every=0)

    def test_interned_names_survive_id_reuse(self, path):
        """The journal pins vertices, so a GC'd vertex's recycled id()
        can never alias a dead task's name."""
        j = TraceJournal(path)
        names = set()
        for _ in range(64):
            names.add(j.name_of(_V()))  # vertices die immediately
        assert len(names) == 64
        j.close()


# ----------------------------------------------------------------------
# reader: exactly crash-shaped damage is tolerated
# ----------------------------------------------------------------------
class TestReader:
    def _journal(self, path, n=4):
        vs = [_V() for _ in range(n)]
        with TraceJournal(path) as j:
            j.log_init(vs[0])
            for v in vs[1:]:
                j.log_fork(vs[0], v)
        return path

    def test_empty_file_is_an_empty_journal(self, path):
        open(path, "w").close()
        result = read_journal(path)
        assert result.records == [] and not result.torn_tail

    def test_torn_tail_without_newline_is_dropped(self, path):
        self._journal(path)
        with open(path) as fh:
            text = fh.read()
        with open(path, "w") as fh:
            fh.write(text[:-20])  # cut inside the final record
        result = read_journal(path)
        assert result.torn_tail
        assert len(result.records) == 3
        assert result.tail  # the fragment is kept for diagnostics

    def test_unparsable_final_complete_line_is_a_torn_tail(self, path):
        """A crash can land inside the payload but after a newline made
        it to disk from a previous write: still tail damage, not corruption."""
        self._journal(path)
        with open(path, "a") as fh:
            fh.write('{"kind":"blo\n')
        result = read_journal(path)
        assert result.torn_tail
        assert len(result.records) == 4

    def test_midfile_garbage_is_corruption(self, path):
        self._journal(path)
        lines = _durable_lines(path)
        lines[1] = lines[1][:-5] + "@@@@}"
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError):
            read_journal(path)

    def test_sequence_gap_is_corruption(self, path):
        self._journal(path)
        lines = _durable_lines(path)
        del lines[1]  # a missing record must not be silently skipped
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError):
            read_journal(path)


# ----------------------------------------------------------------------
# runtime integration + clean-run replay
# ----------------------------------------------------------------------
class TestRuntimeIntegration:
    def test_run_writes_and_closes_a_path_journal(self, path):
        rt = TaskRuntime(policy="TJ-SP", journal=path)

        def main():
            futures = [rt.fork(lambda i=i: i) for i in range(3)]
            return sum(f.join() for f in futures)

        assert rt.run(main) == 3
        result = read_journal(path)  # closed + flushed: fully durable
        kinds = [r["kind"] for r in result.records]
        assert kinds[0] == "start"
        assert kinds.count("fork") == 3
        assert kinds.count("verdict") == 3
        assert kinds.count("join") == 3
        header = result.records[0]
        assert header["policy"] == "TJ-SP"
        assert header["fail_mode"] == "raise"
        with pytest.raises(JournalError):
            rt.journal.log_init(_V())  # the runtime closed its own journal

    def test_clean_run_replay_reconstructs_and_rechecks(self, path):
        rt = TaskRuntime(policy="TJ-SP", journal=path)

        def main():
            futures = [rt.fork(lambda i=i: i) for i in range(4)]
            return [f.join() for f in futures]

        rt.run(main)
        replay = replay_journal(path)
        assert not replay.died_blocked
        assert replay.blocked_at_death == []
        assert replay.forks == 4
        assert len(replay.tasks) == 5  # root + 4 children
        assert replay.quarantine is None
        # TJ-SP is stable: every journalled verdict was re-derived fresh
        assert replay.rechecked == 4
        assert replay.recheck_mismatches == []
        assert "blocked at death: none" in replay.report()

    def test_replay_flags_a_forged_verdict(self, path):
        rt = TaskRuntime(policy="TJ-SP", journal=path)

        def main():
            return rt.fork(lambda: 1).join()

        rt.run(main)
        lines = _durable_lines(path)
        doctored = []
        for line in lines:
            rec = json.loads(line)
            if rec["kind"] == "verdict":
                rec["ok"] = not rec["ok"]  # forge the verdict
            doctored.append(json.dumps(rec))
        with open(path, "w") as fh:
            fh.write("\n".join(doctored) + "\n")
        replay = replay_journal(path)
        assert len(replay.recheck_mismatches) == 1
        assert "MISMATCH" in replay.report()


# ----------------------------------------------------------------------
# blocked-at-death honesty
# ----------------------------------------------------------------------
class TestBlockedAtDeath:
    """``died_blocked`` must track the *records*, never be inferred away."""

    def _write(self, path, records):
        with open(path, "w") as fh:
            for seq, rec in enumerate(records):
                fh.write(json.dumps({**rec, "seq": seq}) + "\n")

    def test_final_block_is_died_blocked_even_after_joinee_completed(self, path):
        """Regression: the joinee's earlier ``complete`` record must NOT
        clear a final un-unblocked ``block`` — the waiter provably never
        woke (a lost-wakeup class of bug), and hiding the edge because
        "the joinee finished anyway" would mask exactly that."""
        self._write(
            path,
            [
                {"kind": "start", "policy": "TJ-SP", "runtime": "TaskRuntime",
                 "fail_mode": "raise"},
                {"kind": "init", "task": "t0"},
                {"kind": "fork", "parent": "t0", "child": "t1"},
                {"kind": "complete", "task": "t1", "ok": True},
                {"kind": "verdict", "waiter": "t0", "joinee": "t1", "ok": True},
                {"kind": "block", "waiter": "t0", "joinee": "t1"},
            ],
        )
        replay = replay_journal(path)
        assert replay.died_blocked
        assert replay.blocked_at_death == [("t0", "t1")]
        assert replay.completed == ["t1"]
        assert "blocked at death" in replay.report()

    def test_unblock_clears_the_edge(self, path):
        self._write(
            path,
            [
                {"kind": "start", "policy": "TJ-SP", "runtime": "TaskRuntime",
                 "fail_mode": "raise"},
                {"kind": "init", "task": "t0"},
                {"kind": "fork", "parent": "t0", "child": "t1"},
                {"kind": "verdict", "waiter": "t0", "joinee": "t1", "ok": True},
                {"kind": "block", "waiter": "t0", "joinee": "t1"},
                {"kind": "unblock", "waiter": "t0", "joinee": "t1"},
                {"kind": "join", "waiter": "t0", "joinee": "t1"},
            ],
        )
        replay = replay_journal(path)
        assert not replay.died_blocked
        assert replay.blocked_at_death == []

    def test_reblocked_edge_counts_again(self, path):
        """block, unblock, block: the last state wins — still blocked."""
        self._write(
            path,
            [
                {"kind": "start", "policy": "TJ-SP", "runtime": "TaskRuntime",
                 "fail_mode": "raise"},
                {"kind": "init", "task": "t0"},
                {"kind": "fork", "parent": "t0", "child": "t1"},
                {"kind": "verdict", "waiter": "t0", "joinee": "t1", "ok": True},
                {"kind": "block", "waiter": "t0", "joinee": "t1"},
                {"kind": "unblock", "waiter": "t0", "joinee": "t1"},
                {"kind": "block", "waiter": "t0", "joinee": "t1"},
            ],
        )
        replay = replay_journal(path)
        assert replay.died_blocked
        assert replay.blocked_at_death == [("t0", "t1")]
