"""End-to-end tests: formal traces executed on the real runtime."""

import random

import pytest
from hypothesis import given, settings

from repro.errors import DeadlockDetectedError
from repro.formal.actions import Fork, Init, Join
from repro.formal.deadlock import contains_deadlock
from repro.formal.generators import (
    random_deadlocking_trace,
    random_kj_valid_trace,
    random_tj_valid_trace,
)
from repro.tools.replay import replay_on_runtime, replay_on_threaded

from ..conftest import tj_valid_traces


class TestReplayBasics:
    def test_simple_trace(self):
        trace = [Init("r"), Fork("r", "a"), Join("r", "a")]
        outcome = replay_on_runtime(trace, "TJ-SP")
        assert outcome.clean
        assert outcome.completed_joins == [("r", "a")]

    def test_empty_or_malformed_trace_rejected(self):
        with pytest.raises(ValueError):
            replay_on_runtime([], "TJ-SP")
        with pytest.raises(ValueError):
            replay_on_runtime([Fork("r", "a")], "TJ-SP")

    def test_join_on_root_is_refused(self):
        trace = [Init("r"), Fork("r", "a"), Join("a", "r")]
        outcome = replay_on_runtime(trace, "TJ-SP")
        assert outcome.refused_joins == [("a", "r", "JoinOnRoot")]

    def test_verifier_saw_every_join(self):
        trace = random_tj_valid_trace(random.Random(0), 20, 25)
        outcome = replay_on_runtime(trace, "TJ-SP")
        joins = sum(isinstance(a, Join) for a in trace)
        assert len(outcome.completed_joins) == joins
        assert outcome.runtime.verifier.stats.joins_checked >= joins


class TestReplayProperties:
    @settings(max_examples=40, deadline=None)
    @given(trace=tj_valid_traces(max_tasks=15, max_joins=15))
    def test_tj_valid_traces_replay_cleanly_under_tj(self, trace):
        outcome = replay_on_runtime(trace, "TJ-SP")
        assert outcome.clean
        assert outcome.runtime.detector.stats.false_positives == 0
        assert outcome.runtime.detector.stats.deadlocks_avoided == 0

    def test_kj_valid_traces_replay_cleanly_under_kj(self):
        """Online KJ knowledge is a superset of the formal at-position
        knowledge (joins transfer *final* joinee knowledge), so a
        KJ-valid trace replays with zero flags under both KJ verifiers."""
        for seed in range(8):
            trace = random_kj_valid_trace(random.Random(seed), 12, 15)
            for kj in ("KJ-SS", "KJ-VC"):
                outcome = replay_on_runtime(trace, kj)
                assert outcome.clean
                assert outcome.runtime.detector.stats.false_positives == 0

    def test_deadlocking_trace_avoided_with_policy(self):
        """A trace with a planted join cycle completes under TJ+Armus,
        with at least one join refused."""
        for seed in range(5):
            trace = random_deadlocking_trace(random.Random(seed), 8, cycle_len=3)
            assert contains_deadlock(trace)
            outcome = replay_on_runtime(trace, "TJ-SP")
            assert not outcome.clean
            refused = {
                kind for _, _, kind in outcome.refused_joins
            }
            assert refused <= {"PolicyViolationError", "DeadlockAvoidedError"}
            # the cycle was never allowed to form:
            assert outcome.runtime.detector.stats.deadlocks_avoided <= len(
                outcome.refused_joins
            )

    def test_deadlocking_trace_detected_without_policy(self):
        """With verification off, the deterministic runtime detects the
        planted deadlock instead of hanging."""
        trace = [
            Init("r"),
            Fork("r", "a"),
            Fork("r", "b"),
            Join("a", "b"),
            Join("b", "a"),
        ]
        with pytest.raises(DeadlockDetectedError):
            replay_on_runtime(trace, None, fallback=False)

    def test_threaded_replay_matches_cooperative_for_tj(self):
        """Differential: the same TJ-valid traces replay cleanly with
        identical completed-join sets on real threads."""
        for seed in range(6):
            trace = random_tj_valid_trace(random.Random(seed), 12, 15)
            coop = replay_on_runtime(trace, "TJ-SP")
            threaded = replay_on_threaded(trace, "TJ-SP")
            assert threaded.clean
            assert sorted(map(str, threaded.completed_joins)) == sorted(
                map(str, coop.completed_joins)
            )
            assert threaded.runtime.detector.stats.false_positives == 0

    def test_threaded_replay_avoids_planted_deadlocks(self):
        for seed in range(3):
            trace = random_deadlocking_trace(random.Random(seed), 8, cycle_len=2)
            outcome = replay_on_threaded(trace, "TJ-SP")
            assert not outcome.clean  # something was refused, nothing hung

    def test_threaded_replay_join_on_root(self):
        trace = [Init("r"), Fork("r", "a"), Join("a", "r")]
        outcome = replay_on_threaded(trace, "TJ-SP")
        assert outcome.refused_joins == [("a", "r", "JoinOnRoot")]

    @settings(max_examples=30, deadline=None)
    @given(trace=tj_valid_traces(max_tasks=12, max_joins=10))
    def test_kj_flags_bounded_by_offline_validation(self, trace):
        """Online KJ knows at least the formal at-position knowledge (a
        completed join transfers the joinee's *final* set), so at runtime
        KJ flags at most the joins the offline validator rejects — and
        with the fallback on, every flag is a counted false positive,
        never a refusal (the trace is TJ-valid, hence deadlock-free)."""
        from repro.formal.trace import KJFamily, validate_trace

        offline = validate_trace(trace, KJFamily)
        outcome = replay_on_runtime(trace, "KJ-SS")
        assert outcome.clean  # fallback admits everything: no deadlock
        online_fp = outcome.runtime.detector.stats.false_positives
        assert online_fp <= len(offline.rejected_joins)
