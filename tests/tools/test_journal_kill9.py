"""The acceptance scenario: ``kill -9`` a blocked run, replay its journal.

A child process starts a journalled run whose root blocks joining a
task that will never finish.  The ``block`` record is critical — the
journal flushes it before the thread sleeps — so once it is visible in
the file the parent can SIGKILL the child at the worst possible moment
and the journal still names the exact edge the process died waiting on.
``replay_journal`` must reconstruct that blocked-edge set (and tolerate
whatever torn tail the kill produced).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.tools.journal import read_journal
from repro.tools.replay import replay_journal

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src")

# The child: root forks a task that waits forever, then joins it.  The
# extra leaf fork gives the journal some buffered (non-critical) records
# so the kill also exercises the torn/unflushed-tail path.
CHILD = """
import sys, threading
sys.path.insert(0, {src!r})
from repro.runtime.threaded import TaskRuntime

rt = TaskRuntime(policy="TJ-SP", journal={path!r}, watchdog=False)

def main():
    rt.fork(lambda: 7).join()          # one completed join for contrast
    never = threading.Event()
    stuck = rt.fork(never.wait)        # never finishes
    stuck.join()                       # root blocks here, forever

rt.run(main)
"""


def _wait_for_durable_block(path, proc, timeout=20.0):
    """Poll the journal until a ``block`` record is visible on disk."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"child exited early (rc={proc.returncode}) instead of blocking"
            )
        if os.path.exists(path):
            with open(path) as fh:
                for line in fh.read().split("\n"):
                    if '"kind":"block"' in line:
                        return json.loads(line)
        time.sleep(0.01)
    raise AssertionError("no durable block record appeared before the deadline")


@pytest.fixture
def killed_journal(tmp_path):
    """Run the child to its blocked state, SIGKILL it, return the path."""
    path = str(tmp_path / "killed.jsonl")
    proc = subprocess.Popen(
        [sys.executable, "-c", CHILD.format(src=SRC, path=path)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        block = _wait_for_durable_block(path, proc)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on failure
            proc.kill()
            proc.wait(timeout=10)
    assert proc.returncode == -signal.SIGKILL
    return path, block


def test_replay_reconstructs_the_exact_blocked_edge_set(killed_journal):
    path, block = killed_journal
    replay = replay_journal(path)
    # the exact edge the process died sleeping on — and nothing else
    assert replay.died_blocked
    assert replay.blocked_at_death == [(block["waiter"], block["joinee"])]
    # the completed join is NOT in the death set: its unblock/join were
    # durable (or it never blocked at all)
    assert replay.forks == 2
    assert replay.quarantine is None
    assert replay.recheck_mismatches == []
    report = replay.report()
    assert "blocked at death:" in report
    assert f"{block['waiter']} was waiting on {block['joinee']}" in report


def test_killed_journal_reads_without_corruption_errors(killed_journal):
    path, _ = killed_journal
    result = read_journal(path)  # may or may not have a torn tail
    kinds = [r["kind"] for r in result.records]
    assert kinds[0] == "start"
    assert "block" in kinds
    # seq density held on everything that reached the disk
    assert [r["seq"] for r in result.records] == list(range(len(result.records)))


def test_journal_replay_cli_post_mortem(killed_journal):
    """The ``repro journal-replay`` CLI prints the post-mortem and exits 0
    (mismatches, not crash damage, are the failure condition)."""
    path, block = killed_journal
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.cli", "journal-replay", path],
        env={**os.environ, "PYTHONPATH": SRC},
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert proc.returncode == 0, proc.stderr
    assert "blocked at death:" in proc.stdout
    assert f"{block['waiter']} was waiting on {block['joinee']}" in proc.stdout
