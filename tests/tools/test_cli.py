"""Tests for the command-line interface."""

import pytest

from repro.tools.cli import main


@pytest.fixture
def trace_file(tmp_path):
    def write(text):
        p = tmp_path / "trace.txt"
        p.write_text(text)
        return str(p)

    return write


GOOD_TRACE = """
init(a)
fork(a, b)
fork(b, c)
join(a, c)   # grandchild join
join(a, b)
"""


class TestCheckCommand:
    def test_tj_accepts_grandchild_join(self, trace_file, capsys):
        rc = main(["check", trace_file(GOOD_TRACE), "--policy", "TJ"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "valid:         True" in out
        assert "deadlock:      none" in out

    def test_kj_rejects_grandchild_join(self, trace_file, capsys):
        rc = main(["check", trace_file(GOOD_TRACE), "--policy", "KJ"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "violation at #3" in out

    def test_deadlock_reported(self, trace_file, capsys):
        rc = main(
            [
                "check",
                trace_file("init(a)\nfork(a, b)\nfork(a, c)\njoin(b, c)\njoin(c, b)\n"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "cycle" in out


class TestBenchCommand:
    def test_bench_runs_and_verifies(self, capsys):
        rc = main(
            ["bench", "NQueens", "--policy", "KJ-SS", "--param", "n=7", "--param", "cutoff=2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified:        True" in out
        assert "false positives:" in out

    def test_bench_small_scale(self, capsys):
        rc = main(["bench", "Strassen", "--policy", "none", "--scale", "small"])
        assert rc == 0
        assert "verified:        True" in capsys.readouterr().out


class TestVizCommand:
    def test_tree(self, trace_file, capsys):
        rc = main(["viz", trace_file(GOOD_TRACE), "--format", "tree"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rank" in out and "`--" in out or "|--" in out

    def test_matrix(self, trace_file, capsys):
        rc = main(["viz", trace_file(GOOD_TRACE), "--format", "matrix"])
        out = capsys.readouterr().out
        assert rc == 0 and "TJ only" in out

    def test_dot(self, trace_file, capsys):
        rc = main(["viz", trace_file(GOOD_TRACE), "--format", "dot"])
        out = capsys.readouterr().out
        assert rc == 0 and out.startswith("digraph")


class TestReplayCommand:
    def test_clean_replay(self, trace_file, capsys):
        rc = main(["replay", trace_file(GOOD_TRACE), "--policy", "TJ-SP"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "completed joins:  2" in out
        assert "false positives:  0" in out

    def test_kj_replay_uses_fallback(self, trace_file, capsys):
        rc = main(["replay", trace_file(GOOD_TRACE), "--policy", "KJ-SS"])
        out = capsys.readouterr().out
        assert rc == 0  # fallback admits the grandchild join
        assert "false positives:  1" in out

    def test_no_fallback_refuses(self, trace_file, capsys):
        rc = main(
            ["replay", trace_file(GOOD_TRACE), "--policy", "KJ-SS", "--no-fallback"]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "PolicyViolationError" in out


class TestReportCommands:
    def test_table1(self, capsys):
        rc = main(["table1", "--sizes", "64", "128", "--queries", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "paper bounds" in out
        assert "TJ-SP" in out

    def test_table2_subset(self, capsys):
        rc = main(
            ["table2", "--reps", "1", "--benchmarks", "Strassen", "NQueens"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Strassen" in out and "NQueens" in out and "Jacobi" not in out
        assert "Geom. mean" in out

    def test_figure2_subset(self, capsys):
        rc = main(["figure2", "--reps", "2", "--benchmarks", "NQueens"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "95% CI" in out and "NQueens" in out

    def test_table2_json_export(self, tmp_path, capsys):
        from repro.analysis.io import load_reports

        path = str(tmp_path / "raw.json")
        rc = main(
            ["table2", "--reps", "1", "--benchmarks", "NQueens", "--json", path]
        )
        assert rc == 0
        reports = load_reports(path)
        assert [r.name for r in reports] == ["NQueens"]
        assert len(reports[0].baseline.times) == 1

    def test_figure2_svg_export(self, tmp_path, capsys):
        path = str(tmp_path / "fig2.svg")
        rc = main(
            ["figure2", "--reps", "2", "--benchmarks", "Strassen", "--svg", path]
        )
        assert rc == 0
        content = open(path).read()
        assert content.startswith("<svg") and "Strassen" in content

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunCommand:
    def test_clean_trace_on_threaded(self, trace_file, capsys):
        rc = main(["run", trace_file(GOOD_TRACE), "--policy", "TJ-SP"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "completed joins:  2" in out
        assert "refused joins:    0" in out

    def test_clean_trace_on_pool(self, trace_file, capsys):
        rc = main(
            ["run", trace_file(GOOD_TRACE), "--policy", "KJ-CC", "--runtime", "pool"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "runtime:          pool" in out
        # the grandchild join is KJ's known false positive
        assert "false positives:  1" in out

    def test_true_deadlock_under_no_policy_is_diagnosed(self, trace_file, capsys):
        """policy=none disarms avoidance; the watchdog must still end
        the run with a diagnosis instead of a hang."""
        rc = main(
            [
                "run",
                trace_file("init(a)\nfork(a, b)\nfork(a, c)\njoin(b, c)\njoin(c, b)\n"),
                "--policy",
                "none",
                "--watchdog-interval",
                "0.02",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        # both blocked tasks get the diagnosis, but whichever handles it
        # first completes (the replay body catches the error), letting
        # the other's join succeed — so 1 or 2 joins report refused.
        assert "DeadlockDetectedError" in out
        assert "watchdog stalls:  2" in out

    def test_join_timeout_flag(self, trace_file, capsys):
        rc = main(
            [
                "run",
                trace_file("init(a)\nfork(a, b)\nfork(a, c)\njoin(b, c)\njoin(c, b)\n"),
                "--policy",
                "none",
                "--no-watchdog",
                "--timeout",
                "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "JoinTimeoutError" in out


class TestChaosCommand:
    def test_smoke_sweep_passes(self, capsys):
        rc = main(["chaos", "--smoke", "--programs", "1", "--seed", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "passed" in out and "0 failed" in out

    def test_narrow_sweep_with_faults(self, capsys):
        rc = main(
            [
                "chaos",
                "--programs",
                "1",
                "--policies",
                "TJ-SP",
                "--runtimes",
                "threaded",
                "--fault-rate",
                "0.2",
                "--max-tasks",
                "6",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "with verifier faults" in out


class TestPredictAndSimulateCommands:
    @pytest.fixture
    def flagged_journal(self, tmp_path):
        from repro.testing.chaos import run_predict_program

        path = str(tmp_path / "predict.jsonl")
        run_predict_program(0, path)  # seed 0 plants a cycle
        return path

    def test_predict_flags_and_writes_a_witness(
        self, flagged_journal, tmp_path, capsys
    ):
        witness = str(tmp_path / "witness.json")
        rc = main(
            [
                "predict",
                flagged_journal,
                "--witness-out",
                witness,
                "--expect",
                "flagged",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "predicted deadlock" in out
        assert "witness written" in out

    def test_simulate_replays_the_witness_under_each_policy(
        self, flagged_journal, tmp_path, capsys
    ):
        witness = str(tmp_path / "witness.json")
        assert main(["predict", flagged_journal, "--witness-out", witness]) == 0
        capsys.readouterr()

        rc = main(
            ["simulate", "--schedule", witness, "--policy", "none",
             "--expect", "deadlock"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict=deadlock" in out

        for policy in ("TJ-SP", "KJ-VC"):
            rc = main(
                ["simulate", "--schedule", witness, "--policy", policy,
                 "--expect", "avoided"]
            )
            out = capsys.readouterr().out
            assert rc == 0
            assert "verdict=avoided" in out

    def test_simulate_seeded_from_a_journal(self, flagged_journal, capsys):
        rc = main(
            ["simulate", "--journal", flagged_journal, "--seed", "0",
             "--policy", "TJ-SP"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verdict=" in out

    def test_expect_mismatch_exits_nonzero(self, flagged_journal, capsys):
        rc = main(["predict", flagged_journal, "--expect", "clean"])
        capsys.readouterr()
        assert rc == 1

    def test_chaos_predict_slice_prints_flagged_journals(self, tmp_path, capsys):
        rc = main(
            ["chaos", "--predict", "--smoke", "--seed", "0",
             "--journal-dir", str(tmp_path), "--program-id", "0"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "flagged journal=" in out
        assert "predict" in out.rsplit("chaos:", 1)[-1]
