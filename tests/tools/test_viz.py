"""Tests for the visualisation helpers."""

from repro.formal.actions import Fork, Init, Join
from repro.tools.viz import (
    fork_tree_dot,
    render_fork_tree,
    render_permission_matrix,
    waits_for_dot,
)

TRACE = [
    Init("a"),
    Fork("a", "b"),
    Fork("b", "c"),
    Fork("a", "d"),
    Join("d", "c"),
]


class TestForkTreeRendering:
    def test_tree_shape(self):
        text = render_fork_tree(TRACE)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert any("|-- b" in l or "`-- b" in l for l in lines)
        assert any("`-- c" in l for l in lines)

    def test_ranks_follow_tj_order(self):
        text = render_fork_tree(TRACE)
        # order: a < d < b < c  =>  ranks a=0, d=1, b=2, c=3
        assert "[rank 0" in text.splitlines()[0]
        d_line = next(l for l in text.splitlines() if "d " in l or "d  " in l)
        assert "rank 1" in d_line

    def test_spawn_paths_shown(self):
        text = render_fork_tree(TRACE)
        assert "path (0, 0)" in text  # c

    def test_no_order_annotations(self):
        text = render_fork_tree(TRACE, show_order=False)
        assert "rank" not in text

    def test_empty(self):
        assert render_fork_tree([]) == "(empty tree)"


class TestPermissionMatrix:
    def test_codes(self):
        text = render_permission_matrix(TRACE)
        rows = {
            line.split()[0]: line.split()[1:]
            for line in text.splitlines()[1:-1]
        }
        tasks = text.splitlines()[0].split()
        # d may join c under TJ only:
        d_row = rows["d"]
        assert d_row[tasks.index("c")] == "T"
        # a may join b under both:
        assert rows["a"][tasks.index("b")] == "B"
        # b may never join a:
        assert rows["b"][tasks.index("a")] == "."
        # diagonal:
        assert rows["a"][tasks.index("a")] == "-"

    def test_legend_present(self):
        assert "TJ only" in render_permission_matrix(TRACE)


class TestDotExport:
    def test_fork_tree_dot(self):
        dot = fork_tree_dot(TRACE)
        assert dot.startswith("digraph")
        assert '"a" -> "b";' in dot
        assert '"d" -> "c" [style=dashed' in dot

    def test_fork_tree_dot_without_joins(self):
        dot = fork_tree_dot(TRACE, include_joins=False)
        assert "dashed" not in dot

    def test_waits_for_dot(self):
        dot = waits_for_dot([("x", "y"), ("y", "z")])
        assert '"x" -> "y";' in dot and '"y" -> "z";' in dot

    def test_quoting(self):
        dot = waits_for_dot([('we"ird', "ok")])
        assert r"\"" in dot
