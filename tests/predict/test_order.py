"""Tests for the must-happen-before partial order over journal events."""

from repro.predict import build_order


def _rec(kind, **fields):
    return {"kind": kind, **fields}


def _linear_journal():
    """root forks a, a runs and completes, root joins it."""
    return [
        _rec("start", policy="none"),
        _rec("init", task="t0"),
        _rec("fork", parent="t0", child="t1"),
        _rec("complete", task="t1", ok=True),
        _rec("verdict", waiter="t0", joinee="t1", ok=True),
        _rec("join", waiter="t0", joinee="t1"),
        _rec("complete", task="t0", ok=True),
    ]


class TestProgramOrder:
    def test_own_events_are_ordered(self):
        order = build_order(_linear_journal())
        t0 = order.by_task["t0"]
        for earlier, later in zip(t0, t0[1:]):
            assert order.must_precede(earlier, later)
            assert not order.must_precede(later, earlier)

    def test_untracked_records_are_skipped(self):
        order = build_order(_linear_journal())
        kinds = {e.kind for e in order.events}
        assert "start" not in kinds

    def test_fork_precedes_every_child_event(self):
        order = build_order(_linear_journal())
        fork_at = order.forked_at["t1"]
        for at in order.by_task["t1"]:
            assert order.must_precede(fork_at, at)

    def test_completed_join_orders_joinee_before_waiter_resume(self):
        order = build_order(_linear_journal())
        done = order.complete_of["t1"]
        join_at = order.by_task["t0"][-2]  # the join event
        assert order.events[join_at].kind == "join"
        assert order.must_precede(done, join_at)


class TestReorderability:
    def test_sibling_events_are_unordered(self):
        """Two children of the same root are concurrent: neither's
        events must-precede the other's."""
        records = [
            _rec("init", task="t0"),
            _rec("fork", parent="t0", child="t1"),
            _rec("fork", parent="t0", child="t2"),
            _rec("complete", task="t1", ok=True),
            _rec("complete", task="t2", ok=True),
        ]
        order = build_order(records)
        a = order.by_task["t1"][0]
        b = order.by_task["t2"][0]
        assert not order.must_precede(a, b)
        assert not order.must_precede(b, a)

    def test_rescued_join_adds_no_completion_edge(self):
        """block..unblock with no join is a deadline rescue: the journal
        order of the unblock is accident, not causality — the joinee's
        completion stays unordered relative to the waiter's tail."""
        records = [
            _rec("init", task="t0"),
            _rec("fork", parent="t0", child="t1"),
            _rec("fork", parent="t0", child="t2"),
            # t1 tries to join t2, gets rescued by the deadline
            _rec("verdict", waiter="t1", joinee="t2", ok=True),
            _rec("block", waiter="t1", joinee="t2", timeout=0.1),
            _rec("unblock", waiter="t1", joinee="t2"),
            _rec("complete", task="t1", ok=True),
            _rec("complete", task="t2", ok=True),
        ]
        order = build_order(records)
        t2_done = order.complete_of["t2"]
        unblock_at = order.by_task["t1"][-2]
        assert order.events[unblock_at].kind == "unblock"
        assert not order.must_precede(t2_done, unblock_at)

    def test_completion_event_falls_back_to_last_event(self):
        """A journal without durable complete records (older writers)
        still pins each task's termination at its last recorded event."""
        records = [
            _rec("init", task="t0"),
            _rec("fork", parent="t0", child="t1"),
            _rec("verdict", waiter="t0", joinee="t1", ok=True),
            _rec("join", waiter="t0", joinee="t1"),
        ]
        order = build_order(records)
        assert "t1" not in order.complete_of
        # t1 has no events of its own beyond the fork edge, so its
        # completion bound is None — and the join gains no edge.
        assert order.completion_event("t1") is None
