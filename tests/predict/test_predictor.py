"""End-to-end predictor tests: journal in, verified witnesses out."""

import json

import pytest

from repro.predict import predict_deadlocks, read_witness
from repro.testing.chaos import generate_predict_spec, run_predict_program
from repro.tools.replay import replay_journal


@pytest.fixture(scope="module")
def mutual_journal(tmp_path_factory):
    """A journal of a *clean* run whose program can deadlock: root forks
    t1 and t2 which mutually join, all joins deadline-rescued."""
    path = str(tmp_path_factory.mktemp("journals") / "mutual.jsonl")
    spec = run_predict_program(0, path)
    assert spec.has_cycle  # seed 0 plants a cycle
    return path


@pytest.fixture(scope="module")
def mutual_report(mutual_journal):
    return predict_deadlocks(mutual_journal)


class TestFlagging:
    def test_clean_recorded_run_is_still_flagged(self, mutual_journal, mutual_report):
        """The acceptance bar: a journal whose recorded run completed
        cleanly (every join rescued in time) still yields a prediction."""
        replay = replay_journal(mutual_journal)
        assert not replay.died_blocked
        assert mutual_report.clean_run
        assert mutual_report.flagged
        assert all(p.clean_run for p in mutual_report.predictions)

    def test_prediction_carries_policy_verdicts(self, mutual_report):
        for prediction in mutual_report.predictions:
            assert set(prediction.verdicts) == {"TJ-SP", "KJ-VC"}
            for policy, verdict in prediction.verdicts.items():
                assert verdict != "deadlock", policy

    def test_cycle_free_program_is_not_flagged(self, tmp_path):
        spec = generate_predict_spec(4)  # seed 4 plants no cycle
        assert not spec.has_cycle
        path = str(tmp_path / "acyclic.jsonl")
        run_predict_program(spec, path)
        report = predict_deadlocks(path)
        assert not report.flagged
        assert not report.candidates

    def test_retry_journal_is_skipped_not_mispredicted(self, tmp_path):
        path = str(tmp_path / "retry.jsonl")
        records = [
            {"kind": "init", "task": "t0", "seq": 0},
            {"kind": "fork", "parent": "t0", "child": "t1", "seq": 1},
            {"kind": "retry", "task": "t1", "attempt": 2, "seq": 2},
        ]
        with open(path, "w") as fh:
            for rec in records:
                fh.write(json.dumps(rec) + "\n")
        report = predict_deadlocks(path)
        assert report.skipped is not None
        assert not report.flagged


class TestWitness:
    def test_witness_reproduces_the_exact_cycle(self, mutual_report):
        for prediction in mutual_report.predictions:
            outcome = prediction.reproduce()
            assert outcome.verdict == "deadlock"
            assert outcome.deadlock is not None
            assert set(outcome.deadlock) == set(prediction.cycle)

    def test_witness_file_roundtrip(self, mutual_report, tmp_path):
        prediction = mutual_report.predictions[0]
        path = str(tmp_path / "witness.json")
        prediction.save(path)
        loaded = read_witness(path)
        assert loaded.cycle == prediction.cycle
        assert loaded.schedule == prediction.schedule
        assert loaded.verdicts == prediction.verdicts
        outcome = loaded.reproduce()
        assert outcome.verdict == "deadlock"
        assert set(outcome.deadlock) == set(prediction.cycle)


class TestDeterminism:
    def test_repeated_prediction_is_identical(self, mutual_journal, mutual_report):
        again = predict_deadlocks(mutual_journal)
        assert [p.to_dict() for p in again.predictions] == [
            p.to_dict() for p in mutual_report.predictions
        ]
        assert again.candidates == mutual_report.candidates
        assert again.sim_runs == mutual_report.sim_runs

    def test_report_renders(self, mutual_report):
        text = mutual_report.report()
        assert "predicted deadlock" in text
        assert "counterfactual" in text
