"""Tests for journal -> TraceProgram reconstruction and simulated runs."""

import pytest

from repro.predict import TraceProgram


def _rec(kind, **fields):
    return {"kind": kind, **fields}


class TestFromRecords:
    def test_forks_and_joins_in_program_order(self):
        records = [
            _rec("init", task="t0"),
            _rec("fork", parent="t0", child="t1"),
            _rec("fork", parent="t0", child="t2"),
            _rec("verdict", waiter="t0", joinee="t1", ok=True),
            _rec("join", waiter="t0", joinee="t1"),
            _rec("verdict", waiter="t0", joinee="t2", ok=True),
            _rec("join", waiter="t0", joinee="t2"),
        ]
        program = TraceProgram.from_records(records)
        assert program.root == "t0"
        assert program.actions["t0"] == (
            ("fork", "t1"),
            ("fork", "t2"),
            ("join", "t1"),
            ("join", "t2"),
        )

    def test_completed_blocking_join_is_one_attempt(self):
        """verdict, block, unblock, join on one edge = a single join."""
        records = [
            _rec("init", task="t0"),
            _rec("fork", parent="t0", child="t1"),
            _rec("verdict", waiter="t0", joinee="t1", ok=True),
            _rec("block", waiter="t0", joinee="t1"),
            _rec("unblock", waiter="t0", joinee="t1"),
            _rec("join", waiter="t0", joinee="t1"),
        ]
        program = TraceProgram.from_records(records)
        assert program.actions["t0"] == (("fork", "t1"), ("join", "t1"))

    def test_rescued_then_retried_join_is_two_attempts(self):
        """A fresh verdict on an edge whose prior attempt never joined
        means the deadline rescued it and the program tried again."""
        records = [
            _rec("init", task="t0"),
            _rec("fork", parent="t0", child="t1"),
            _rec("verdict", waiter="t0", joinee="t1", ok=True),
            _rec("block", waiter="t0", joinee="t1", timeout=0.1),
            _rec("unblock", waiter="t0", joinee="t1"),
            _rec("verdict", waiter="t0", joinee="t1", ok=True),
            _rec("join", waiter="t0", joinee="t1"),
        ]
        program = TraceProgram.from_records(records)
        assert program.actions["t0"] == (
            ("fork", "t1"),
            ("join", "t1"),
            ("join", "t1"),
        )

    def test_avoided_join_is_still_an_attempt(self):
        records = [
            _rec("init", task="t0"),
            _rec("fork", parent="t0", child="t1"),
            _rec("avoided", waiter="t0", joinee="t1"),
        ]
        program = TraceProgram.from_records(records)
        assert ("join", "t1") in program.actions["t0"]

    def test_no_init_refused(self):
        with pytest.raises(ValueError, match="no init"):
            TraceProgram.from_records([_rec("fork", parent="t0", child="t1")])

    def test_dict_roundtrip(self):
        program = TraceProgram(
            root="t0",
            actions={
                "t0": (("fork", "t1"), ("join", "t1")),
                "t1": (),
            },
        )
        assert TraceProgram.from_dict(program.to_dict()) == program


def _mutual_join_program():
    """root forks t1, t2; t1 joins t2; t2 joins t1 — a realizable cycle."""
    return TraceProgram(
        root="t0",
        actions={
            "t0": (("fork", "t1"), ("fork", "t2"), ("join", "t1"), ("join", "t2")),
            "t1": (("join", "t2"),),
            "t2": (("join", "t1"),),
        },
    )


class TestRunSim:
    def test_fifo_run_of_a_safe_program_is_clean(self):
        program = TraceProgram(
            root="t0",
            actions={"t0": (("fork", "t1"), ("join", "t1")), "t1": ()},
        )
        outcome = program.run_sim(None)
        assert outcome.verdict == "clean"
        assert outcome.deadlock is None

    def test_some_schedule_realizes_the_mutual_join_cycle(self):
        program = _mutual_join_program()
        deadlocked = set()
        for seed in range(20):
            outcome = program.run_sim(None, seed=seed)
            if outcome.verdict == "deadlock":
                deadlocked.add(outcome.deadlock)
        assert deadlocked  # some interleaving closes the cycle
        for cycle in deadlocked:
            assert set(cycle) >= {"t1", "t2"}

    def test_policies_never_deadlock_on_the_same_program(self):
        program = _mutual_join_program()
        for policy in ("TJ-SP", "KJ-VC"):
            for seed in range(10):
                outcome = program.run_sim(policy, seed=seed)
                assert outcome.verdict != "deadlock", (policy, seed)

    def test_deadlocking_run_yields_a_replayable_schedule(self):
        program = _mutual_join_program()
        outcome = None
        for seed in range(50):
            candidate = program.run_sim(None, seed=seed)
            if candidate.verdict == "deadlock":
                outcome = candidate
                break
        assert outcome is not None
        replay = program.run_sim(None, schedule=outcome.schedule)
        assert replay.verdict == "deadlock"
        assert replay.deadlock == outcome.deadlock
