"""Cross-process trace propagation on a real 4-worker + sidecar fleet.

One module-scoped run under full telemetry: the parent dispatches eight
subtrees across four workers, every cross-process join escalates to a
real sidecar subprocess, and at shutdown the workers' rings and the
sidecar's stats reply fold into the parent's tracer.  The tests then
assert the tentpole claims on the merged document:

* every span in every process carries the *same* trace id — the one the
  parent's tracer minted — because the ``(trace_id, span_id)`` carrier
  rode each dispatch frame and each sidecar check frame;
* dispatch flow starts (parent) pair with flow finishes (workers), and
  escalation flow starts (workers) pair with finishes (sidecar), so
  Perfetto draws arrows across process tracks;
* the merged document passes :func:`validate_chrome_trace` with zero
  problems — integer pids/tids, flows well-formed, durations nested.

Dispatched bodies are module-level (they cross a process boundary).
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.runtime import ProcessRuntime
from repro.tools.trace_export import validate_chrome_trace

WORKERS = 4
DISPATCHES = 8
FANOUT = 4


def square(x):
    return x * x


def subtree(rt, base, fanout):
    futs = [rt.fork(square, base + i) for i in range(fanout)]
    return sum(rt.join_batch(futs))


@pytest.fixture(scope="module")
def traced_fleet():
    with obs.enabled() as session:
        rt = ProcessRuntime(workers=WORKERS, sidecar="auto", seg0=64, stripe=16)

        def root():
            futs = [rt.fork(subtree, 10 * t, FANOUT) for t in range(DISPATCHES)]
            return rt.join_batch(futs)

        totals = rt.run(root)
        doc = session.to_chrome_trace()
        trace_id = session.tracer.trace_id
        worker_pids = {w.proc.pid for w in rt._workers}
        deaths = rt.worker_deaths
    return {
        "doc": doc,
        "trace_id": trace_id,
        "worker_pids": worker_pids,
        "deaths": deaths,
        "totals": totals,
    }


def _events(fleet):
    return fleet["doc"]["traceEvents"]


def test_the_run_itself_was_correct(traced_fleet):
    assert traced_fleet["totals"] == [
        sum((10 * t + i) ** 2 for i in range(FANOUT)) for t in range(DISPATCHES)
    ]
    assert traced_fleet["deaths"] == 0


def test_merged_document_validates_clean(traced_fleet):
    assert validate_chrome_trace(traced_fleet["doc"]) == []


def test_every_process_contributed_a_track(traced_fleet):
    pids = {e["pid"] for e in _events(traced_fleet) if "pid" in e}
    # parent + all four workers (round-robin gives each two dispatches)
    # + the sidecar's absorbed ring
    assert os.getpid() in pids
    assert traced_fleet["worker_pids"] <= pids
    assert len(pids) >= WORKERS + 2


def test_one_trace_id_spans_every_process(traced_fleet):
    trace_id = traced_fleet["trace_id"]
    by_pid: dict[int, set] = {}
    for e in _events(traced_fleet):
        trace = (e.get("args") or {}).get("trace")
        if e.get("ph") == "X" and trace:
            by_pid.setdefault(e["pid"], set()).add(trace)
    # spans exist in the parent, the workers, and the sidecar — and all
    # of them carry the parent's trace id, nothing else
    assert set(by_pid) == {
        e["pid"] for e in _events(traced_fleet) if e.get("ph") == "X"
    }
    assert len(by_pid) >= WORKERS + 2
    for pid, traces in by_pid.items():
        assert traces == {trace_id}, f"pid {pid} carries foreign trace ids"


def test_dispatch_and_escalation_flows_pair_across_processes(traced_fleet):
    events = _events(traced_fleet)
    parent = os.getpid()
    workers = traced_fleet["worker_pids"]
    starts = [e for e in events if e.get("ph") == "s"]
    finishes = [e for e in events if e.get("ph") == "f"]
    # every finish pairs with a start of the same flow id from a
    # *different* process (span ids are per-process counters, so a flow
    # id may also collide with an unrelated same-numbered start locally)
    start_pids = {}
    for e in starts:
        start_pids.setdefault(e["id"], set()).add(e["pid"])
    for e in finishes:
        assert e["id"] in start_pids
        assert start_pids[e["id"]] - {e["pid"]}, (
            f"flow {e['id']} finishes on pid {e['pid']} with no "
            f"cross-process start"
        )
    # dispatch flows: parent-side starts adopted by worker-side finishes
    dispatch_f = [e for e in finishes if e["pid"] in workers]
    assert len(dispatch_f) >= DISPATCHES
    assert any(e["pid"] == parent for e in starts)
    # escalation flows: worker-side starts finished on the sidecar track
    sidecar_f = [
        e for e in finishes if e["pid"] not in workers and e["pid"] != parent
    ]
    # one per escalated join_batch (each subtree joins its leaves in
    # one batched check)
    assert len(sidecar_f) >= DISPATCHES


def test_sidecar_join_checks_ride_the_parent_trace(traced_fleet):
    parent = os.getpid()
    workers = traced_fleet["worker_pids"]
    sidecar_spans = [
        e
        for e in _events(traced_fleet)
        if e.get("ph") == "X" and e["pid"] not in workers and e["pid"] != parent
    ]
    assert sidecar_spans, "the sidecar's span ring never reached the parent"
    named = {e["name"] for e in sidecar_spans}
    assert any("join" in n or "check" in n for n in named), named
