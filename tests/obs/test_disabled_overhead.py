"""Disabled telemetry is allocation-free, not merely cheap.

The timing gate in ``benchmarks/bench_obs_overhead.py`` bounds the
*relative* cost of enabled telemetry; the qualitative claims for the
default (disabled) state are stronger, and pinned with ``tracemalloc``:

* the telemetry layer proper (``obs/__init__.py``, ``obs/tracing.py``)
  allocates **nothing** during construction or fork/join execution —
  every instrumentation site reduces to one ``is None`` test;
* steady-state fork/join execution allocates nothing anywhere in
  ``repro/obs/``.  (A *fresh* thread's first event registers its
  per-thread stats cell in ``obs/metrics.py`` — that is the verifier's
  pre-existing sharded-stats surface, now registry-owned, and exists
  with or without telemetry.)
"""

from __future__ import annotations

import os
import tracemalloc

import repro.obs
from repro import TaskRuntime
from repro import obs
from repro.runtime.pool import WorkSharingRuntime

OBS_DIR = os.path.dirname(repro.obs.__file__)
#: everything under repro/obs/
ALL_OBS = [tracemalloc.Filter(True, os.path.join(OBS_DIR, "*"))]
#: just the telemetry layer (sessions, tracer) — excludes the shared
#: sharded-stats machinery in metrics.py
TELEMETRY_LAYER = [
    tracemalloc.Filter(True, os.path.join(OBS_DIR, "__init__.py")),
    tracemalloc.Filter(True, os.path.join(OBS_DIR, "tracing.py")),
]


def _allocated(filters, workload) -> int:
    """Bytes allocated from within *filters* while *workload* runs."""
    tracemalloc.start(10)
    try:
        workload()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces(filters).statistics("filename")
    return sum(s.size for s in stats)


def _fork_join_workload():
    rt = TaskRuntime(policy="TJ-SP")

    def main():
        futures = [rt.fork(lambda: 1) for _ in range(8)]
        return sum(f.join() for f in futures)

    assert rt.run(main) == 8


class TestDisabledIsFree:
    def test_telemetry_layer_allocates_nothing_when_disabled(self):
        assert obs.active() is None, "telemetry must be off by default"
        _fork_join_workload()  # warm import-time and first-call caches
        assert _allocated(TELEMETRY_LAYER, _fork_join_workload) == 0

    def test_steady_state_fork_join_allocates_nothing_in_obs(self):
        """With worker threads warm (cells registered), a disabled run
        touches no obs code path that allocates at all."""
        assert obs.active() is None
        rt = WorkSharingRuntime(policy="TJ-SP")
        box = {}

        def main():
            for _ in range(8):  # warm: registers worker-thread cells
                assert rt.fork(lambda: 1).join() == 1
            tracemalloc.start(10)
            for _ in range(8):  # steady state, traced
                assert rt.fork(lambda: 1).join() == 1
            box["snap"] = tracemalloc.take_snapshot()
            tracemalloc.stop()
            return 1

        assert rt.run(main) == 1
        stats = box["snap"].filter_traces(ALL_OBS).statistics("filename")
        assert sum(s.size for s in stats) == 0

    def test_disabled_runtime_caches_none_at_construction(self):
        assert obs.active() is None
        rt = TaskRuntime()
        assert rt._obs is None
        assert rt.verifier._obs is None

    def test_enabled_mode_does_allocate_in_the_telemetry_layer(self):
        """Sanity check that the filters actually see telemetry
        allocations — otherwise the zeros above would be vacuous."""

        def enabled_workload():
            with obs.enabled():
                _fork_join_workload()

        assert _allocated(TELEMETRY_LAYER, enabled_workload) > 0


class TestActivationScoping:
    def test_enabled_restores_prior_state(self):
        assert obs.active() is None
        with obs.enabled(tracing=False) as session:
            assert obs.active() is session
        assert obs.active() is None

    def test_using_activates_and_restores(self):
        session = obs.Telemetry(tracing=False)
        with obs.using(session):
            assert obs.active() is session
            with obs.using(None):  # a truly-off arm inside an enabled scope
                assert obs.active() is None
            assert obs.active() is session
        assert obs.active() is None

    def test_components_capture_the_session_at_construction(self):
        with obs.enabled(tracing=False) as session:
            rt = TaskRuntime()
        assert rt._obs is session  # kept after the scope closes
        assert TaskRuntime()._obs is None  # constructed outside: off
