"""End-to-end: the CLI surface of the telemetry stack.

``repro run --trace-out/--metrics-out`` must yield a Perfetto-valid
trace and a metrics snapshot from one command, and ``repro top`` must
render both post-mortem (from a metrics file) and live (replaying a
trace while sampling the active session).  This is the same path the
``obs-smoke`` CI job exercises.
"""

from __future__ import annotations

import json

import pytest

from repro.tools.cli import main
from repro.tools.trace_export import validate_chrome_trace

#: a program whose joins actually block (grandchild join via TJ)
PROGRAM = """
init(a)
fork(a, b)
fork(b, c)
join(a, c)
join(a, b)
"""


@pytest.fixture
def program_file(tmp_path):
    p = tmp_path / "program.txt"
    p.write_text(PROGRAM)
    return str(p)


class TestRunWithTelemetry:
    def test_run_writes_a_valid_trace_and_metrics(self, program_file, tmp_path, capsys):
        trace_out = str(tmp_path / "trace.json")
        metrics_out = str(tmp_path / "metrics.json")
        rc = main(
            [
                "run",
                program_file,
                "--policy",
                "TJ-SP",
                "--trace-out",
                trace_out,
                "--metrics-out",
                metrics_out,
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace written to" in out
        assert "metrics snapshot written to" in out

        with open(trace_out) as fh:
            trace = json.load(fh)
        assert validate_chrome_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert {"fork", "run"} <= names

        with open(metrics_out) as fh:
            metrics = json.load(fh)
        assert metrics["histograms"]["repro_runtime_fork_ns"]["count"] >= 2
        assert metrics["sources"]["verifier"]["forks"] >= 2

    def test_run_without_flags_leaves_telemetry_off(self, program_file, capsys):
        from repro import obs

        rc = main(["run", program_file, "--policy", "TJ-SP"])
        capsys.readouterr()
        assert rc == 0
        assert obs.active() is None

    def test_chaos_accepts_telemetry_flags(self, tmp_path, capsys):
        trace_out = str(tmp_path / "chaos-trace.json")
        rc = main(
            [
                "chaos",
                "--smoke",
                "--programs",
                "2",
                "--policies",
                "TJ-SP",
                "--runtimes",
                "threaded",
                "--trace-out",
                trace_out,
            ]
        )
        capsys.readouterr()
        assert rc == 0
        with open(trace_out) as fh:
            assert validate_chrome_trace(json.load(fh)) == []


class TestTopCommand:
    def test_post_mortem_top_renders_a_metrics_file(self, program_file, tmp_path, capsys):
        metrics_out = str(tmp_path / "metrics.json")
        assert (
            main(
                ["run", program_file, "--policy", "TJ-SP", "--metrics-out", metrics_out]
            )
            == 0
        )
        capsys.readouterr()
        rc = main(["top", "--metrics", metrics_out])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verifier" in out
        assert "repro_runtime_fork_ns" in out

    def test_live_top_replays_a_trace(self, program_file, capsys):
        rc = main(["top", program_file, "--policy", "TJ-SP", "--interval", "0.05"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "uptime" in out
        assert "blocked joins" in out
