"""The live introspection plane and the ``top`` renderers behind it.

:class:`IntrospectionServer` + :func:`fetch_stats` are the two halves of
``repro top --live``: a run exposes a snapshot supplier over the wire
protocol's ``stats`` record, and an attaching terminal asks for it
fresh each frame.  The renderer tests feed :func:`render_live_stats`
synthetic snapshots in both wire shapes (a ProcessRuntime introspection
snapshot, a ``repro serve`` server snapshot) — pure functions, asserted
as strings.
"""

from __future__ import annotations

import socket
import types

import pytest

import repro.obs.live as live_mod
from repro.errors import ServiceProtocolError, ServiceUnavailableError
from repro.obs.live import IntrospectionServer, fetch_stats
from repro.obs.top import (
    render_fleet_blocked,
    render_live_stats,
    render_predictions,
)
from repro.service.server import VerificationServer
from repro.service.wire import WIRE_VERSION, RecordStream


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestIntrospectionServer:
    def test_each_stats_request_sees_the_supplier_move(self):
        state = {"kind": "procs", "run_id": "live", "tick": 0}
        srv = IntrospectionServer(lambda: dict(state)).start()
        try:
            first = fetch_stats(srv.url)
            state["tick"] = 7
            second = fetch_stats(srv.url)
        finally:
            srv.stop()
        assert first["tick"] == 0
        assert second["tick"] == 7
        assert srv.stats_served == 2
        assert srv.connections == 2

    def test_url_is_still_reported_after_stop(self):
        srv = IntrospectionServer(dict).start()
        url = srv.url
        srv.stop()
        assert srv.url == url  # post-run summaries still print it

    def test_url_before_start_raises(self):
        with pytest.raises(RuntimeError):
            IntrospectionServer(dict).url

    def test_wire_version_gate_refuses_a_mismatched_hello(self):
        srv = IntrospectionServer(dict).start()
        try:
            host, port = srv._bound
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.settimeout(5.0)
            try:
                stream = RecordStream(sock)
                stream.send(
                    {
                        "kind": "hello",
                        "session": "skew",
                        "policy": "TJ-SP",
                        "fail_mode": "open",
                        "wire": WIRE_VERSION + 1,
                    }
                )
                reply = stream.recv()
                assert reply["kind"] == "error"
                assert "wire version" in reply["message"]
            finally:
                sock.close()
        finally:
            srv.stop()
        assert srv.stats_served == 0


class TestFetchStats:
    def test_unreachable_endpoint_raises_unavailable(self):
        port = _free_port()  # bound then released: nothing listens here
        with pytest.raises(ServiceUnavailableError):
            fetch_stats(f"remote://127.0.0.1:{port}", timeout=0.5)

    def test_wire_mismatch_surfaces_as_protocol_error(self, tmp_path, monkeypatch):
        # The sidecar's hello gate compares against the *service* wire
        # constant; skewing the one fetch_stats stamps into its hello
        # simulates attaching an old `top` build to a newer sidecar.
        srv = VerificationServer(journal_path=str(tmp_path / "service.jsonl"))
        with srv:
            host, port = srv.address
            monkeypatch.setattr(live_mod, "WIRE_VERSION", WIRE_VERSION + 1)
            with pytest.raises(ServiceProtocolError, match="wire version"):
                fetch_stats(f"remote://{host}:{port}")

    def test_works_against_a_full_sidecar(self, tmp_path):
        srv = VerificationServer(journal_path=str(tmp_path / "service.jsonl"))
        with srv:
            host, port = srv.address
            stats = fetch_stats(f"remote://{host}:{port}")
        assert stats["sessions"] == 1  # the introspection stub session
        assert "per_session" in stats


# ----------------------------------------------------------------------
# renderers (pure functions)
# ----------------------------------------------------------------------
def _procs_snapshot() -> dict:
    return {
        "run_id": "feedcafe",
        "kind": "procs",
        "workers": [
            {"index": 0, "alive": True, "pid": 101},
            {"index": 1, "alive": False, "pid": 102},
        ],
        "join_stats": {
            "local_joins": 10,
            "cross_joins": 4,
            "degraded_joins": 0,
            "escalation_ratio": 0.286,
        },
        "counters": {},
        "blocked": [
            {"process": "worker-1", "joiner": "t3", "joinee": "t9", "age": 2.5, "wakeups": 12},
            {"process": "parent", "joiner": "root", "joinee": "t1", "age": 0.5, "wakeups": 2},
        ],
        "metrics": {"counters": {'repro_runtime_forks_total{worker="0"}': 40}},
        "sidecar": "remote://127.0.0.1:4242",
    }


class TestRenderers:
    def test_live_stats_procs_shape(self):
        text = render_live_stats(_procs_snapshot())
        assert "run feedcafe" in text
        assert "workers 1/2 alive" in text
        assert "sidecar remote://127.0.0.1:4242" in text
        assert "joins: local=10 cross=4 degraded=0 escalation=0.286" in text
        assert "blocked joins" in text
        # the merged registry renders through the snapshot renderer
        assert 'repro_runtime_forks_total{worker="0"}' in text

    def test_live_stats_sidecar_shape(self):
        text = render_live_stats(
            {
                "sessions": 2,
                "accepted": 5,
                "per_session": {
                    "procs-1": {"checks": 3, "inbox": {"depth": 0}},
                },
            }
        )
        assert "sidecar — sessions 2 accepted 5" in text
        assert "procs-1" in text
        assert "checks=3" in text
        assert "inbox" not in text  # nested structures stay off the row

    def test_fleet_blocked_orders_by_age_descending(self):
        text = render_fleet_blocked(_procs_snapshot()["blocked"])
        lines = text.splitlines()
        assert lines[0] == "blocked joins"
        assert lines[2].split()[0] == "worker-1"  # oldest wait first
        assert lines[3].split()[0] == "parent"
        assert render_fleet_blocked([]) == "blocked joins: none"

    def test_predictions_three_shapes(self):
        skipped = types.SimpleNamespace(skipped="journal had no forks")
        assert "skipped (journal had no forks)" in render_predictions(skipped)
        empty = types.SimpleNamespace(skipped=None, predictions=[])
        assert render_predictions(empty) == "predicted deadlocks: none"
        pred = types.SimpleNamespace(
            cycle=("a", "b"), verdicts={"TJ-SP": "deadlock", "KJ": "ok"}
        )
        report = types.SimpleNamespace(skipped=None, predictions=[pred])
        text = render_predictions(report)
        assert "predicted deadlocks (1)" in text
        assert "a -> b -> a" in text
        assert "KJ=ok" in text and "TJ-SP=deadlock" in text
