"""Exporter round trips on real runs.

The acceptance bar for the tracing layer is concrete: a run produces a
Chrome-trace / Perfetto JSON whose spans nest correctly — ``fork``
inside the parent's ``run``, ``block`` inside the joiner's ``run``, the
``wake`` instant inside the ``block`` window — and the journal bridge
reconstructs an equivalent timeline post-mortem from records alone.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import TaskRuntime
from repro import obs
from repro.tools.journal import TraceJournal, read_journal
from repro.tools.trace_export import (
    journal_to_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _blocking_program(rt):
    """main forks a sleeping child and joins it: fork, run, block, wake."""

    def child():
        time.sleep(0.03)
        return 7

    def main():
        return rt.fork(child).join()

    return main


@pytest.fixture
def traced_run():
    with obs.enabled() as session:
        rt = TaskRuntime(policy="TJ-SP")
        assert rt.run(_blocking_program(rt)) == 7
        doc = session.to_chrome_trace()
    return doc


class TestLiveTraceExport:
    def test_trace_validates(self, traced_run):
        assert validate_chrome_trace(traced_run) == []

    def test_fork_run_block_wake_all_present(self, traced_run):
        names = {e["name"] for e in traced_run["traceEvents"]}
        assert {"fork", "run", "block", "wake"} <= names

    def test_block_nests_inside_the_joiners_run_span(self, traced_run):
        events = traced_run["traceEvents"]
        block = next(e for e in events if e["name"] == "block")
        run = next(
            e
            for e in events
            if e["name"] == "run" and e["tid"] == block["tid"] and e["ph"] == "X"
        )
        assert run["ts"] <= block["ts"]
        assert block["ts"] + block["dur"] <= run["ts"] + run["dur"] + 1e-6

    def test_wake_lands_inside_the_block_window(self, traced_run):
        events = traced_run["traceEvents"]
        block = next(e for e in events if e["name"] == "block")
        wake = next(e for e in events if e["name"] == "wake")
        assert block["ts"] - 1e-6 <= wake["ts"] <= block["ts"] + block["dur"] + 1e-6

    def test_fork_names_both_sides(self, traced_run):
        fork = next(e for e in traced_run["traceEvents"] if e["name"] == "fork")
        assert "child" in fork["args"] and "parent" in fork["args"]

    def test_block_duration_reflects_the_sleep(self, traced_run):
        block = next(e for e in traced_run["traceEvents"] if e["name"] == "block")
        assert block["dur"] >= 0.02 * 1e6 * 0.5  # µs; generous jitter margin

    def test_write_chrome_trace_round_trips(self, traced_run, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(traced_run, path)
        with open(path) as fh:
            loaded = json.load(fh)
        assert validate_chrome_trace(loaded) == []
        assert loaded == traced_run

    def test_write_rejects_sessions_without_tracing(self, tmp_path):
        with obs.enabled(tracing=False) as session:
            with pytest.raises(ValueError, match="disabled"):
                write_chrome_trace(session, str(tmp_path / "x.json"))

    def test_write_rejects_untraceable_objects(self, tmp_path):
        with pytest.raises(TypeError):
            write_chrome_trace(42, str(tmp_path / "x.json"))


class TestJournalBridge:
    def test_journal_to_trace_validates_and_shows_the_block(self, tmp_path):
        path = str(tmp_path / "run.journal")
        journal = TraceJournal(path, timestamps=True)
        rt = TaskRuntime(policy="TJ-SP", journal=journal)
        assert rt.run(_blocking_program(rt)) == 7
        journal.close()
        doc = journal_to_trace(path)
        assert validate_chrome_trace(doc) == []
        blocks = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"].startswith("blocked on")
        ]
        assert blocks, "the blocking join must appear as a duration span"
        # timestamps were journalled: the span is real time, not seq ticks
        assert blocks[0]["dur"] >= 0.02 * 1e6 * 0.5

    def test_tracks_are_named_after_journal_task_ids(self, tmp_path):
        path = str(tmp_path / "run.journal")
        rt = TaskRuntime(policy="TJ-SP", journal=path)
        assert rt.run(_blocking_program(rt)) == 7
        doc = journal_to_trace(path)
        names = {
            e["args"]["name"] for e in doc["traceEvents"] if e["ph"] == "M"
        }
        assert "journal" in names  # control track
        assert any(n.startswith("task t") for n in names)

    def test_complete_records_land_as_lifecycle_instants(self, tmp_path):
        path = str(tmp_path / "hand.journal")
        journal = TraceJournal(path, timestamps=True)
        a, b = object(), object()
        journal.log_init(a)  # interned as t0
        journal.log_fork(a, b)  # b interned as t1
        journal.log_complete(b, ok=True)
        journal.log_complete(a, ok=False)
        journal.close()
        doc = journal_to_trace(path)
        assert validate_chrome_trace(doc) == []
        life = [e for e in doc["traceEvents"] if e.get("cat") == "lifecycle"]
        assert [e["name"] for e in life] == ["complete", "failed"]
        # each instant sits on the finishing task's own track (tN -> N+1)
        assert [e["tid"] for e in life] == [2, 1]
        # the journalled ns timestamp drives placement, not the seq clock
        by_task = {r["task"]: r for r in read_journal(path).records if r["kind"] == "complete"}
        for ev in life:
            assert ev["ts"] == by_task[ev["args"]["task"]]["ts"] / 1000.0

    def test_a_real_runs_completions_close_every_task_track(self, tmp_path):
        path = str(tmp_path / "run.journal")
        rt = TaskRuntime(policy="TJ-SP", journal=path)
        assert rt.run(_blocking_program(rt)) == 7
        doc = journal_to_trace(path)
        assert validate_chrome_trace(doc) == []
        completes = [e for e in doc["traceEvents"] if e.get("cat") == "lifecycle"]
        # forked tasks complete through the worker loop and are
        # journalled; the root returns straight through run()
        assert len(completes) >= 1
        assert {e["name"] for e in completes} == {"complete"}
        assert all(e["args"]["ok"] for e in completes)
        assert {e["args"]["task"] for e in completes} >= {"t1"}

    def test_predictions_overlay_draws_counterfactual_instants(self, tmp_path):
        path = str(tmp_path / "run.journal")
        rt = TaskRuntime(policy="TJ-SP", journal=path)
        assert rt.run(_blocking_program(rt)) == 7
        doc = journal_to_trace(path, predictions=[("t0", "t1")])
        assert validate_chrome_trace(doc) == []
        preds = [
            e for e in doc["traceEvents"] if e["name"] == "predicted_deadlock"
        ]
        assert len(preds) == 2  # one per member task's track
        assert {e["tid"] for e in preds} == {1, 2}
        for ev in preds:
            assert ev["args"]["cycle"] == "t0 -> t1 -> t0"
            assert ev["args"]["counterfactual"] is True
        # counterfactual: drawn at the journal's end, after every event
        end = max(e["ts"] for e in doc["traceEvents"] if "ts" in e)
        assert all(e["ts"] == end for e in preds)

    def test_seq_fallback_without_timestamps_still_validates(self, tmp_path):
        path = str(tmp_path / "run.journal")
        rt = TaskRuntime(policy="TJ-SP", journal=path)  # timestamps off
        assert rt.run(_blocking_program(rt)) == 7
        records = read_journal(path).records
        assert all("ts" not in r for r in records)
        doc = journal_to_trace(path)
        assert validate_chrome_trace(doc) == []


class TestMetricsOfARealRun:
    def test_run_populates_the_expected_instruments(self):
        with obs.enabled(tracing=False) as session:
            rt = TaskRuntime(policy="TJ-SP")
            assert rt.run(_blocking_program(rt)) == 7
            snap = session.snapshot()
        assert snap["histograms"]["repro_runtime_fork_ns"]["count"] >= 1
        assert snap["histograms"]["repro_runtime_blocked_wait_ns"]["count"] >= 1
        assert snap["counters"]["repro_runtime_blocked_waits_total"] >= 1
        assert snap["sources"]["verifier"]["forks"] >= 1
        assert snap["sources"]["runtime"]["tasks_started"] >= 1

    def test_prometheus_text_of_a_real_run_parses(self):
        with obs.enabled(tracing=False) as session:
            rt = TaskRuntime(policy="TJ-SP")
            assert rt.run(_blocking_program(rt)) == 7
            text = session.to_prometheus()
        assert "# TYPE repro_runtime_fork_ns histogram" in text
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE ")
            else:
                key, value = line.rsplit(" ", 1)
                float(value)  # every sample line ends in a number
