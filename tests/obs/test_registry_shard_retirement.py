"""Dead-thread cell retirement for registry instruments.

PR 3 fixed the verifier's per-thread stats shards leaking one shard per
dead task thread; the registry's sharded instruments (counters, counter
groups, histograms) inherit the same discipline from ``_Sharded``:
cells owned by dead threads fold into a retired accumulator both on
read *and* on new-cell registration, so thread-per-task churn cannot
grow the cell list even in a process that never reads its metrics.
These tests mirror ``tests/core/test_sharded_stats.py``.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import Counter, CounterGroup, Histogram

INSTRUMENTS = {
    "counter": lambda: Counter("churn_total"),
    "group": lambda: CounterGroup(("events",)),
    "histogram": lambda: Histogram("churn_ns"),
}


def _bump(inst) -> None:
    if isinstance(inst, Histogram):
        inst.observe(500)
    elif isinstance(inst, Counter):
        inst.inc()
    else:
        inst.cell().events += 1


def _total(inst) -> int:
    if isinstance(inst, Histogram):
        return inst.snapshot()["count"]
    if isinstance(inst, Counter):
        return inst.value
    return inst.totals()["events"]


@pytest.mark.parametrize("kind", sorted(INSTRUMENTS))
class TestCellRetirement:
    def test_cell_list_stays_bounded_under_thread_churn(self, kind):
        inst = INSTRUMENTS[kind]()
        for _ in range(100):
            t = threading.Thread(target=_bump, args=(inst,))
            t.start()
            t.join()
            _total(inst)  # reads fold dead cells as they go
        # every worker cell has been retired; at most the current
        # (main) thread's cell may remain live
        assert len(inst._cells) <= 1
        assert _total(inst) == 100

    def test_registration_also_folds(self, kind):
        """Folding happens at cell registration too, so a process that
        never snapshots its metrics still cannot leak cells."""
        inst = INSTRUMENTS[kind]()
        for _ in range(50):
            t = threading.Thread(target=_bump, args=(inst,))
            t.start()
            t.join()
        # no read in the loop: each new registration pruned the dead
        assert len(inst._cells) <= 2  # last dead cell + (maybe) main's
        assert _total(inst) == 50

    def test_folding_is_exact_under_churn_and_concurrency(self, kind):
        """Retirement must not lose or double-count a single event, even
        with reads interleaved with waves of short-lived writers."""
        inst = INSTRUMENTS[kind]()
        waves, per_wave, bumps = 10, 6, 37

        def storm() -> None:
            for _ in range(bumps):
                _bump(inst)

        for _ in range(waves):
            threads = [threading.Thread(target=storm) for _ in range(per_wave)]
            for t in threads:
                t.start()
            _total(inst)  # concurrent read while writers live
            for t in threads:
                t.join()
        assert _total(inst) == waves * per_wave * bumps
        assert len(inst._cells) <= 1

    def test_counts_survive_thread_death(self, kind):
        inst = INSTRUMENTS[kind]()
        for _ in range(5):
            t = threading.Thread(target=_bump, args=(inst,))
            t.start()
            t.join()
        assert _total(inst) == 5


def test_histogram_sum_survives_retirement():
    h = Histogram("ns")
    for v in (100, 200, 300):
        t = threading.Thread(target=h.observe, args=(v,))
        t.start()
        t.join()
    snap = h.snapshot()
    assert snap["count"] == 3
    assert snap["sum"] == 600
    assert len(h._cells) <= 1
