"""Metrics-layer tests: exactness under concurrency, snapshots, exports.

The registry is the single stats mechanism for the whole stack, so the
properties pinned here — concurrent increments are never lost, snapshots
are immutable copies, the Prometheus rendering is cumulative and
well-formed — are what every other surface (verifier stats, Armus stats,
runtime counters) inherits.
"""

from __future__ import annotations

import gc
import json
import threading

from repro.obs.metrics import (
    NS_BUCKETS,
    Counter,
    CounterGroup,
    Gauge,
    Histogram,
    MetricsRegistry,
)

THREADS = 16
PER_THREAD = 2_000


def _hammer(n_threads, fn):
    barrier = threading.Barrier(n_threads)

    def body(i):
        barrier.wait()
        fn(i)

    workers = [threading.Thread(target=body, args=(i,)) for i in range(n_threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()


class TestConcurrentExactness:
    def test_counter_increments_are_never_lost(self):
        c = Counter("reqs")
        _hammer(THREADS, lambda i: [c.inc() for _ in range(PER_THREAD)])
        assert c.value == THREADS * PER_THREAD

    def test_counter_group_cell_increments_are_exact(self):
        g = CounterGroup(("forks", "joins"))

        def body(i):
            cell = g.cell()
            for _ in range(PER_THREAD):
                cell.forks += 1
                if i % 2 == 0:
                    cell.joins += 1

        _hammer(THREADS, body)
        totals = g.totals()
        assert totals["forks"] == THREADS * PER_THREAD
        assert totals["joins"] == (THREADS // 2) * PER_THREAD

    def test_histogram_observation_count_is_exact(self):
        h = Histogram("lat_ns")

        def body(i):
            for k in range(PER_THREAD):
                h.observe(250 * (k % 7))

        _hammer(THREADS, body)
        snap = h.snapshot()
        assert snap["count"] == THREADS * PER_THREAD
        assert snap["sum"] == THREADS * sum(250 * (k % 7) for k in range(PER_THREAD))

    def test_reads_interleaved_with_writes_stay_monotone(self):
        c = Counter("monotone")
        stop = threading.Event()
        seen = []

        def reader():
            while not stop.is_set():
                seen.append(c.value)

        r = threading.Thread(target=reader)
        r.start()
        _hammer(8, lambda i: [c.inc() for _ in range(500)])
        stop.set()
        r.join()
        assert c.value == 8 * 500
        assert all(a <= b for a, b in zip(seen, seen[1:]))


class TestBucketSemantics:
    def test_observation_lands_in_first_bucket_le_bound(self):
        h = Histogram("h", buckets=(10, 100, 1000))
        for v in (5, 10, 11, 100, 101, 5000):
            h.observe(v)
        snap = h.snapshot()
        assert snap["buckets"] == [10, 100, 1000]
        # <=10: {5, 10}; <=100: {11, 100}; <=1000: {101}; +Inf: {5000}
        assert snap["counts"] == [2, 2, 1, 1]
        assert snap["sum"] == 5 + 10 + 11 + 100 + 101 + 5000

    def test_default_buckets_are_sorted(self):
        assert list(NS_BUCKETS) == sorted(NS_BUCKETS)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.value == 13

    def test_callable_backed(self):
        box = {"v": 3}
        g = Gauge("live", fn=lambda: box["v"])
        assert g.value == 3
        box["v"] = 7
        assert g.value == 7


class TestRegistry:
    def test_same_name_and_labels_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x", labels={"policy": "TJ"})
        b = reg.counter("x", labels={"policy": "TJ"})
        c = reg.counter("x", labels={"policy": "KJ"})
        assert a is b
        assert a is not c

    def test_snapshot_is_an_immutable_copy(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        h = reg.histogram("h", buckets=(10,))
        h.observe(5)
        snap = reg.snapshot()
        snap["counters"]["c"] = 999
        snap["histograms"]["h"]["counts"][0] = 999
        fresh = reg.snapshot()
        assert fresh["counters"]["c"] == 3
        assert fresh["histograms"]["h"]["counts"][0] == 1

    def test_snapshot_round_trips_through_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1234)
        reg.gauge("g").set(2.5)
        doc = json.loads(reg.to_json())
        assert doc["counters"]["c"] == 1
        assert doc["gauges"]["g"] == 2.5
        assert doc["histograms"]["h"]["count"] == 1

    def test_same_prefix_sources_are_summed(self):
        reg = MetricsRegistry()
        reg.add_source("verifier", lambda: {"forks": 2, "joins_checked": 1})
        reg.add_source("verifier", lambda: {"forks": 3})
        snap = reg.snapshot()
        assert snap["sources"]["verifier"] == {"forks": 5, "joins_checked": 1}

    def test_bound_method_sources_do_not_pin_their_owner(self):
        class Stats:
            def snapshot(self):
                return {"n": 1}

        reg = MetricsRegistry()
        owner = Stats()
        reg.add_source("stats", owner.snapshot)
        assert reg.snapshot()["sources"]["stats"] == {"n": 1}
        del owner
        gc.collect()
        assert "stats" not in reg.snapshot()["sources"]


def _parse_prometheus(text):
    """Parse exposition text into {name{labels}: value} plus TYPE lines."""
    samples, types = {}, {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split()
            types[name] = kind
            continue
        key, value = line.rsplit(" ", 1)
        samples[key] = float(value)
    return samples, types


class TestPrometheusRendering:
    def test_counters_gauges_and_histograms_render(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", labels={"policy": "TJ"}).inc(4)
        reg.gauge("depth").set(2)
        h = reg.histogram("lat_ns", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        samples, types = _parse_prometheus(reg.to_prometheus())
        assert types["reqs_total"] == "counter"
        assert types["depth"] == "gauge"
        assert types["lat_ns"] == "histogram"
        assert samples['reqs_total{policy="TJ"}'] == 4
        assert samples["depth"] == 2
        # cumulative le buckets, +Inf equals _count
        assert samples['lat_ns_bucket{le="10"}'] == 1
        assert samples['lat_ns_bucket{le="100"}'] == 2
        assert samples['lat_ns_bucket{le="+Inf"}'] == 3
        assert samples["lat_ns_count"] == 3
        assert samples["lat_ns_sum"] == 555

    def test_le_label_merges_with_existing_labels(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(10,), labels={"policy": "TJ"}).observe(1)
        samples, _ = _parse_prometheus(reg.to_prometheus())
        assert samples['h_bucket{le="10",policy="TJ"}'] == 1

    def test_source_fields_export_as_prefixed_gauges(self):
        reg = MetricsRegistry()
        reg.add_source("verifier", lambda: {"forks": 9})
        samples, types = _parse_prometheus(reg.to_prometheus())
        assert samples["verifier_forks"] == 9
        assert types["verifier_forks"] == "gauge"
