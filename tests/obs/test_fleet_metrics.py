"""Fleet metrics aggregation: labelled snapshots, exact merges, and the
process-level retired fold under worker churn.

The unit half exercises the snapshot algebra directly —
``label_snapshot`` / ``merge_snapshots`` / ``snapshot_to_prometheus``
including the dead-worker fold rule (retired accumulator + replacement
series with the same name must sum).  The integration half runs real
:class:`~repro.runtime.procs.ProcessRuntime` pools and asserts the
merged fleet totals equal per-worker ground truth exactly — both on a
clean run (final stats pushes drain before the collector exits) and
across a SIGKILL of an *idle* worker, where the retired fold is the only
thing keeping the dead worker's counts in the totals.

Dispatched bodies are module-level (they cross a process boundary).
"""

from __future__ import annotations

import os
import signal
import time

from repro import obs
from repro.obs.metrics import (
    MetricsRegistry,
    label_snapshot,
    merge_snapshots,
    snapshot_to_prometheus,
)
from repro.runtime import ProcessRuntime


# ----------------------------------------------------------------------
# snapshot algebra
# ----------------------------------------------------------------------
def _worker_snap(forks: int, tasks: int) -> dict:
    reg = MetricsRegistry()
    c = reg.counter("repro_test_forks_total")
    for _ in range(forks):
        c.inc()
    h = reg.histogram("repro_test_ns")
    for _ in range(tasks):
        h.observe(500)
    reg.add_source("runtime", lambda: {"tasks_started": tasks})
    return reg.snapshot()


class TestSnapshotAlgebra:
    def test_label_snapshot_stamps_every_series_kind(self):
        snap = label_snapshot(_worker_snap(3, 2), worker="7")
        assert snap["counters"]['repro_test_forks_total{worker="7"}'] == 3
        assert snap["histograms"]['repro_test_ns{worker="7"}']["count"] == 2
        assert snap["sources"]['runtime{worker="7"}'] == {"tasks_started": 2}

    def test_labels_merge_with_existing_ones(self):
        reg = MetricsRegistry()
        reg.counter("checks_total", labels={"policy": "TJ-SP"}).inc()
        snap = label_snapshot(reg.snapshot(), worker="1")
        (name,) = snap["counters"]
        assert 'policy="TJ-SP"' in name and 'worker="1"' in name

    def test_merge_is_exact_across_distinct_workers(self):
        parts = [
            label_snapshot(_worker_snap(5, 4), worker="0"),
            label_snapshot(_worker_snap(7, 2), worker="1"),
        ]
        merged = merge_snapshots(parts)
        assert merged["counters"]['repro_test_forks_total{worker="0"}'] == 5
        assert merged["counters"]['repro_test_forks_total{worker="1"}'] == 7
        total = sum(
            h["count"] for n, h in merged["histograms"].items() if "repro_test_ns" in n
        )
        assert total == 6

    def test_retired_fold_sums_same_name_series(self):
        # The procs fold rule in miniature: a dead worker's last snapshot
        # (the retired accumulator) and its replacement push the same
        # worker="0" series names; the merge must sum them, not replace.
        retired = label_snapshot(_worker_snap(5, 4), worker="0")
        replacement = label_snapshot(_worker_snap(3, 2), worker="0")
        merged = merge_snapshots([retired, replacement])
        assert merged["counters"]['repro_test_forks_total{worker="0"}'] == 8
        assert merged["histograms"]['repro_test_ns{worker="0"}']["count"] == 6
        assert merged["sources"]['runtime{worker="0"}']["tasks_started"] == 6

    def test_merged_snapshot_renders_as_prometheus(self):
        merged = merge_snapshots(
            [
                label_snapshot(_worker_snap(2, 1), worker="0"),
                label_snapshot(_worker_snap(4, 1), process="parent"),
            ]
        )
        text = snapshot_to_prometheus(merged)
        assert 'repro_test_forks_total{worker="0"} 2' in text
        assert 'repro_test_forks_total{process="parent"} 4' in text
        # one TYPE line per family, not per labelled series
        assert text.count("# TYPE repro_test_forks_total counter") == 1


# ----------------------------------------------------------------------
# dispatched bodies
# ----------------------------------------------------------------------
def square(x):
    return x * x


def subtree(rt, base, fanout):
    futs = [rt.fork(square, base + i) for i in range(fanout)]
    return sum(rt.join_batch(futs))


def _worker_tasks_started(fleet: dict) -> int:
    return sum(
        fields.get("tasks_started", 0)
        for name, fields in fleet.get("sources", {}).items()
        if name.startswith("runtime{") and 'worker="' in name
    )


def _worker_fork_count(fleet: dict) -> int:
    return sum(
        h["count"]
        for name, h in fleet.get("histograms", {}).items()
        if name.startswith("repro_runtime_fork_ns{") and 'worker="' in name
    )


# ----------------------------------------------------------------------
# real fleets
# ----------------------------------------------------------------------
class TestFleetExactness:
    def test_merged_totals_match_ground_truth_on_a_clean_run(self):
        fanout, dispatches = 5, 8
        with obs.enabled():
            rt = ProcessRuntime(workers=2, seg0=64, stripe=16)

            def root():
                futs = [rt.fork(subtree, 10 * t, fanout) for t in range(dispatches)]
                return rt.join_batch(futs)

            totals = rt.run(root)
            fleet = rt.fleet_metrics()
        assert totals == [
            sum((10 * t + i) ** 2 for i in range(fanout)) for t in range(dispatches)
        ]
        # Ground truth: each dispatched subtree forks exactly fanout
        # leaves through its worker's engine (the dispatched body itself
        # rides the dispatch path, not an engine fork).  The workers'
        # final pushes drain before the collector exits, so the merged
        # fleet totals are exact, not approximate.
        assert _worker_tasks_started(fleet) == dispatches * fanout
        assert _worker_fork_count(fleet) == dispatches * fanout
        # parent series are labelled too
        assert 'runtime{process="parent"}' in fleet["sources"]

    def test_totals_stay_exact_across_a_sigkilled_worker(self):
        """Kill an idle worker between two dispatch waves: its wave-1
        counts were pushed, so the retired fold must keep the merged
        totals exact — nothing lost, nothing double-counted."""
        fanout, wave = 5, 4
        with obs.enabled():
            rt = ProcessRuntime(workers=2, seg0=64, stripe=16)

            def root():
                futs = [rt.fork(subtree, 10 * t, fanout) for t in range(wave)]
                first = rt.join_batch(futs)
                # Wait for both workers' idle pushes to land the full
                # wave-1 ground truth in the parent's fleet view.
                deadline = time.monotonic() + 15.0
                while _worker_tasks_started(rt.fleet_metrics()) < wave * fanout:
                    assert time.monotonic() < deadline, "wave-1 pushes never landed"
                    time.sleep(0.05)
                victim = rt._workers[0].proc
                os.kill(victim.pid, signal.SIGKILL)
                while rt.worker_deaths == 0:
                    assert time.monotonic() < deadline, "death never detected"
                    time.sleep(0.05)
                futs = [rt.fork(subtree, 1000 * t, fanout) for t in range(wave)]
                return first, rt.join_batch(futs)

            first, second = rt.run(root)
            fleet = rt.fleet_metrics()
            deaths = rt.worker_deaths
            redispatched = rt.tasks_redispatched
        assert first == [
            sum((10 * t + i) ** 2 for i in range(fanout)) for t in range(wave)
        ]
        assert second == [
            sum((1000 * t + i) ** 2 for i in range(fanout)) for t in range(wave)
        ]
        assert deaths == 1
        assert redispatched == 0  # the victim was idle — nothing in flight
        # Exactness under churn: wave 1 (both workers, pushed before the
        # kill) + wave 2 (survivor only, pushed at graceful exit).
        assert _worker_tasks_started(fleet) == 2 * wave * fanout
        assert _worker_fork_count(fleet) == 2 * wave * fanout
        # The dead worker's series survive only through the retired fold.
        assert any('worker="0"' in name for name in fleet["sources"])
        killed_share = fleet["sources"]['runtime{worker="0"}']["tasks_started"]
        assert killed_share > 0
