"""Tracer tests: span nesting, parent links, ring-buffer bounds, export."""

from __future__ import annotations

import threading

from repro.obs.tracing import Tracer, current_span
from repro.tools.trace_export import validate_chrome_trace


class TestSpans:
    def test_nested_spans_record_parent_ids(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                pass
        events = tr.snapshot()
        assert [e[1] for e in events] == ["inner", "outer"]  # inner ends first
        inner_ev, outer_ev = events
        assert inner_ev[6]["span_id"] == inner.id
        assert inner_ev[6]["parent"] == outer.id
        assert "parent" not in outer_ev[6]

    def test_explicit_begin_end_matches_context_manager(self):
        tr = Tracer()
        handle = tr.begin_span("work")
        assert current_span() is handle[0]
        tr.end_span(handle, args={"task": "t1"})
        assert current_span() is None
        (ev,) = tr.snapshot()
        ph, name, cat, ts, dur, tid, args = ev
        assert (ph, name) == ("X", "work")
        assert dur >= 0
        assert args["task"] == "t1"
        assert args["span_id"] == handle[0].id

    def test_instants_inherit_the_ambient_span(self):
        tr = Tracer()
        with tr.span("run") as ctx:
            tr.instant("wake", cat="join", args={"task": "t0"})
        wake = tr.snapshot()[0]
        assert wake[0] == "i"
        assert wake[6]["parent"] == ctx.id

    def test_instant_outside_any_span_has_no_parent(self):
        tr = Tracer()
        tr.instant("lonely")
        assert tr.snapshot()[0][6] is None

    def test_ambient_span_is_per_thread(self):
        """contextvars isolate the ambient span between threads."""
        tr = Tracer()
        observed = {}

        def other():
            observed["span"] = current_span()
            tr.instant("elsewhere")

        with tr.span("main-span"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert observed["span"] is None
        instant = next(e for e in tr.snapshot() if e[0] == "i")
        assert instant[6] is None  # no parent leaked across threads


class TestRingBuffer:
    def test_capacity_bounds_the_buffer_and_counts_drops(self):
        tr = Tracer(capacity=16)
        for i in range(100):
            tr.instant(f"e{i}")
        assert len(tr) == 16
        assert tr.dropped_events == 84
        # oldest fell off the head: the survivors are the newest 16
        names = [e[1] for e in tr.snapshot()]
        assert names == [f"e{i}" for i in range(84, 100)]

    def test_no_drops_below_capacity(self):
        tr = Tracer(capacity=64)
        for i in range(10):
            tr.instant(f"e{i}")
        assert tr.dropped_events == 0


class TestChromeExport:
    def test_export_is_structurally_valid(self):
        tr = Tracer()
        with tr.span("run", cat="task"):
            tr.instant("wake", cat="join")
            with tr.span("block", cat="join"):
                pass
        doc = tr.to_chrome_trace()
        assert validate_chrome_trace(doc) == []
        assert doc["displayTimeUnit"] == "ms"

    def test_thread_metadata_and_microsecond_timestamps(self):
        tr = Tracer()
        with tr.span("s"):
            pass
        doc = tr.to_chrome_trace()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta and meta[0]["name"] == "thread_name"
        assert meta[0]["tid"] == threading.get_ident()
        span = next(e for e in doc["traceEvents"] if e["ph"] == "X")
        assert span["ts"] >= 0  # relative to tracer birth
        assert span["dur"] >= 0

    def test_nested_spans_nest_by_duration_containment(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        doc = tr.to_chrome_trace()
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        o, i = spans["outer"], spans["inner"]
        assert o["ts"] <= i["ts"]
        assert i["ts"] + i["dur"] <= o["ts"] + o["dur"]
        assert validate_chrome_trace(doc) == []


class TestValidator:
    """The validator must actually reject malformed traces, or the
    end-to-end checks built on it prove nothing."""

    def test_rejects_missing_required_keys(self):
        doc = {"traceEvents": [{"ph": "X", "ts": 0, "dur": 1}]}
        problems = validate_chrome_trace(doc)
        assert any("missing 'name'" in p for p in problems)

    def test_rejects_negative_duration(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "bad", "pid": 1, "tid": 1, "ts": 0, "dur": -5}
            ]
        }
        assert any("bad dur" in p for p in validate_chrome_trace(doc))

    def test_rejects_partially_overlapping_spans(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0, "dur": 10},
                {"ph": "X", "name": "b", "pid": 1, "tid": 1, "ts": 5, "dur": 10},
            ]
        }
        assert any("partially overlaps" in p for p in validate_chrome_trace(doc))

    def test_accepts_disjoint_and_nested_spans(self):
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0, "dur": 10},
                {"ph": "X", "name": "b", "pid": 1, "tid": 1, "ts": 2, "dur": 3},
                {"ph": "X", "name": "c", "pid": 1, "tid": 1, "ts": 20, "dur": 10},
            ]
        }
        assert validate_chrome_trace(doc) == []

    def test_rejects_instant_without_scope(self):
        doc = {"traceEvents": [{"ph": "i", "name": "e", "pid": 1, "tid": 1, "ts": 0}]}
        assert any("scope" in p for p in validate_chrome_trace(doc))

    def test_accepts_paired_cross_process_flows(self):
        doc = {
            "traceEvents": [
                {"ph": "s", "name": "dispatch", "cat": "d", "pid": 1, "tid": 1, "ts": 0, "id": "tr:1"},
                {"ph": "f", "name": "dispatch", "cat": "d", "pid": 2, "tid": 1, "ts": 5, "id": "tr:1", "bp": "e"},
            ]
        }
        assert validate_chrome_trace(doc) == []

    def test_rejects_flow_finish_without_a_start(self):
        doc = {
            "traceEvents": [
                {"ph": "f", "name": "dispatch", "pid": 2, "tid": 1, "ts": 5, "id": "tr:9"}
            ]
        }
        assert any("has no start" in p for p in validate_chrome_trace(doc))

    def test_dangling_flow_start_is_tolerated(self):
        # the receiving process may have dropped its ring under pressure
        doc = {
            "traceEvents": [
                {"ph": "s", "name": "dispatch", "pid": 1, "tid": 1, "ts": 0, "id": "tr:2"}
            ]
        }
        assert validate_chrome_trace(doc) == []

    def test_rejects_flow_without_id_or_with_duration(self):
        doc = {
            "traceEvents": [
                {"ph": "s", "name": "a", "pid": 1, "tid": 1, "ts": 0},
                {"ph": "s", "name": "b", "pid": 1, "tid": 1, "ts": 0, "id": "x", "dur": 3},
                {"ph": "f", "name": "b", "pid": 2, "tid": 1, "ts": 1, "id": "x"},
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("without id" in p for p in problems)
        assert any("with dur" in p for p in problems)

    def test_rejects_non_integer_pid_or_tid(self):
        # Perfetto merges tracks by identity: tid 7 and tid "7" silently
        # split one thread into two tracks, so the validator refuses.
        doc = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": "1", "tid": 7.5, "ts": 0, "dur": 1}
            ]
        }
        problems = validate_chrome_trace(doc)
        assert any("non-integer pid" in p for p in problems)
        assert any("non-integer tid" in p for p in problems)
