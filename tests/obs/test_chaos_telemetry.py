"""Chaos programs under full telemetry: observation must not perturb.

Re-runs a slice of the chaos suite with an active telemetry session
(metrics + tracing) and asserts the supervised-runtime invariants all
still hold — instrumentation that took a lock on the wrong path or
resurrected a dead reference would surface here — and that the session
actually observed the run (events recorded, trace structurally valid).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.testing import FaultPlan, run_chaos_program
from repro.tools.trace_export import validate_chrome_trace

RUNTIMES = ["threaded", "pool"]


@pytest.mark.parametrize("runtime", RUNTIMES)
@pytest.mark.parametrize("policy", ["TJ-SP", "KJ-CC", "none"])
def test_invariants_hold_under_full_telemetry(policy, runtime):
    for seed in range(4):
        with obs.enabled() as session:
            result = run_chaos_program(
                seed,
                policy=policy,
                runtime=runtime,
                max_tasks=8,
                crash_rate=0.15,
                plan=FaultPlan(seed=seed, delay_rate=0.25, max_delay=0.002),
            )
            assert result.violations == []
            trace = session.to_chrome_trace()
        assert validate_chrome_trace(trace) == []


@pytest.mark.parametrize("runtime", RUNTIMES)
def test_telemetry_actually_observes_the_chaos_run(runtime):
    with obs.enabled() as session:
        result = run_chaos_program(
            7,
            policy="TJ-SP",
            runtime=runtime,
            max_tasks=8,
            crash_rate=0.0,
            plan=FaultPlan(seed=7, delay_rate=0.3, max_delay=0.002),
        )
        assert result.violations == []
        snap = session.snapshot()
    assert snap["histograms"]["repro_runtime_fork_ns"]["count"] >= 1
    assert snap["sources"]["verifier"]["forks"] >= 1
    assert len(session.tracer) > 0


def test_verdict_stream_identical_with_and_without_telemetry():
    """Telemetry is an observer: it must not change a single verdict."""
    plan = FaultPlan(seed=3, delay_rate=0.4, max_delay=0.002)
    bare = run_chaos_program(3, policy="TJ-SP", runtime="threaded", plan=plan)
    with obs.enabled():
        observed = run_chaos_program(3, policy="TJ-SP", runtime="threaded", plan=plan)
    assert bare.verdicts == observed.verdicts
    assert bare.violations == observed.violations == []
