"""Small-scope exhaustive verification of the paper's theorems."""

from repro.formal.actions import Fork, Init, Join
from repro.formal.exhaustive import (
    check_decision_procedure,
    check_maximality,
    check_soundness,
    check_subsumption,
    check_total_order,
    enumerate_traces,
)


class TestEnumeration:
    def test_counts_for_tiny_scope(self):
        # 1 task, no joins: just the init trace
        assert sum(1 for _ in enumerate_traces(1, 0)) == 1
        # 2 tasks, no joins: init, and init+fork
        assert sum(1 for _ in enumerate_traces(2, 0)) == 2
        # 2 tasks, 1 join: adds init+fork+join(a,b) and +join(b,a),
        # plus join-less prefixes
        assert sum(1 for _ in enumerate_traces(2, 1)) == 4

    def test_canonical_naming(self):
        for trace in enumerate_traces(3, 0):
            forked = [a.child for a in trace if isinstance(a, Fork)]
            assert forked == [f"t{i}" for i in range(1, len(forked) + 1)]

    def test_all_traces_structurally_valid(self):
        from repro.formal.trace import is_structurally_valid

        for trace in enumerate_traces(3, 2):
            assert is_structurally_valid(trace)

    def test_prefix_closed(self):
        traces = {tuple(t) for t in enumerate_traces(3, 1)}
        for t in traces:
            if len(t) > 1:
                assert t[:-1] in traces


class TestTheoremsExhaustively:
    def test_theorem_311_soundness(self):
        report = check_soundness(max_tasks=4, max_joins=3)
        assert report.ok, report.counterexample
        assert report.traces == 25_600
        assert report.satisfying > 3000  # plenty of TJ-valid traces seen

    def test_theorem_311_soundness_wider_trees(self):
        report = check_soundness(max_tasks=5, max_joins=2)
        assert report.ok, report.counterexample
        assert report.traces == 29_200

    def test_corollary_44_subsumption(self):
        report = check_subsumption(max_tasks=4, max_joins=3)
        assert report.ok, report.counterexample
        assert report.satisfying > 2000

    def test_kj_valid_strictly_fewer(self):
        sound = check_soundness(max_tasks=4, max_joins=3)
        subs = check_subsumption(max_tasks=4, max_joins=3)
        assert subs.satisfying < sound.satisfying  # KJ-valid ⊊ TJ-valid

    def test_theorem_310_total_order(self):
        report = check_total_order(max_tasks=5)
        assert report.ok, report.counterexample
        assert report.traces == 34  # trees on <= 5 canonical nodes: 1+1+2+6+24

    def test_theorems_315_317_decision_procedure(self):
        report = check_decision_procedure(max_tasks=5)
        assert report.ok, report.counterexample

    def test_maximality(self):
        report = check_maximality(max_tasks=5)
        assert report.ok, report.counterexample
