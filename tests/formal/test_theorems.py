"""Property-based tests of the paper's lemmas and theorems.

Each test names the statement it checks.  These run on randomly generated
traces via hypothesis; together with the unit tests they constitute the
executable counterpart of Section 3 and Section 4.
"""

from hypothesis import given, settings

from repro.formal.actions import Join
from repro.formal.deadlock import contains_deadlock
from repro.formal.fork_tree import ForkTree
from repro.formal.kj_relation import KJKnowledge
from repro.formal.tj_relation import TJOrderOracle, derive_tj_pairs
from repro.formal.trace import is_kj_valid, is_tj_valid

from ..conftest import (
    fork_traces,
    kj_valid_traces,
    tj_valid_traces,
    traces_with_arbitrary_joins,
)


class TestLemma35Irreflexivity:
    @settings(max_examples=100)
    @given(fork_traces(max_tasks=15))
    def test_a_never_less_than_a(self, trace):
        pairs = derive_tj_pairs(trace)
        assert all(a != b for a, b in pairs)


class TestLemma38Transitivity:
    @settings(max_examples=80)
    @given(fork_traces(max_tasks=14))
    def test_less_is_transitive(self, trace):
        pairs = derive_tj_pairs(trace)
        for a, b in pairs:
            for b2, c in pairs:
                if b == b2:
                    assert (a, c) in pairs


class TestTheorem310TotalOrder:
    @settings(max_examples=100)
    @given(fork_traces(max_tasks=16))
    def test_trichotomy(self, trace):
        pairs = derive_tj_pairs(trace)
        tasks = TJOrderOracle.from_trace(trace).sorted_tasks()
        for a in tasks:
            for b in tasks:
                if a == b:
                    assert (a, b) not in pairs
                else:
                    assert ((a, b) in pairs) != ((b, a) in pairs)


class TestTheorem311DeadlockFreedom:
    @settings(max_examples=150)
    @given(tj_valid_traces())
    def test_tj_valid_traces_contain_no_deadlock(self, trace):
        assert is_tj_valid(trace)
        assert not contains_deadlock(trace)

    @settings(max_examples=150)
    @given(traces_with_arbitrary_joins())
    def test_deadlocking_traces_are_never_tj_valid(self, trace):
        """Contrapositive on arbitrary join patterns."""
        if contains_deadlock(trace):
            assert not is_tj_valid(trace)


class TestTheorem315317Preorder:
    @settings(max_examples=100)
    @given(fork_traces(max_tasks=25))
    def test_rule_relation_is_the_tree_preorder(self, trace):
        """t ⊢ a < b iff the lca+ decision procedure says a <_T b."""
        pairs = derive_tj_pairs(trace)
        tree = ForkTree.from_trace(trace)
        tasks = list(tree.tasks())
        for a in tasks:
            for b in tasks:
                assert tree.less(a, b) == ((a, b) in pairs)

    @settings(max_examples=100)
    @given(fork_traces(max_tasks=25))
    def test_corollary_316_uniqueness(self, trace):
        """There is at most one <_T: the preorder list is a permutation of
        the tasks fully determined by the fork tree."""
        tree = ForkTree.from_trace(trace)
        order = tree.preorder()
        assert sorted(map(str, order)) == sorted(map(str, tree.tasks()))
        # strictly sorted by less:
        assert all(tree.less(order[i], order[i + 1]) for i in range(len(order) - 1))


class TestTheorem43Subsumption:
    @settings(max_examples=120)
    @given(kj_valid_traces())
    def test_kj_knowledge_implies_tj_permission(self, trace):
        """If t is KJ-valid then a ≺ b implies a < b."""
        assert is_kj_valid(trace)
        knowledge = KJKnowledge.from_trace(trace)
        oracle = TJOrderOracle.from_trace(trace)
        for a in oracle.sorted_tasks():
            for b in knowledge.knowledge_of(a):
                assert oracle.less(a, b)

    @settings(max_examples=120)
    @given(kj_valid_traces())
    def test_corollary_44_kj_valid_is_tj_valid(self, trace):
        assert is_tj_valid(trace)

    def test_subsumption_is_strict(self):
        """Section 2.3: a TJ-valid trace that is not KJ-valid — the root
        joins a grandchild before joining the intervening child."""
        from repro.formal.actions import Fork, Init

        trace = [
            Init("main"),
            Fork("main", "child"),
            Fork("child", "grandchild"),
            Join("main", "grandchild"),
        ]
        assert is_tj_valid(trace)
        assert not is_kj_valid(trace)


class TestMaximality:
    """Section 4's closing remark: adding any pair to the TJ order admits
    a deadlock.  We check the trace-level content: for any two distinct
    tasks with b < a, there is a deadlocking completion that a policy
    permitting join(a, b) would accept."""

    @settings(max_examples=60)
    @given(fork_traces(min_tasks=2, max_tasks=10))
    def test_reverse_pair_completes_to_deadlock(self, trace):
        oracle = TJOrderOracle.from_trace(trace)
        tasks = oracle.sorted_tasks()
        # pick the extremes: a = minimum, b = maximum, so b < a fails
        a, b = tasks[0], tasks[-1]
        if a == b:
            return
        # join(a, b) is TJ-permitted; join(b, a) is not.  Allowing both
        # yields a cycle — the witness that the order cannot be extended.
        bad = list(trace) + [Join(a, b), Join(b, a)]
        assert contains_deadlock(bad)
