"""Experiment E4: the two example programs of Figure 1 as traces.

Left program: a forks b then d; b forks c; d joins b and then joins c.
Accepted by both KJ (d learns c by joining b first) and TJ.

Right program: same forks, then d forks e, and e joins c directly without
any intermediate join.  Accepted only by TJ (transitivity through b).
"""

from repro.formal.actions import Fork, Init, Join
from repro.formal.kj_relation import KJKnowledge
from repro.formal.tj_relation import derive_tj_pairs
from repro.formal.trace import is_kj_valid, is_tj_valid

FORKS = [
    Init("a"),
    Fork("a", "b"),
    Fork("b", "c"),
    Fork("a", "d"),
]

LEFT = FORKS + [Join("d", "b"), Join("d", "c")]
RIGHT = FORKS + [Fork("d", "e"), Join("e", "c")]


class TestFigure1Left:
    def test_kj_accepts(self):
        assert is_kj_valid(LEFT)

    def test_tj_accepts(self):
        assert is_tj_valid(LEFT)

    def test_tj_permits_second_join_even_without_first(self):
        """Rule III: d < c holds via b whether or not d joins b."""
        skipping_first_join = FORKS + [Join("d", "c")]
        assert is_tj_valid(skipping_first_join)
        assert not is_kj_valid(skipping_first_join)


class TestFigure1Right:
    def test_kj_rejects(self):
        assert not is_kj_valid(RIGHT)

    def test_tj_accepts(self):
        assert is_tj_valid(RIGHT)

    def test_e_inherits_permission_on_b_but_not_knowledge_of_c(self):
        k = KJKnowledge.from_trace(FORKS + [Fork("d", "e")])
        assert k.knows("e", "b")
        assert not k.knows("e", "c")

    def test_tj_permission_edges_of_the_figure(self):
        pairs = derive_tj_pairs(FORKS + [Fork("d", "e")])
        # every fork edge is a permission edge (rule I)
        for parent, child in [("a", "b"), ("b", "c"), ("a", "d"), ("d", "e")]:
            assert (parent, child) in pairs
        # inheritance (rule II): d and e may join b
        assert ("d", "b") in pairs and ("e", "b") in pairs
        # transitivity (rule III): d and e may join c
        assert ("d", "c") in pairs and ("e", "c") in pairs
        # and never the other way around
        assert ("c", "e") not in pairs and ("b", "d") not in pairs
