"""Executable Lemma 3.8: structural composition of TJ derivations."""

import pytest
from hypothesis import given, settings

from repro.formal.actions import Fork, Init
from repro.formal.derivations import check_derivation, derive
from repro.formal.tj_relation import TJOrderOracle
from repro.formal.transitivity import compose

from ..conftest import fork_traces


class TestComposeExamples:
    def test_grandparent_through_parent(self):
        trace = [Init("a"), Fork("a", "b"), Fork("b", "c")]
        d_ab = derive(trace, "a", "b")
        d_bc = derive(trace, "b", "c")
        d_ac = compose(trace, d_ab, d_bc)
        assert d_ac.conclusion == ("a", "c")
        assert check_derivation(trace, d_ac)

    def test_through_sibling_order(self):
        # a forks b then c then d: d < c < b
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c"), Fork("a", "d")]
        d_dc = derive(trace, "d", "c")
        d_cb = derive(trace, "c", "b")
        d_db = compose(trace, d_dc, d_cb)
        assert d_db.conclusion == ("d", "b")
        assert check_derivation(trace, d_db)

    def test_mixed_ancestor_and_sibling(self):
        trace = [
            Init("r"),
            Fork("r", "old"),
            Fork("old", "og"),
            Fork("r", "young"),
            Fork("young", "yg"),
        ]
        # yg < young < old (sibling), old < og (ancestor)
        d1 = compose(trace, derive(trace, "yg", "old"), derive(trace, "old", "og"))
        assert d1.conclusion == ("yg", "og")
        assert check_derivation(trace, d1)

    def test_non_chaining_inputs_rejected(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        with pytest.raises(ValueError, match="do not chain"):
            compose(trace, derive(trace, "a", "b"), derive(trace, "a", "c"))

    def test_composition_is_associative_in_validity(self):
        """(d1;d2);d3 and d1;(d2;d3) both check (trees may differ)."""
        trace = [Init("a"), Fork("a", "b"), Fork("b", "c"), Fork("c", "d")]
        d1 = derive(trace, "a", "b")
        d2 = derive(trace, "b", "c")
        d3 = derive(trace, "c", "d")
        left = compose(trace, compose(trace, d1, d2), d3)
        right = compose(trace, d1, compose(trace, d2, d3))
        assert left.conclusion == right.conclusion == ("a", "d")
        assert check_derivation(trace, left)
        assert check_derivation(trace, right)


class TestComposeProperty:
    @settings(max_examples=60, deadline=None)
    @given(trace=fork_traces(max_tasks=14))
    def test_every_adjacent_pair_composes(self, trace):
        """For all consecutive x < y < z in the total order, composing
        the two step derivations yields a checkable derivation of x < z
        — without ever calling derive on the composite pair."""
        order = TJOrderOracle.from_trace(trace).sorted_tasks()
        for i in range(len(order) - 2):
            x, y, z = order[i], order[i + 1], order[i + 2]
            d = compose(trace, derive(trace, x, y), derive(trace, y, z))
            assert d.conclusion == (x, z)
            assert check_derivation(trace, d), (x, y, z)

    @settings(max_examples=40, deadline=None)
    @given(trace=fork_traces(max_tasks=10))
    def test_arbitrary_chains_compose(self, trace):
        """Fold a whole chain x0 < x1 < ... < xk down to x0 < xk."""
        order = TJOrderOracle.from_trace(trace).sorted_tasks()
        if len(order) < 3:
            return
        acc = derive(trace, order[0], order[1])
        for i in range(1, len(order) - 1):
            step = derive(trace, order[i], order[i + 1])
            acc = compose(trace, acc, step)
            assert acc.conclusion == (order[0], order[i + 1])
            assert check_derivation(trace, acc)
