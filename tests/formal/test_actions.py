"""Unit tests for the action/trace datatypes and the textual format."""

import pytest

from repro.formal.actions import (
    Fork,
    Init,
    Join,
    format_trace,
    iter_forks,
    iter_joins,
    parse_trace,
)


class TestActionBasics:
    def test_init_tasks(self):
        assert Init("a").tasks() == ("a",)

    def test_fork_tasks(self):
        assert Fork("a", "b").tasks() == ("a", "b")

    def test_join_tasks(self):
        assert Join("a", "b").tasks() == ("a", "b")

    def test_actions_are_hashable_and_comparable(self):
        assert Fork("a", "b") == Fork("a", "b")
        assert Fork("a", "b") != Fork("b", "a")
        assert len({Init("a"), Init("a"), Join("a", "b")}) == 2

    def test_str_forms(self):
        assert str(Init("a")) == "init(a)"
        assert str(Fork("a", "b")) == "fork(a, b)"
        assert str(Join("x", "y")) == "join(x, y)"


class TestTraceFormat:
    def test_roundtrip(self):
        trace = [Init("a"), Fork("a", "b"), Join("a", "b")]
        assert parse_trace(format_trace(trace)) == trace

    def test_parse_ignores_comments_and_blanks(self):
        text = """
        # a comment
        init(a)

        fork(a, b)  # trailing comment
        join(a, b)
        """
        assert parse_trace(text) == [Init("a"), Fork("a", "b"), Join("a", "b")]

    @pytest.mark.parametrize(
        "bad", ["frk(a, b)", "init(a, b)", "fork(a)", "join a b", "fork(a, b"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_trace(bad)


class TestIterators:
    def test_iter_forks_and_joins(self):
        trace = [Init("a"), Fork("a", "b"), Join("a", "b"), Fork("b", "c")]
        assert list(iter_forks(trace)) == [Fork("a", "b"), Fork("b", "c")]
        assert list(iter_joins(trace)) == [Join("a", "b")]
