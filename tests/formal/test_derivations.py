"""Tests for explicit TJ derivation trees (proof objects)."""

import pytest
from hypothesis import given, settings

from repro.formal.actions import Fork, Init, Join
from repro.formal.derivations import (
    Derivation,
    TJLeft,
    TJMono,
    TJRight,
    check_derivation,
    derive,
)
from repro.formal.tj_relation import TJOrderOracle

from ..conftest import fork_traces

FIG1 = [
    Init("a"),
    Fork("a", "b"),
    Fork("b", "c"),
    Fork("a", "d"),
    Fork("d", "e"),
]


class TestDeriveExamples:
    def test_parent_child(self):
        trace = [Init("a"), Fork("a", "b")]
        d = derive(trace, "a", "b")
        assert isinstance(d, TJLeft)
        assert d.premise is None  # reflexive half of <=
        assert check_derivation(trace, d)

    def test_grandchild_uses_two_lefts(self):
        trace = [Init("a"), Fork("a", "b"), Fork("b", "c")]
        d = derive(trace, "a", "c")
        assert isinstance(d, TJLeft)
        assert isinstance(d.premise, TJLeft)
        assert check_derivation(trace, d)

    def test_sibling_uses_right(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        d = derive(trace, "c", "b")
        assert isinstance(d, (TJRight, TJMono))
        assert check_derivation(trace, d)

    def test_figure1_transitive_permission(self):
        """e < c in Figure 1 (right): the judgment KJ cannot make."""
        d = derive(FIG1, "e", "c")
        assert d is not None
        assert d.conclusion == ("e", "c")
        assert check_derivation(FIG1, d)

    def test_false_judgments_have_no_derivation(self):
        assert derive(FIG1, "b", "a") is None  # child on parent
        assert derive(FIG1, "b", "d") is None  # older sibling on younger
        assert derive(FIG1, "c", "e") is None
        assert derive(FIG1, "a", "a") is None  # irreflexive
        assert derive(FIG1, "a", "zz") is None  # unknown task

    def test_out_of_order_subtrees(self):
        """b's whole subtree forked before a's branch: the premise order
        in the sibling case must still respect fork positions."""
        trace = [
            Init("r"),
            Fork("r", "old"),
            Fork("old", "og1"),
            Fork("og1", "og2"),
            Fork("r", "young"),
            Fork("young", "yg"),
        ]
        for lo in ("young", "yg"):
            for hi in ("old", "og1", "og2"):
                d = derive(trace, lo, hi)
                assert d is not None, (lo, hi)
                assert check_derivation(trace, d), (lo, hi)

    def test_joins_do_not_disturb_derivations(self):
        trace = FIG1 + [Join("a", "b"), Join("d", "c")]
        d = derive(trace, "e", "c")
        assert d is not None and check_derivation(trace, d)


class TestCheckerRejectsBogusProofs:
    def test_wrong_conclusion(self):
        trace = [Init("a"), Fork("a", "b")]
        bogus = TJLeft(("b", "a"), 1, None)  # claims b < a
        assert not check_derivation(trace, bogus)

    def test_fork_index_pointing_at_non_fork(self):
        trace = [Init("a"), Fork("a", "b")]
        bogus = TJLeft(("a", "b"), 0, None)  # index 0 is the init
        assert not check_derivation(trace, bogus)

    def test_reflexive_premise_with_wrong_parent(self):
        trace = [Init("a"), Fork("a", "b"), Fork("b", "c")]
        bogus = TJLeft(("a", "c"), 2, None)  # claims a = parent(c) = b
        assert not check_derivation(trace, bogus)

    def test_scope_violation(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        # a < b is derivable at index 1, but a rule node must conclude
        # exactly at its fork: presenting it as a whole-trace conclusion
        # without a TJ-mono wrapper is rejected.
        unweakened = TJLeft(("a", "b"), 1, None)
        assert not check_derivation(trace, unweakened)
        weakened = TJMono(("a", "b"), 2, unweakened)
        assert check_derivation(trace, weakened)

    def test_mono_must_preserve_conclusion(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        inner = TJLeft(("a", "b"), 1, None)
        bogus = TJMono(("a", "c"), 2, inner)
        assert not check_derivation(trace, bogus)

    def test_premise_conclusion_mismatch(self):
        trace = [Init("a"), Fork("a", "b"), Fork("b", "c")]
        wrong_premise = TJLeft(("a", "b"), 1, None)
        bogus = TJRight(("c", "b"), 2, wrong_premise)  # needs (b, b)
        assert not check_derivation(trace, bogus)


class TestSoundnessAndCompleteness:
    @settings(max_examples=80, deadline=None)
    @given(trace=fork_traces(max_tasks=20))
    def test_derive_complete_and_checkable(self, trace):
        """A derivation exists exactly for the true judgments, and every
        constructed derivation passes the independent checker."""
        oracle = TJOrderOracle.from_trace(trace)
        tasks = oracle.sorted_tasks()
        for a in tasks:
            for b in tasks:
                d = derive(trace, a, b)
                if a != b and oracle.less(a, b):
                    assert d is not None, (a, b)
                    assert d.conclusion == (a, b)
                    assert check_derivation(trace, d), (a, b)
                else:
                    assert d is None, (a, b)

    @settings(max_examples=50, deadline=None)
    @given(trace=fork_traces(max_tasks=16))
    def test_each_rule_consumes_a_distinct_fork(self, trace):
        """Structural sanity: along any root-to-leaf path of a derivation
        the consumed fork indices strictly decrease (premises live in
        strictly shorter prefixes)."""
        oracle = TJOrderOracle.from_trace(trace)
        tasks = oracle.sorted_tasks()

        def max_index(d: Derivation) -> int:
            if isinstance(d, TJMono):
                return check_path(d.premise, d.prefix_len)
            return d.fork_index

        def check_path(d: Derivation, scope: int) -> int:
            if isinstance(d, TJMono):
                assert d.prefix_len <= scope
                return check_path(d.premise, d.prefix_len)
            assert d.fork_index < scope
            if isinstance(d, TJRight):
                check_path(d.premise, d.fork_index)
            elif d.premise is not None:
                check_path(d.premise, d.fork_index)
            return d.fork_index

        for a in tasks:
            for b in tasks:
                if a != b and oracle.less(a, b):
                    d = derive(trace, a, b)
                    check_path(d, len(trace) + 1)
