"""Unit tests for the random trace generators."""

import random

import pytest

from repro.formal.actions import Fork, Init, Join
from repro.formal.deadlock import contains_deadlock
from repro.formal.fork_tree import ForkTree
from repro.formal.generators import (
    balanced_fork_trace,
    chain_fork_trace,
    random_deadlocking_trace,
    random_fork_trace,
    random_kj_valid_trace,
    random_tj_valid_trace,
    star_fork_trace,
)
from repro.formal.trace import is_kj_valid, is_structurally_valid, is_tj_valid


class TestShapeGenerators:
    def test_chain_height(self):
        tree = ForkTree.from_trace(chain_fork_trace(10))
        assert tree.height() == 9

    def test_star_height(self):
        tree = ForkTree.from_trace(star_fork_trace(10))
        assert tree.height() == 1
        assert len(tree.children("t0")) == 9

    def test_balanced_height(self):
        tree = ForkTree.from_trace(balanced_fork_trace(15, arity=2))
        assert tree.height() == 3  # perfect binary tree of 15 nodes

    def test_balanced_rejects_bad_arity(self):
        with pytest.raises(ValueError):
            balanced_fork_trace(5, arity=0)

    def test_single_task(self):
        assert chain_fork_trace(1) == [Init("t0")]


class TestRandomGenerators:
    def test_random_fork_trace_structure(self):
        for seed in range(5):
            trace = random_fork_trace(random.Random(seed), 25)
            assert is_structurally_valid(trace)
            assert sum(isinstance(a, Fork) for a in trace) == 24

    def test_random_fork_trace_requires_a_task(self):
        with pytest.raises(ValueError):
            random_fork_trace(random.Random(0), 0)

    def test_tj_valid_generator(self):
        for seed in range(8):
            trace = random_tj_valid_trace(random.Random(seed), 15, 20)
            assert is_tj_valid(trace)
            assert not contains_deadlock(trace)

    def test_kj_valid_generator(self):
        for seed in range(8):
            trace = random_kj_valid_trace(random.Random(seed), 15, 20)
            assert is_kj_valid(trace)

    def test_deadlocking_generator(self):
        for seed in range(8):
            trace = random_deadlocking_trace(random.Random(seed), 10, cycle_len=2)
            assert is_structurally_valid(trace)
            assert contains_deadlock(trace)
            assert not is_tj_valid(trace)

    def test_generators_are_deterministic_per_seed(self):
        t1 = random_tj_valid_trace(random.Random(42), 12, 12)
        t2 = random_tj_valid_trace(random.Random(42), 12, 12)
        assert t1 == t2

    def test_join_counts(self):
        trace = random_tj_valid_trace(random.Random(3), 10, 7)
        joins = sum(isinstance(a, Join) for a in trace)
        assert joins <= 7  # singleton steps may be skipped
