"""Unit tests for the Definition 3.9 deadlock checker."""

from repro.formal.actions import Fork, Init, Join
from repro.formal.deadlock import contains_deadlock, find_join_cycle, join_graph
from repro.formal.generators import random_deadlocking_trace

import random


def _base(n):
    return [Init("t0")] + [Fork("t0", f"t{i}") for i in range(1, n)]


class TestJoinGraph:
    def test_empty(self):
        assert join_graph(_base(3)) == {}

    def test_edges(self):
        trace = _base(3) + [Join("t0", "t1"), Join("t1", "t2")]
        g = join_graph(trace)
        assert g["t0"] == {"t1"}
        assert g["t1"] == {"t2"}
        assert g["t2"] == set()


class TestFindJoinCycle:
    def test_no_joins_no_deadlock(self):
        assert find_join_cycle(_base(4)) is None

    def test_chain_is_no_deadlock(self):
        trace = _base(4) + [Join("t0", "t1"), Join("t1", "t2"), Join("t2", "t3")]
        assert not contains_deadlock(trace)

    def test_self_join_is_a_deadlock(self):
        """Definition 3.9 with n = 0."""
        trace = _base(2) + [Join("t1", "t1")]
        cycle = find_join_cycle(trace)
        assert cycle == ["t1"]

    def test_two_cycle(self):
        trace = _base(3) + [Join("t1", "t2"), Join("t2", "t1")]
        cycle = find_join_cycle(trace)
        assert cycle is not None and set(cycle) == {"t1", "t2"}

    def test_long_cycle(self):
        n = 6
        trace = _base(n)
        for i in range(1, n):
            trace.append(Join(f"t{i}", f"t{i % (n - 1) + 1}"))
        cycle = find_join_cycle(trace)
        assert cycle is not None
        assert set(cycle) == {f"t{i}" for i in range(1, n)}

    def test_cycle_off_a_tail(self):
        # t0 -> t1 -> t2 -> t1 : cycle {t1, t2} reached through a tail
        trace = _base(3) + [Join("t0", "t1"), Join("t1", "t2"), Join("t2", "t1")]
        cycle = find_join_cycle(trace)
        assert cycle is not None and set(cycle) == {"t1", "t2"}

    def test_diamond_without_cycle(self):
        trace = _base(4) + [
            Join("t0", "t1"),
            Join("t0", "t2"),
            Join("t1", "t3"),
            Join("t2", "t3"),
        ]
        assert not contains_deadlock(trace)

    def test_generator_plants_cycles(self):
        for seed in range(10):
            trace = random_deadlocking_trace(random.Random(seed), 12, cycle_len=3)
            assert contains_deadlock(trace)

    def test_deep_chain_no_recursion_error(self):
        """The DFS is iterative; a 10k-long chain must not blow the stack."""
        n = 10_000
        trace = [Init("t0")]
        for i in range(1, n):
            trace.append(Fork(f"t{i-1}", f"t{i}"))
        for i in range(n - 1):
            trace.append(Join(f"t{i}", f"t{i+1}"))
        assert not contains_deadlock(trace)
        trace.append(Join(f"t{n-1}", "t0"))
        assert contains_deadlock(trace)
