"""KJ proof objects and the executable Theorem 4.3 translation."""

import pytest
from hypothesis import given, settings

from repro.formal.actions import Fork, Init, Join
from repro.formal.derivations import check_derivation
from repro.formal.kj_derivations import (
    KJChild,
    KJInherit,
    KJLearn,
    KJMono,
    check_kj_derivation,
    derive_kj,
    translate_kj_to_tj,
)
from repro.formal.kj_relation import KJKnowledge

from ..conftest import kj_valid_traces


LEARN_TRACE = [
    Init("a"),
    Fork("a", "b"),
    Fork("b", "c"),
    Join("a", "b"),  # a learns c
]


class TestDeriveKJ:
    def test_child(self):
        trace = [Init("a"), Fork("a", "b")]
        d = derive_kj(trace, "a", "b")
        assert isinstance(d, KJChild)
        assert check_kj_derivation(trace, d)

    def test_inherit(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        d = derive_kj(trace, "c", "b")
        assert isinstance(d, KJInherit)
        assert check_kj_derivation(trace, d)

    def test_learn(self):
        d = derive_kj(LEARN_TRACE, "a", "c")
        assert isinstance(d, KJLearn)
        assert check_kj_derivation(LEARN_TRACE, d)

    def test_mono_wrapping(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c"), Fork("a", "d")]
        d = derive_kj(trace, "a", "b")  # established early, queried late
        assert check_kj_derivation(trace, d) or isinstance(d, KJChild)
        # the checker requires explicit weakening at full scope:
        from repro.formal.kj_derivations import _weaken

        assert check_kj_derivation(trace, _weaken(d, len(trace)))

    def test_absent_pairs(self):
        assert derive_kj(LEARN_TRACE, "b", "a") is None
        assert derive_kj(LEARN_TRACE, "c", "a") is None
        assert derive_kj(LEARN_TRACE, "a", "a") is None

    @settings(max_examples=60, deadline=None)
    @given(trace=kj_valid_traces(max_tasks=12, max_joins=12))
    def test_matches_semantic_reference(self, trace):
        knowledge = KJKnowledge.from_trace(trace)
        tasks = [a.task if isinstance(a, Init) else a.child
                 for a in trace if not isinstance(a, Join)]
        from repro.formal.kj_derivations import _weaken

        for a in tasks:
            for b in tasks:
                d = derive_kj(trace, a, b)
                if knowledge.knows(a, b):
                    assert d is not None
                    assert d.conclusion == (a, b)
                    assert check_kj_derivation(trace, _weaken(d, len(trace)))
                else:
                    assert d is None


class TestKJCheckerRejectsBogus:
    def test_wrong_child_pair(self):
        trace = [Init("a"), Fork("a", "b")]
        assert not check_kj_derivation(trace, KJChild(("b", "a"), 1))

    def test_child_at_non_fork(self):
        trace = [Init("a"), Fork("a", "b"), Join("a", "b")]
        assert not check_kj_derivation(trace, KJChild(("a", "b"), 2))

    def test_learn_with_wrong_waiter(self):
        d = derive_kj(LEARN_TRACE, "a", "c")
        assert isinstance(d, KJLearn)
        bogus = KJLearn(("b", "c"), d.join_index, d.premise)
        assert not check_kj_derivation(LEARN_TRACE, bogus)

    def test_mono_conclusion_mismatch(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        inner = KJChild(("a", "b"), 1)
        assert not check_kj_derivation(trace, KJMono(("a", "c"), 2, inner))


class TestTheorem43Translation:
    def test_child_translates_to_left(self):
        trace = [Init("a"), Fork("a", "b")]
        tj = translate_kj_to_tj(trace, derive_kj(trace, "a", "b"))
        assert tj.conclusion == ("a", "b")
        assert check_derivation(trace, tj)

    def test_learn_translates_via_composition(self):
        from repro.formal.kj_derivations import _weaken

        kj = _weaken(derive_kj(LEARN_TRACE, "a", "c"), len(LEARN_TRACE))
        tj = translate_kj_to_tj(LEARN_TRACE, kj)
        assert tj.conclusion == ("a", "c")
        assert check_derivation(LEARN_TRACE, tj)

    def test_chained_learns(self):
        trace = [
            Init("r"),
            Fork("r", "a"),
            Fork("a", "b"),
            Fork("b", "c"),
            Join("a", "b"),  # a learns c
            Join("r", "a"),  # r learns b and c
        ]
        from repro.formal.kj_derivations import _weaken

        for target in ("a", "b", "c"):
            kj = derive_kj(trace, "r", target)
            assert kj is not None
            tj = translate_kj_to_tj(trace, _weaken(kj, len(trace)))
            assert tj.conclusion == ("r", target)
            assert check_derivation(trace, tj)

    def test_invalid_trace_can_even_derive_reflexive_knowledge(self):
        """On a trace violating valid-join-R, raw KJ-learn can conclude
        the absurd ``b ≺ b`` (b joins its parent and learns about
        itself).  Theorem 4.3's hypothesis fails and the translation
        refuses rather than fabricating a TJ proof — as it must, since
        ``b < b`` is underivable (Lemma 3.5)."""
        bad = [
            Init("r"),
            Fork("r", "a"),
            Fork("a", "b"),
            Fork("b", "c"),
            Join("b", "a"),  # b joining its parent: never KJ-permitted
        ]
        kj = derive_kj(bad, "b", "b")
        assert isinstance(kj, KJLearn)  # K(a) ∋ b flowed back into b
        assert check_kj_derivation(bad, kj)  # a real Def-4.1 derivation!
        with pytest.raises(ValueError, match="not KJ-valid"):
            translate_kj_to_tj(bad, kj)

    def test_invalid_learn_raises(self):
        bad = [
            Init("r"),
            Fork("r", "a"),
            Fork("r", "b"),
            Fork("b", "c"),
            Join("a", "b"),  # a does NOT know b (b forked later): invalid
        ]
        kj = derive_kj(bad, "a", "c")  # derived via the invalid learn
        assert kj is not None
        with pytest.raises(ValueError, match="not KJ-valid"):
            translate_kj_to_tj(bad, kj)

    @settings(max_examples=50, deadline=None)
    @given(trace=kj_valid_traces(max_tasks=10, max_joins=10))
    def test_every_kj_pair_translates_and_checks(self, trace):
        """Theorem 4.3 end to end: every KJ judgment's derivation
        translates to a checkable TJ derivation of the same pair."""
        from repro.formal.kj_derivations import _weaken

        knowledge = KJKnowledge.from_trace(trace)
        tasks = [a.task if isinstance(a, Init) else a.child
                 for a in trace if not isinstance(a, Join)]
        for a in tasks:
            for b in sorted(knowledge.knowledge_of(a), key=str):
                kj = _weaken(derive_kj(trace, a, b), len(trace))
                tj = translate_kj_to_tj(trace, kj)
                assert tj.conclusion == (a, b)
                assert check_derivation(trace, tj), (a, b)
