"""Unit tests for the KJ knowledge semantics (Definition 4.1)."""

import pytest

from repro.errors import InvalidActionError
from repro.formal.actions import Fork, Init, Join
from repro.formal.kj_relation import KJKnowledge, derive_kj_pairs, kj_knows


class TestKJRules:
    def test_kj_child(self):
        k = KJKnowledge.from_trace([Init("a"), Fork("a", "b")])
        assert k.knows("a", "b")

    def test_child_does_not_know_parent(self):
        k = KJKnowledge.from_trace([Init("a"), Fork("a", "b")])
        assert not k.knows("b", "a")

    def test_child_does_not_know_itself(self):
        k = KJKnowledge.from_trace([Init("a"), Fork("a", "b")])
        assert not k.knows("b", "b")

    def test_kj_inherit_passes_older_siblings(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        k = KJKnowledge.from_trace(trace)
        assert k.knows("c", "b")  # c inherited a's knowledge of b
        assert not k.knows("b", "c")  # b forked first, knows nothing of c

    def test_inherit_is_a_snapshot_not_a_reference(self):
        # d inherits a's knowledge at fork time; a's later knowledge does
        # not retroactively appear in d.
        trace = [Init("a"), Fork("a", "d"), Fork("a", "e")]
        k = KJKnowledge.from_trace(trace)
        assert not k.knows("d", "e")

    def test_kj_learn_transfers_joinee_knowledge(self):
        # a forks b, b forks c; a joins b and thereby learns c.
        trace = [Init("a"), Fork("a", "b"), Fork("b", "c")]
        k = KJKnowledge.from_trace(trace)
        assert not k.knows("a", "c")  # not before the join
        k.join("a", "b")
        assert k.knows("a", "c")  # learned

    def test_no_transitivity_without_join(self):
        # The Figure 1 (left) scenario: d may not join c under KJ until it
        # joins b.
        trace = [Init("a"), Fork("a", "b"), Fork("a", "d"), Fork("b", "c")]
        k = KJKnowledge.from_trace(trace)
        assert k.knows("d", "b")
        assert not k.knows("d", "c")
        k.join("d", "b")
        assert k.knows("d", "c")

    def test_nobody_knows_the_root(self):
        trace = [Init("a"), Fork("a", "b"), Fork("b", "c"), Join("b", "c")]
        k = KJKnowledge.from_trace(trace)
        for t in ["a", "b", "c"]:
            assert not k.knows(t, "a")


class TestStructuralErrors:
    def test_double_init(self):
        k = KJKnowledge()
        k.init("a")
        with pytest.raises(InvalidActionError):
            k.init("b")

    def test_fork_unknown_parent(self):
        k = KJKnowledge()
        k.init("a")
        with pytest.raises(InvalidActionError):
            k.fork("zz", "b")

    def test_fork_existing_child(self):
        k = KJKnowledge()
        k.init("a")
        with pytest.raises(InvalidActionError):
            k.fork("a", "a")

    def test_join_unknown_task(self):
        k = KJKnowledge()
        k.init("a")
        with pytest.raises(InvalidActionError):
            k.join("a", "zz")


class TestHelpers:
    def test_derive_kj_pairs(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        assert derive_kj_pairs(trace) == {("a", "b"), ("a", "c"), ("c", "b")}

    def test_kj_knows_helper(self):
        trace = [Init("a"), Fork("a", "b")]
        assert kj_knows(trace, "a", "b")
        assert not kj_knows(trace, "b", "a")

    def test_knowledge_of(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        k = KJKnowledge.from_trace(trace)
        assert k.knowledge_of("a") == frozenset({"b", "c"})
        assert len(k) == 3 and "c" in k
