"""Unit and property tests for the fork tree, lca+ and the <_T decision
procedure (Definitions 3.12-3.14, Theorem 3.15)."""

import pytest
from hypothesis import given, settings

from repro.errors import InvalidActionError
from repro.formal.actions import Fork, Init
from repro.formal.fork_tree import AncPlus, DecStar, ForkTree, Sib
from repro.formal.tj_relation import TJOrderOracle

from ..conftest import fork_traces


@pytest.fixture
def small_tree():
    #        a
    #      / | \
    #     b  d  f      (fork order: b, d, f)
    #     |  |
    #     c  e
    t = ForkTree()
    t.add_root("a")
    t.add_child("a", "b")
    t.add_child("b", "c")
    t.add_child("a", "d")
    t.add_child("d", "e")
    t.add_child("a", "f")
    return t


class TestConstruction:
    def test_root(self, small_tree):
        assert small_tree.root == "a"
        assert small_tree.parent("a") is None
        assert small_tree.depth("a") == 0

    def test_parent_child(self, small_tree):
        assert small_tree.parent("c") == "b"
        assert small_tree.children("a") == ("b", "d", "f")

    def test_indices_follow_fork_order(self, small_tree):
        assert small_tree.index("b") == 0
        assert small_tree.index("d") == 1
        assert small_tree.index("f") == 2

    def test_depth_and_height(self, small_tree):
        assert small_tree.depth("e") == 2
        assert small_tree.height() == 2

    def test_len_and_contains(self, small_tree):
        assert len(small_tree) == 6
        assert "e" in small_tree
        assert "zz" not in small_tree

    def test_duplicate_root_rejected(self, small_tree):
        with pytest.raises(InvalidActionError):
            small_tree.add_root("zz")

    def test_fork_of_existing_task_rejected(self, small_tree):
        with pytest.raises(InvalidActionError):
            small_tree.add_child("a", "b")

    def test_fork_from_unknown_parent_rejected(self, small_tree):
        with pytest.raises(InvalidActionError):
            small_tree.add_child("nope", "x")

    def test_from_trace(self):
        t = ForkTree.from_trace([Init("a"), Fork("a", "b")])
        assert t.children("a") == ("b",)


class TestPaths:
    def test_path_from_root(self, small_tree):
        assert small_tree.path_from_root("e") == ["a", "d", "e"]
        assert small_tree.path_from_root("a") == ["a"]

    def test_spawn_path(self, small_tree):
        assert small_tree.spawn_path("a") == ()
        assert small_tree.spawn_path("c") == (0, 0)
        assert small_tree.spawn_path("e") == (1, 0)
        assert small_tree.spawn_path("f") == (2,)

    def test_is_ancestor(self, small_tree):
        assert small_tree.is_ancestor("a", "e")
        assert small_tree.is_ancestor("d", "e")
        assert not small_tree.is_ancestor("e", "d")
        assert not small_tree.is_ancestor("b", "e")
        assert not small_tree.is_ancestor("a", "a")


class TestLcaPlus:
    def test_ancestor_case(self, small_tree):
        assert small_tree.lca_plus("a", "e") == AncPlus()
        assert small_tree.lca_plus("d", "e") == AncPlus()

    def test_descendant_and_equal_case(self, small_tree):
        assert small_tree.lca_plus("e", "d") == DecStar()
        assert small_tree.lca_plus("e", "e") == DecStar()

    def test_sibling_case(self, small_tree):
        assert small_tree.lca_plus("c", "e") == Sib("b", "d")
        assert small_tree.lca_plus("e", "c") == Sib("d", "b")
        assert small_tree.lca_plus("b", "d") == Sib("b", "d")

    def test_sibling_case_mixed_depth(self, small_tree):
        assert small_tree.lca_plus("c", "f") == Sib("b", "f")
        assert small_tree.lca_plus("f", "c") == Sib("f", "b")

    def test_lca(self, small_tree):
        assert small_tree.lca("c", "e") == "a"
        assert small_tree.lca("a", "e") == "a"
        assert small_tree.lca("e", "d") == "d"


class TestLessDecisionProcedure:
    """Theorem 3.15 case-by-case."""

    def test_ancestor_is_less(self, small_tree):
        assert small_tree.less("a", "e")
        assert small_tree.less("d", "e")

    def test_descendant_is_not_less(self, small_tree):
        assert not small_tree.less("e", "d")
        assert not small_tree.less("e", "a")

    def test_irreflexive(self, small_tree):
        for t in small_tree.tasks():
            assert not small_tree.less(t, t)

    def test_younger_sibling_subtree_is_less(self, small_tree):
        # d forked after b => d < b, and d's subtree is below b's subtree
        assert small_tree.less("d", "b")
        assert small_tree.less("e", "b")
        assert small_tree.less("e", "c")
        assert small_tree.less("f", "e")

    def test_older_sibling_subtree_is_not_less(self, small_tree):
        assert not small_tree.less("b", "d")
        assert not small_tree.less("c", "e")

    def test_preorder_matches_expected(self, small_tree):
        # ascending <: root, then youngest subtree first
        assert small_tree.preorder() == ["a", "f", "d", "e", "b", "c"]


class TestAgainstOracle:
    @settings(max_examples=150)
    @given(fork_traces(max_tasks=40))
    def test_less_matches_order_oracle(self, trace):
        """Theorem 3.17: the lca+ procedure decides the TJ rule order."""
        tree = ForkTree.from_trace(trace)
        oracle = TJOrderOracle.from_trace(trace)
        tasks = oracle.sorted_tasks()
        for a in tasks:
            for b in tasks:
                assert tree.less(a, b) == (a != b and oracle.less(a, b))

    @settings(max_examples=100)
    @given(fork_traces(max_tasks=40))
    def test_preorder_equals_oracle_order(self, trace):
        tree = ForkTree.from_trace(trace)
        oracle = TJOrderOracle.from_trace(trace)
        assert tree.preorder() == oracle.sorted_tasks()

    @settings(max_examples=100)
    @given(fork_traces(max_tasks=30))
    def test_lca_plus_total_and_consistent(self, trace):
        tree = ForkTree.from_trace(trace)
        tasks = list(tree.tasks())
        for a in tasks:
            for b in tasks:
                kind = tree.lca_plus(a, b)
                if isinstance(kind, AncPlus):
                    assert tree.is_ancestor(a, b)
                elif isinstance(kind, DecStar):
                    assert a == b or tree.is_ancestor(b, a)
                else:
                    assert tree.parent(kind.a_branch) == tree.parent(kind.b_branch)
                    assert kind.a_branch != kind.b_branch
