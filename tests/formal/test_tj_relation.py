"""Unit and property tests for the TJ relation implementations."""

import pytest
from hypothesis import given, settings

from repro.errors import InvalidActionError
from repro.formal.actions import Fork, Init, Join
from repro.formal.tj_relation import TJOrderOracle, derive_tj_pairs, tj_less

from ..conftest import fork_traces


class TestDeriveTJPairs:
    def test_single_task_has_empty_relation(self):
        assert derive_tj_pairs([Init("a")]) == set()

    def test_parent_less_than_child(self):
        pairs = derive_tj_pairs([Init("a"), Fork("a", "b")])
        assert pairs == {("a", "b")}

    def test_tj_left_propagates_through_ancestors(self):
        trace = [Init("a"), Fork("a", "b"), Fork("b", "c")]
        pairs = derive_tj_pairs(trace)
        assert ("a", "c") in pairs  # grandparent < grandchild

    def test_tj_right_makes_young_sibling_smaller(self):
        trace = [Init("a"), Fork("a", "b"), Fork("a", "c")]
        pairs = derive_tj_pairs(trace)
        assert ("c", "b") in pairs  # c forked later: c < b
        assert ("b", "c") not in pairs

    def test_figure1_left_permission(self):
        # a forks b, then d; b forks c.  d inherits a's permission on b and
        # transitively on c, without joining b first.
        trace = [Init("a"), Fork("a", "b"), Fork("a", "d"), Fork("b", "c")]
        pairs = derive_tj_pairs(trace)
        assert ("d", "b") in pairs
        assert ("d", "c") in pairs  # the transitive step KJ lacks

    def test_joins_add_nothing(self):
        base = [Init("a"), Fork("a", "b"), Fork("b", "c")]
        with_join = base + [Join("a", "b")]
        assert derive_tj_pairs(base) == derive_tj_pairs(with_join)

    def test_rejects_fork_from_unknown(self):
        with pytest.raises(InvalidActionError):
            derive_tj_pairs([Init("a"), Fork("zz", "b")])

    def test_rejects_duplicate_task(self):
        with pytest.raises(InvalidActionError):
            derive_tj_pairs([Init("a"), Fork("a", "a")])

    def test_rejects_action_before_init(self):
        with pytest.raises(InvalidActionError):
            derive_tj_pairs([Fork("a", "b")])


class TestOrderOracle:
    def test_insert_after_parent(self):
        o = TJOrderOracle()
        o.init("a")
        o.fork("a", "b")
        o.fork("a", "c")
        o.fork("b", "d")
        # order: a, c, b, d  (c younger sibling of b; d child of b)
        assert o.sorted_tasks() == ["a", "c", "b", "d"]

    def test_less_is_position_comparison(self):
        o = TJOrderOracle()
        o.init("a")
        o.fork("a", "b")
        assert o.less("a", "b")
        assert not o.less("b", "a")
        assert not o.less("a", "a")

    def test_contains_and_len(self):
        o = TJOrderOracle()
        o.init("a")
        assert "a" in o and "b" not in o and len(o) == 1

    def test_double_init_rejected(self):
        o = TJOrderOracle()
        o.init("a")
        with pytest.raises(InvalidActionError):
            o.init("b")

    def test_tj_less_helper(self):
        trace = [Init("a"), Fork("a", "b")]
        assert tj_less(trace, "a", "b")
        assert not tj_less(trace, "b", "a")


class TestEquivalenceOfImplementations:
    @settings(max_examples=120)
    @given(fork_traces(max_tasks=18))
    def test_rule_derivation_equals_oracle(self, trace):
        """The inductive rule computation and the insert-after-parent list
        produce the same relation on every fork tree."""
        pairs = derive_tj_pairs(trace)
        order = TJOrderOracle.from_trace(trace).sorted_tasks()
        expected = {
            (a, b) for i, a in enumerate(order) for b in order[i + 1 :]
        }
        assert pairs == expected
