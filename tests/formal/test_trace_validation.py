"""Unit tests for the Definition 3.2 validation engine."""

import pytest

from repro.formal.actions import Fork, Init, Join
from repro.formal.trace import (
    FreeFamily,
    KJFamily,
    TJFamily,
    is_kj_valid,
    is_structurally_valid,
    is_tj_valid,
    validate_trace,
)


GOOD = [Init("a"), Fork("a", "b"), Join("a", "b")]


class TestStructuralRules:
    def test_good_trace(self):
        assert is_structurally_valid(GOOD)

    def test_empty_trace_is_valid_vacuously(self):
        assert is_structurally_valid([])

    def test_action_before_init(self):
        assert not is_structurally_valid([Fork("a", "b")])

    def test_duplicate_init(self):
        assert not is_structurally_valid([Init("a"), Init("b")])

    def test_fork_from_unknown(self):
        assert not is_structurally_valid([Init("a"), Fork("zz", "b")])

    def test_fork_of_existing(self):
        assert not is_structurally_valid([Init("a"), Fork("a", "a")])

    def test_join_on_unknown(self):
        assert not is_structurally_valid([Init("a"), Join("a", "zz")])


class TestPolicyValidation:
    def test_tj_accepts_parent_child_join(self):
        assert is_tj_valid(GOOD)

    def test_tj_rejects_child_joining_parent(self):
        trace = [Init("a"), Fork("a", "b"), Join("b", "a")]
        assert not is_tj_valid(trace)

    def test_kj_accepts_parent_child_join(self):
        assert is_kj_valid(GOOD)

    def test_kj_rejects_grandchild_join_without_learning(self):
        trace = [Init("a"), Fork("a", "b"), Fork("b", "c"), Join("a", "c")]
        assert not is_kj_valid(trace)
        assert is_tj_valid(trace)

    def test_kj_accepts_after_learning(self):
        trace = [
            Init("a"),
            Fork("a", "b"),
            Fork("b", "c"),
            Join("a", "b"),
            Join("a", "c"),
        ]
        assert is_kj_valid(trace)


class TestValidationResult:
    def test_verdicts_enumerate_actions(self):
        result = validate_trace(GOOD, TJFamily)
        assert len(result.verdicts) == 3
        assert result.valid and bool(result)
        assert result.first_violation is None

    def test_violation_reporting(self):
        trace = [Init("a"), Fork("a", "b"), Join("b", "a"), Join("a", "b")]
        result = validate_trace(trace, TJFamily)
        assert not result.valid
        v = result.first_violation
        assert v is not None and v.index == 2
        assert "does not permit" in v.reason
        assert len(result.rejected_joins) == 1
        # validation continued past the rejected join:
        assert result.verdicts[3].ok

    def test_stop_on_violation(self):
        trace = [Init("a"), Fork("a", "b"), Join("b", "a"), Join("a", "b")]
        result = validate_trace(trace, TJFamily, stop_on_violation=True)
        assert len(result.verdicts) == 3

    def test_rejected_join_does_not_update_kj_state(self):
        """An aborted join must not leak KJ-learn knowledge."""
        trace = [
            Init("a"),
            Fork("a", "b"),
            Fork("b", "c"),
            Fork("a", "d"),
            # d joining b is KJ-legal; b's knowledge {c} transfers to d.
            # But first, an *illegal* join by d on c must not grant d
            # anything even with continue-past-violation semantics.
            Join("d", "c"),
            Join("d", "c"),
        ]
        result = validate_trace(trace, KJFamily)
        assert [v.ok for v in result.verdicts] == [True] * 4 + [False, False]

    def test_policy_names(self):
        assert validate_trace(GOOD, TJFamily).policy == "TJ"
        assert validate_trace(GOOD, KJFamily).policy == "KJ"
        assert validate_trace(GOOD, FreeFamily).policy == "free"

    def test_tasks_collected(self):
        result = validate_trace(GOOD, TJFamily)
        assert result.tasks == {"a", "b"}
