"""Stress and failure-injection tests.

The verifiers must stay consistent under heavy concurrency and when
tasks fail mid-flight — an always-on production safety check cannot
corrupt its own state because the program it watches is buggy.
"""

import random
import threading

import pytest

from repro import TaskFailedError, TaskRuntime
from repro.armus.hybrid import HybridVerifier
from repro.core import make_policy
from repro.formal.tj_relation import TJOrderOracle


class TestConcurrentVerifierStress:
    @pytest.mark.parametrize("policy_name", ["TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM"])
    def test_concurrent_forks_and_queries_match_oracle(self, policy_name):
        """Many threads fork chains off a shared root while others fire
        permission queries; afterwards every verdict must agree with the
        insert-after-parent oracle rebuilt from the final structure."""
        policy = make_policy(policy_name)
        root = policy.add_child(None)
        n_threads, per_thread = 6, 120
        # Pre-create the per-thread anchors sequentially (single forker
        # per parent, as the Section 5.1 contract requires).
        anchors = [policy.add_child(root) for _ in range(n_threads)]
        results: list[list] = [[] for _ in range(n_threads)]
        stop = threading.Event()

        def grower(i):
            node = anchors[i]
            for _ in range(per_thread):
                node = policy.add_child(node)
                results[i].append(node)

        def querier():
            rng = random.Random(99)
            pool = anchors + [root]
            while not stop.is_set():
                a, b = rng.choice(pool), rng.choice(pool)
                policy.permits(a, b)  # must never crash mid-mutation

        threads = [threading.Thread(target=grower, args=(i,)) for i in range(n_threads)]
        q = threading.Thread(target=querier)
        q.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        q.join()

        # Rebuild the oracle: root, anchors in order, then each chain.
        oracle = TJOrderOracle()
        oracle.init("root")
        vertex_name = {id(root): "root"}
        for i, anchor in enumerate(anchors):
            name = f"a{i}"
            oracle.fork("root", name)
            vertex_name[id(anchor)] = name
            parent = name
            for j, node in enumerate(results[i]):
                child = f"a{i}.{j}"
                oracle.fork(parent, child)
                vertex_name[id(node)] = child
                parent = child

        rng = random.Random(5)
        all_vertices = [root] + anchors + [v for chain in results for v in chain]
        for _ in range(2000):
            x, y = rng.choice(all_vertices), rng.choice(all_vertices)
            expected = x is not y and oracle.less(vertex_name[id(x)], vertex_name[id(y)])
            assert policy.permits(x, y) == expected

    def test_hybrid_verifier_concurrent_begin_end(self):
        """Hammer begin/end join cycles from many threads; counters stay
        exact and the waits-for graph drains to empty."""
        hybrid = HybridVerifier(make_policy("TJ-SP"))
        root = hybrid.on_init()
        children = [hybrid.on_fork(root) for _ in range(8)]
        iterations = 300

        def worker(i):
            me = f"task-{i}"
            for k in range(iterations):
                # joins on a terminated 'older sibling': vacuous blocking
                blocked = hybrid.begin_join(
                    me, f"done-{i}-{k}", children[i], children[(i + 1) % 8],
                    joinee_done=(k % 2 == 0),
                )
                if blocked:
                    hybrid.end_join(me, f"done-{i}-{k}")
                hybrid.on_join_completed(children[i], children[(i + 1) % 8])

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hybrid.verifier.stats.joins_checked == 8 * iterations
        assert len(hybrid.detector.graph) == 0


class TestFailureInjection:
    def test_failing_tasks_do_not_corrupt_verification(self):
        """Random task failures: joins still verified, failures surface
        as TaskFailedError, and subsequent valid joins keep working."""
        rt = TaskRuntime(policy="TJ-SP")
        rng = random.Random(0)

        def worker(i, fail):
            if fail:
                raise ValueError(f"injected-{i}")
            return i

        def main():
            futs = [
                (i, rt.fork(worker, i, rng.random() < 0.3), )
                for i in range(60)
            ]
            ok = failed = 0
            for i, fut in futs:
                try:
                    assert fut.join() == i
                    ok += 1
                except TaskFailedError as exc:
                    assert isinstance(exc.__cause__, ValueError)
                    failed += 1
            return ok, failed

        ok, failed = rt.run(main)
        assert ok + failed == 60 and failed > 0
        assert rt.verifier.stats.joins_checked == 60
        assert rt.detector.stats.false_positives == 0

    def test_failed_joinee_still_transfers_kj_knowledge(self):
        """KJ-learn happens at join completion even when the joinee
        failed — its forks were real and its knowledge is valid."""
        rt = TaskRuntime(policy="KJ-SS")
        grand = {}

        def child():
            grand["g"] = rt.fork(lambda: 7)
            raise ValueError("child failed after forking")

        def main():
            c = rt.fork(child)
            with pytest.raises(TaskFailedError):
                c.join()
            # the learn from the failed join lets us join g without
            # tripping the fallback
            return grand["g"].join()

        assert rt.run(main) == 7
        assert rt.detector.stats.false_positives == 0

    def test_deep_failure_chains(self):
        rt = TaskRuntime(policy="TJ-SP")

        def recurse(depth):
            if depth == 0:
                raise RuntimeError("bottom")
            return rt.fork(recurse, depth - 1).join()

        def main():
            with pytest.raises(TaskFailedError):
                rt.fork(recurse, 10).join()
            return "survived"

        assert rt.run(main) == "survived"
