"""Experiments E5/E6: the paper's Listing 1 and Listing 2 as live programs.

Listing 1 (divide-and-conquer, queue of futures): valid under TJ always;
violates KJ only under some schedules.  Listing 2 (map-reduce with
grandchild joins): valid under TJ, *always* violates KJ.
"""

import queue
import threading

import pytest

from repro import CooperativeRuntime, TaskRuntime


def listing1_threaded(policy):
    """Listing 1 on the blocking runtime."""
    rt = TaskRuntime(policy=policy)
    tasks: "queue.SimpleQueue" = queue.SimpleQueue()

    def f(depth):
        if depth == 0:
            return 1
        tasks.put(rt.fork(f, depth - 1))
        tasks.put(rt.fork(f, depth - 1))
        return 1

    def main():
        tasks.put(rt.fork(f, 4))
        total = 0
        while True:
            try:
                fut = tasks.get_nowait()
            except queue.Empty:
                break
            total += fut.join()
        return total

    return rt.run(main), rt


def listing2_threaded(policy, n=32, c=4):
    """Listing 2 on the blocking runtime."""
    rt = TaskRuntime(policy=policy)
    mappers = [None] * n
    ready = [threading.Event() for _ in range(n)]

    def main():
        def spawn():
            for i in range(n):
                mappers[i] = rt.fork(lambda i=i: i)
                ready[i].set()

        rt.fork(spawn)

        def reducer(ci):
            acc = 0
            for i in range(ci * n // c, (ci + 1) * n // c):
                ready[i].wait()
                acc += mappers[i].join()
            return acc

        reducers = [rt.fork(reducer, ci) for ci in range(c)]
        return sum(r.join() for r in reducers)

    return rt.run(main), rt


class TestListing1:
    def test_counts_all_tasks_under_tj(self):
        total, rt = listing1_threaded("TJ-SP")
        assert total == 2**5 - 1  # full binary recursion tree
        assert rt.detector.stats.false_positives == 0
        assert rt.detector.stats.deadlocks_avoided == 0

    def test_completes_under_kj_via_fallback(self):
        total, rt = listing1_threaded("KJ-SS")
        assert total == 2**5 - 1
        # scheduling-dependent: fallback may or may not fire, but never a
        # real deadlock
        assert rt.detector.stats.deadlocks_avoided == 0

    def test_emptiness_check_is_sound(self):
        """Once the queue drains, all 2^d - 1 tasks were counted — no task
        is ever missed, across repeated runs."""
        for _ in range(5):
            total, _ = listing1_threaded("TJ-SP")
            assert total == 31


class TestListing2:
    def test_reduces_correctly_under_tj_with_no_fallback(self):
        total, rt = listing2_threaded("TJ-SP")
        assert total == 32 * 31 // 2
        assert rt.detector.stats.false_positives == 0

    def test_always_violates_kj(self):
        """Section 2.4: Listing 2 always violates KJ — every mapper join by
        a reducer is a join on an unknown task."""
        total, rt = listing2_threaded("KJ-VC")
        assert total == 32 * 31 // 2
        assert rt.detector.stats.false_positives == 32  # one per mapper join

    def test_kj_ss_agrees_with_kj_vc(self):
        _, vc = listing2_threaded("KJ-VC")
        _, ss = listing2_threaded("KJ-SS")
        assert (
            vc.detector.stats.false_positives == ss.detector.stats.false_positives
        )


class TestListing1Cooperative:
    """The same queue-join pattern is deterministic on the cooperative
    runtime, joined in seeded-random order (the NQueens benchmark reuses
    exactly this shape)."""

    def test_random_order_join(self):
        import random

        rt = CooperativeRuntime(policy="TJ-SP")
        tasks: list = []
        rng = random.Random(1)

        def f(depth):
            if depth == 0:
                return 1
            tasks.append(rt.fork(f, depth - 1))
            tasks.append(rt.fork(f, depth - 1))
            return 1

        def main():
            tasks.append(rt.fork(f, 4))
            total = 0
            while tasks:
                total += yield tasks.pop(rng.randrange(len(tasks)))
            return total

        assert rt.run(main) == 31
        assert rt.detector.stats.false_positives == 0
