"""Round-trip integration: live run -> recorded trace -> offline checks
-> replayed run.  Every stage must agree about what the program did."""

import queue

from repro import TaskRuntime
from repro.core import TJSpawnPaths
from repro.formal.actions import Fork, Join
from repro.formal.deadlock import contains_deadlock
from repro.formal.trace import is_structurally_valid, is_tj_valid
from repro.tools import TraceRecordingPolicy, replay_on_runtime


def record(program_builder):
    recorder = TraceRecordingPolicy(TJSpawnPaths())
    rt = TaskRuntime(policy=recorder)
    result = rt.run(program_builder(rt))
    return result, recorder.snapshot(), rt


def fib_program(rt):
    def fib(n=9):
        if n < 2:
            return n
        a, b = rt.fork(fib, n - 1), rt.fork(fib, n - 2)
        return a.join() + b.join()

    return fib


def queue_program(rt):
    tasks: "queue.SimpleQueue" = queue.SimpleQueue()

    def f(depth):
        if depth > 0:
            tasks.put(rt.fork(f, depth - 1))
            tasks.put(rt.fork(f, depth - 1))
        return 1

    def main():
        tasks.put(rt.fork(f, 3))
        total = 0
        while True:
            try:
                total += tasks.get_nowait().join()
            except queue.Empty:
                return total

    return main


class TestRoundTrip:
    def test_fib_roundtrip(self):
        result, trace, rt = record(fib_program)
        assert result == 34
        assert is_structurally_valid(trace)
        assert is_tj_valid(trace)
        assert not contains_deadlock(trace)
        # replay sees the same number of verification events
        outcome = replay_on_runtime(trace, "TJ-SP")
        assert outcome.clean
        assert len(outcome.completed_joins) == sum(
            isinstance(a, Join) for a in trace
        )
        assert (
            outcome.runtime.verifier.stats.forks == rt.verifier.stats.forks
        )

    def test_queue_program_roundtrip(self):
        result, trace, _ = record(queue_program)
        assert result == 15
        assert is_tj_valid(trace)
        outcome = replay_on_runtime(trace, "TJ-SP")
        assert outcome.clean

    def test_recorded_joins_match_live_joins(self):
        _, trace, rt = record(fib_program)
        recorded_joins = sum(isinstance(a, Join) for a in trace)
        assert recorded_joins == rt.verifier.stats.joins_checked
        recorded_forks = sum(isinstance(a, Fork) for a in trace)
        assert recorded_forks == rt.tasks_started

    def test_double_roundtrip_is_stable(self):
        """Recording the replay of a recording yields an isomorphic fork
        tree (task *names* reflect global fork order, which is schedule
        dependent; the per-parent child order is what TJ depends on and
        must be preserved exactly)."""
        from repro.formal.fork_tree import ForkTree

        def canonical(trace):
            tree = ForkTree.from_trace(
                [a for a in trace if not isinstance(a, Join)]
            )

            def shape(task):
                return tuple(shape(c) for c in tree.children(task))

            return shape(tree.root)

        _, trace1, _ = record(fib_program)
        recorder = TraceRecordingPolicy(TJSpawnPaths())
        replay_on_runtime(trace1, recorder)
        trace2 = recorder.snapshot()
        assert canonical(trace1) == canonical(trace2)
