"""Smoke tests: every example script runs to completion.

The examples are the quickstart surface of the repository; they must
never rot.  (run_evaluation.py is exercised separately by the analysis
tests — it is the whole evaluation and too slow for this sweep.)
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "divide_and_conquer.py",
    "map_reduce.py",
    "deadlock_recovery.py",
    "trace_analysis.py",
    "finish_constructs.py",
    "barrier_pipeline.py",
    "executable_proofs.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stdout}\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_all_examples_accounted_for():
    """Every example on disk is either in the fast list or known-slow."""
    known = set(FAST_EXAMPLES) | {"run_evaluation.py"}
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == known
