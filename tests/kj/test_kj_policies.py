"""Unit and property tests for the KJ verifier implementations.

The key property: both KJ-VC and KJ-SS decide *exactly* the knowledge
relation of Definition 4.1 (the :class:`KJKnowledge` reference), on
arbitrary interleavings of forks and joins — including joins the policy
itself would have rejected (forced through by a fallback), which exercise
the learn path on stranger tasks.
"""

import pytest
from hypothesis import given, settings

from repro.core import make_policy
from repro.formal.actions import Fork, Init, Join
from repro.formal.kj_relation import KJKnowledge
from repro.kj import KJCompactClock, KJSnapshotSets, KJVectorClock

from ..conftest import kj_valid_traces, traces_with_arbitrary_joins

KJ_NAMES = ["KJ-VC", "KJ-SS", "KJ-CC"]


def replay(policy, trace):
    """Apply a full trace (forks and joins) to a KJ policy."""
    vertices = {}
    for action in trace:
        if isinstance(action, Init):
            vertices[action.task] = policy.add_child(None)
        elif isinstance(action, Fork):
            vertices[action.child] = policy.add_child(vertices[action.parent])
        elif isinstance(action, Join):
            policy.on_join(vertices[action.waiter], vertices[action.joinee])
    return vertices


@pytest.mark.parametrize("name", KJ_NAMES)
class TestExactKnowledgeEquivalence:
    @settings(max_examples=100, deadline=None)
    @given(trace=kj_valid_traces())
    def test_matches_reference_on_kj_valid_traces(self, name, trace):
        policy = make_policy(name)
        vertices = replay(policy, trace)
        reference = KJKnowledge.from_trace(trace)
        tasks = list(vertices)
        for a in tasks:
            for b in tasks:
                assert policy.permits(vertices[a], vertices[b]) == reference.knows(
                    a, b
                ), f"{name} disagrees on ({a}, {b})"

    @settings(max_examples=100, deadline=None)
    @given(trace=traces_with_arbitrary_joins())
    def test_matches_reference_on_forced_joins(self, name, trace):
        """Even KJ-invalid joins (applied as learns) keep the two
        representations in lockstep with the reference semantics."""
        policy = make_policy(name)
        vertices = replay(policy, trace)
        reference = KJKnowledge()
        for action in trace:
            reference.apply(action)
        tasks = list(vertices)
        for a in tasks:
            for b in tasks:
                assert policy.permits(vertices[a], vertices[b]) == reference.knows(a, b)


@pytest.mark.parametrize("name", KJ_NAMES)
class TestKJBehaviour:
    def test_parent_knows_child(self, name):
        p = make_policy(name)
        root = p.add_child(None)
        child = p.add_child(root)
        assert p.permits(root, child)
        assert not p.permits(child, root)

    def test_grandchild_requires_learning(self, name):
        p = make_policy(name)
        root = p.add_child(None)
        child = p.add_child(root)
        grand = p.add_child(child)
        assert not p.permits(root, grand)
        p.on_join(root, child)  # KJ-learn
        assert p.permits(root, grand)

    def test_sibling_inheritance(self, name):
        p = make_policy(name)
        root = p.add_child(None)
        older = p.add_child(root)
        younger = p.add_child(root)
        assert p.permits(younger, older)
        assert not p.permits(older, younger)

    def test_inheritance_is_snapshot(self, name):
        p = make_policy(name)
        root = p.add_child(None)
        first = p.add_child(root)
        second = p.add_child(root)
        # first was forked before second existed
        assert not p.permits(first, second)

    def test_learning_is_transitive_through_chains(self, name):
        p = make_policy(name)
        root = p.add_child(None)
        a = p.add_child(root)
        b = p.add_child(a)
        c = p.add_child(b)
        p.on_join(a, b)  # a learns c
        assert p.permits(a, c)
        p.on_join(root, a)  # root learns b and c
        assert p.permits(root, b) and p.permits(root, c)

    def test_nobody_knows_root(self, name):
        p = make_policy(name)
        root = p.add_child(None)
        child = p.add_child(root)
        grand = p.add_child(child)
        p.on_join(child, grand)
        assert not p.permits(child, root)
        assert not p.permits(grand, root)
        assert not p.permits(root, root)

    def test_space_units_grow(self, name):
        p = make_policy(name)
        root = p.add_child(None)
        s0 = p.space_units()
        for _ in range(5):
            p.add_child(root)
        assert p.space_units() > s0


class TestRepresentationDetails:
    def test_vc_knowledge_vector_shape(self):
        p = KJVectorClock()
        root = p.add_child(None)
        c0 = p.add_child(root)
        c1 = p.add_child(root)
        assert root.known == {c0.uid, c1.uid}
        assert c0.known == set()  # forked first: inherited empty knowledge
        assert c1.known == {c0.uid}  # knows the first sibling only

    def test_vc_fork_copies_whole_vector(self):
        """The O(n) step Table 1 charges KJ-VC for."""
        p = KJVectorClock()
        root = p.add_child(None)
        kids = [p.add_child(root) for _ in range(10)]
        last = p.add_child(root)
        assert last.known == {k.uid for k in kids}
        assert last.known is not root.known

    def test_vc_join_unions(self):
        p = KJVectorClock()
        root = p.add_child(None)
        a = p.add_child(root)
        grands = [p.add_child(a) for _ in range(3)]
        p.on_join(root, a)
        assert {g.uid for g in grands} <= root.known

    def test_cc_clock_shape(self):
        p = KJCompactClock()
        root = p.add_child(None)
        c0 = p.add_child(root)
        c1 = p.add_child(root)
        assert root.clock == {root.uid: 2}
        assert c0.clock == {}
        assert c1.clock == {root.uid: 1}  # knows the first child only

    def test_cc_join_takes_pointwise_max(self):
        p = KJCompactClock()
        root = p.add_child(None)
        a = p.add_child(root)
        for _ in range(3):
            p.add_child(a)
        p.on_join(root, a)
        assert root.clock[a.uid] == 3

    def test_cc_clock_stays_small_on_flat_forks(self):
        """The representational win over KJ-VC: a root forking n children
        keeps a single clock entry, not an n-entry vector."""
        cc = KJCompactClock()
        vc = KJVectorClock()
        cc_root = cc.add_child(None)
        vc_root = vc.add_child(None)
        for _ in range(50):
            cc.add_child(cc_root)
            vc.add_child(vc_root)
        assert len(cc_root.clock) == 1
        assert len(vc_root.known) == 50

    def test_ss_fork_is_constant_work(self):
        p = KJSnapshotSets()
        root = p.add_child(None)
        node = root
        for _ in range(50):
            node = p.add_child(node)
        # Snapshot-set vertices store no per-ancestor state: 6 accounting
        # slots per node regardless of depth.
        assert node.learned == []
        assert p.space_units() == 6 * 51

    def test_ss_memoisation_handles_learn_cycles(self):
        """Learn entries can form diamonds; the walk must terminate."""
        p = KJSnapshotSets()
        root = p.add_child(None)
        a = p.add_child(root)
        b = p.add_child(root)
        # b knows a (inherited); force mutual learns to build a dense DAG.
        p.on_join(b, a)
        p.on_join(a, b)
        p.on_join(b, a)
        # Queries over the cyclic learn DAG must terminate and agree with
        # the reference semantics: b knows a (inherited), a never learns b
        # (KJ-learn transfers knowledge *of* the joinee, not the joinee).
        assert p.permits(b, a)
        assert not p.permits(a, b)
