"""Theorem 4.3 at the verifier level: whatever a KJ verifier permits, every
TJ verifier permits too — and strictly more."""

import pytest
from hypothesis import given, settings

from repro.core import make_policy
from repro.formal.actions import Fork, Init, Join

from ..conftest import kj_valid_traces
from .test_kj_policies import replay as replay_kj
from ..core.test_policies_common import replay_forks


@pytest.mark.parametrize("kj_name", ["KJ-VC", "KJ-SS", "KJ-CC"])
@pytest.mark.parametrize("tj_name", ["TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM"])
class TestVerifierLevelSubsumption:
    @settings(max_examples=60, deadline=None)
    @given(trace=kj_valid_traces())
    def test_kj_permission_implies_tj_permission(self, kj_name, tj_name, trace):
        kj = make_policy(kj_name)
        tj = make_policy(tj_name)
        kj_vertices = replay_kj(kj, trace)
        tj_vertices = replay_forks(tj, trace)
        tasks = list(kj_vertices)
        for a in tasks:
            for b in tasks:
                if kj.permits(kj_vertices[a], kj_vertices[b]):
                    assert tj.permits(tj_vertices[a], tj_vertices[b])

    def test_strictness_grandchild_join(self, kj_name, tj_name):
        """The Listing 1/NQueens pattern: root joins a grandchild first."""
        trace = [Init("r"), Fork("r", "c"), Fork("c", "g")]
        kj = make_policy(kj_name)
        tj = make_policy(tj_name)
        kjv = replay_kj(kj, trace)
        tjv = replay_forks(tj, trace)
        assert not kj.permits(kjv["r"], kjv["g"])
        assert tj.permits(tjv["r"], tjv["g"])
