"""Cross-algorithm equivalence: every TJ verifier decides the same order.

This is the central correctness property of Section 5: TJ-GT, TJ-JP,
TJ-SP and TJ-OM are interchangeable implementations of the Theorem 3.15
decision procedure, which in turn equals the rule-defined relation.
"""

import pytest
from hypothesis import given, settings

from repro.core import make_policy
from repro.formal.actions import Fork, Init
from repro.formal.generators import (
    balanced_fork_trace,
    chain_fork_trace,
    star_fork_trace,
)
from repro.formal.tj_relation import TJOrderOracle

from ..conftest import fork_traces

TJ_NAMES = ["TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM"]


def replay_forks(policy, trace):
    """Feed a fork trace through a policy; return task -> vertex map."""
    vertices = {}
    for action in trace:
        if isinstance(action, Init):
            vertices[action.task] = policy.add_child(None)
        elif isinstance(action, Fork):
            vertices[action.child] = policy.add_child(vertices[action.parent])
    return vertices


@pytest.mark.parametrize("name", TJ_NAMES)
class TestAgainstOracle:
    @settings(max_examples=100, deadline=None)
    @given(trace=fork_traces(max_tasks=35))
    def test_permits_equals_tj_order(self, name, trace):
        policy = make_policy(name)
        vertices = replay_forks(policy, trace)
        oracle = TJOrderOracle.from_trace(trace)
        tasks = oracle.sorted_tasks()
        for a in tasks:
            for b in tasks:
                expected = a != b and oracle.less(a, b)
                assert policy.permits(vertices[a], vertices[b]) == expected, (
                    f"{name} disagrees on ({a}, {b})"
                )

    @pytest.mark.parametrize(
        "shape",
        [chain_fork_trace(60), star_fork_trace(60), balanced_fork_trace(63)],
        ids=["chain", "star", "balanced"],
    )
    def test_degenerate_shapes(self, name, shape):
        policy = make_policy(name)
        vertices = replay_forks(policy, shape)
        oracle = TJOrderOracle.from_trace(shape)
        tasks = oracle.sorted_tasks()
        import random

        rng = random.Random(7)
        for _ in range(300):
            a, b = rng.choice(tasks), rng.choice(tasks)
            expected = a != b and oracle.less(a, b)
            assert policy.permits(vertices[a], vertices[b]) == expected

    def test_root_is_minimum(self, name):
        policy = make_policy(name)
        root = policy.add_child(None)
        kids = [policy.add_child(root) for _ in range(4)]
        for k in kids:
            assert policy.permits(root, k)
            assert not policy.permits(k, root)

    def test_irreflexive(self, name):
        policy = make_policy(name)
        root = policy.add_child(None)
        child = policy.add_child(root)
        assert not policy.permits(root, root)
        assert not policy.permits(child, child)

    def test_younger_sibling_may_join_older_subtree(self, name):
        """The Section 2.1 closing principle."""
        policy = make_policy(name)
        root = policy.add_child(None)
        older = policy.add_child(root)
        older_kid = policy.add_child(older)
        younger = policy.add_child(root)
        younger_kid = policy.add_child(younger)
        for lo in (younger, younger_kid):
            for hi in (older, older_kid):
                assert policy.permits(lo, hi)
                assert not policy.permits(hi, lo)

    def test_on_join_is_a_noop(self, name):
        """Section 7.2: TJ verifiers update no state at joins."""
        policy = make_policy(name)
        root = policy.add_child(None)
        a = policy.add_child(root)
        b = policy.add_child(a)
        before = policy.permits(root, b)
        policy.on_join(root, a)
        assert policy.permits(root, b) == before

    def test_space_units_grow_with_tasks(self, name):
        policy = make_policy(name)
        root = policy.add_child(None)
        s0 = policy.space_units()
        node = root
        for _ in range(20):
            node = policy.add_child(node)
        assert policy.space_units() > s0


class TestPairwiseAgreement:
    @settings(max_examples=50, deadline=None)
    @given(trace=fork_traces(max_tasks=25))
    def test_all_four_algorithms_agree(self, trace):
        policies = [make_policy(n) for n in TJ_NAMES]
        maps = [replay_forks(p, trace) for p in policies]
        tasks = [a.task if isinstance(a, Init) else a.child for a in trace]
        for a in tasks:
            for b in tasks:
                verdicts = {
                    p.permits(m[a], m[b]) for p, m in zip(policies, maps)
                }
                assert len(verdicts) == 1
