"""The verifier's policy-quarantine fault boundary (all three fail modes).

A :class:`PolicyViolationError` is a *verdict*; any other exception out
of a policy call is a *bug*.  These tests drive a deliberately broken
policy through the :class:`~repro.core.verifier.Verifier` and pin the
contract of each ``fail_mode``: ``"raise"`` propagates (seed
behaviour), ``"open"`` quarantines and degrades to permit-everything
(with Armus carrying soundness — proven end-to-end at the bottom),
``"closed"`` fails every later policy-facing call deterministically.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.policy import make_policy
from repro.core.verifier import FAIL_MODES, Verifier
from repro.errors import (
    DeadlockAvoidedError,
    PolicyQuarantinedError,
    PolicyQuarantineWarning,
    PolicyViolationError,
)


@pytest.fixture(autouse=True)
def _silence_expected_quarantine_warnings():
    """Every test here trips quarantine on purpose; tests that assert on
    the warning open their own ``catch_warnings(record=True)`` scope."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", PolicyQuarantineWarning)
        yield


class BrokenPolicy:
    """Wraps a real policy; every call after arming raises ZeroDivisionError."""

    name = "broken"
    stable_permits = False

    def __init__(self, crash_sites=("permits",)):
        self.inner = make_policy("TJ-SP")
        self.crash_sites = crash_sites
        self.calls: list[str] = []

    def _site(self, site):
        self.calls.append(site)
        if site in self.crash_sites:
            raise ZeroDivisionError(f"synthetic bug in {site}")

    def add_child(self, parent):
        self._site("add_child")
        return self.inner.add_child(parent)

    def permits(self, joiner, joinee):
        self._site("permits")
        return self.inner.permits(joiner, joinee)

    def permits_many(self, joiner, joinees):
        self._site("permits")
        return [self.inner.permits(joiner, j) for j in joinees]

    def on_join(self, joiner, joinee):
        self._site("on_join")

    def space_units(self):
        return 0


def _forked_pair(verifier):
    root = verifier.on_init()
    a = verifier.on_fork(root)
    b = verifier.on_fork(root)
    return root, a, b


def test_fail_mode_is_validated():
    with pytest.raises(ValueError):
        Verifier(make_policy("TJ-SP"), fail_mode="explode")
    for mode in FAIL_MODES:
        assert Verifier(make_policy("TJ-SP"), fail_mode=mode).fail_mode == mode


def test_raise_mode_propagates_the_bug_unchanged():
    v = Verifier(BrokenPolicy(), fail_mode="raise")
    root, a, b = _forked_pair(v)
    with pytest.raises(ZeroDivisionError):
        v.check_join(a, b)
    assert not v.quarantined
    assert v.stats.policy_faults == 0
    # the aborted check never counted: the join did not happen
    assert v.stats.joins_checked == 0


def test_violation_verdicts_pass_through_every_mode():
    """A False verdict (and its fault) is not an internal error."""
    for mode in FAIL_MODES:
        v = Verifier(make_policy("TJ-SP"), fail_mode=mode)
        root, a, b = _forked_pair(v)
        assert not v.check_join(a, b)  # siblings: TJ-SP denies
        with pytest.raises(PolicyViolationError):
            v.require_join(a, b)
        assert not v.quarantined
        assert v.stats.policy_faults == 0


class TestFailOpen:
    def test_quarantines_and_permits_everything_after(self):
        policy = BrokenPolicy()
        v = Verifier(policy, fail_mode="open")
        root, a, b = _forked_pair(v)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert v.check_join(a, b) is True  # bug swallowed, degraded verdict
        assert [w for w in caught if issubclass(w.category, PolicyQuarantineWarning)]
        assert v.quarantined
        q = v.quarantine_error
        assert isinstance(q, PolicyQuarantinedError)
        assert q.site == "permits"
        assert "ZeroDivisionError" in (q.original or "")
        assert isinstance(q.__cause__, ZeroDivisionError)
        # every later call bypasses the policy entirely
        calls_before = len(policy.calls)
        child = v.on_fork(a)
        assert v.check_join(a, child) is True
        v.on_join_completed(a, child)
        assert len(policy.calls) == calls_before
        assert v.stats.policy_faults == 1

    def test_warning_fires_once(self):
        v = Verifier(BrokenPolicy(), fail_mode="open")
        root, a, b = _forked_pair(v)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            v.check_join(a, b)
            v.check_join(b, a)
        hits = [w for w in caught if issubclass(w.category, PolicyQuarantineWarning)]
        assert len(hits) == 1

    def test_stats_keep_counting_degraded_verdicts(self):
        v = Verifier(BrokenPolicy(), fail_mode="open")
        root, a, b = _forked_pair(v)
        v.check_join(a, b)
        v.check_join(b, a)
        assert v.stats.joins_checked == 2
        assert v.stats.joins_rejected == 0  # degraded: everything permitted

    def test_fork_sites_quarantine_too(self):
        v = Verifier(BrokenPolicy(crash_sites=("add_child",)), fail_mode="open")
        root = v.on_init()  # the very first policy call crashes
        assert v.quarantined
        assert v.quarantine_error.site == "add_child"
        child = v.on_fork(root)  # placeholder vertex, no policy involved
        assert v.check_join(root, child) is True
        assert v.stats.forks == 2

    def test_batch_checks_degrade_as_a_unit(self):
        v = Verifier(BrokenPolicy(), fail_mode="open")
        root, a, b = _forked_pair(v)
        c = v.on_fork(root)
        assert v.check_joins(a, [b, c]) == [True, True]
        assert v.stats.joins_checked == 2


class TestFailClosed:
    def test_first_bug_raises_and_sticks(self):
        v = Verifier(BrokenPolicy(), fail_mode="closed")
        root, a, b = _forked_pair(v)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PolicyQuarantineWarning)
            with pytest.raises(PolicyQuarantinedError) as info:
                v.check_join(a, b)
        first = info.value
        assert isinstance(first.__cause__, ZeroDivisionError)
        # deterministic refusal on every later policy-facing call
        for attempt in (lambda: v.check_join(b, a), lambda: v.on_fork(a)):
            with pytest.raises(PolicyQuarantinedError) as again:
                attempt()
            assert again.value is first  # the stored diagnosis, not a new one
        assert v.stats.policy_faults == 1


def test_degraded_run_still_avoids_a_true_deadlock():
    """Fail-open end-to-end: with the policy quarantined, the Armus
    fallback force-checks every blocking join and refuses the edge that
    would close a real cycle."""
    import threading

    from repro.runtime.threaded import TaskRuntime

    rt = TaskRuntime(
        policy=BrokenPolicy(), fail_mode="open", on_unjoined_failure="ignore"
    )
    outcomes: dict[int, str] = {}

    def main():
        box: dict[int, object] = {}
        go = threading.Event()  # set only after both futures are in the box

        def member(idx):
            go.wait()
            try:
                box[1 - idx].join()
                outcomes[idx] = "joined"
            except DeadlockAvoidedError:
                outcomes[idx] = "avoided"

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", PolicyQuarantineWarning)
            box[0] = rt.fork(member, 0)
            box[1] = rt.fork(member, 1)
            go.set()
            for f in box.values():
                f.join()

    rt.run(main)
    assert rt.verifier.quarantined
    assert sorted(outcomes.values()) == ["avoided", "joined"]
    assert len(rt.detector.graph) == 0
    assert rt.detector.stats.deadlocks_avoided == 1
