"""Unit tests for the Algorithm 1 verifier shell."""

import pytest

from repro.core import TJSpawnPaths, Verifier
from repro.errors import PolicyViolationError


@pytest.fixture
def verifier():
    return Verifier(TJSpawnPaths())


class TestVerifier:
    def test_name(self, verifier):
        assert verifier.name == "TJ-SP-obj"

    def test_fork_counting(self, verifier):
        root = verifier.on_init()
        verifier.on_fork(root)
        verifier.on_fork(root)
        assert verifier.stats.forks == 3  # init counts as the root fork

    def test_check_join_counts_verdicts(self, verifier):
        root = verifier.on_init()
        child = verifier.on_fork(root)
        assert verifier.check_join(root, child)
        assert not verifier.check_join(child, root)
        assert verifier.stats.joins_checked == 2
        assert verifier.stats.joins_rejected == 1
        assert verifier.stats.joins_permitted == 1
        assert verifier.stats.rejection_rate == 0.5

    def test_rejection_rate_empty(self, verifier):
        assert verifier.stats.rejection_rate == 0.0

    def test_require_join_faults(self, verifier):
        root = verifier.on_init()
        child = verifier.on_fork(root)
        verifier.require_join(root, child)  # fine
        with pytest.raises(PolicyViolationError) as exc_info:
            verifier.require_join(child, root)
        err = exc_info.value
        assert err.policy == "TJ-SP-obj"
        assert err.joiner is child and err.joinee is root

    def test_on_join_completed_delegates(self):
        calls = []

        class Spy(TJSpawnPaths):
            def on_join(self, joiner, joinee):
                calls.append((joiner, joinee))

        v = Verifier(Spy())
        root = v.on_init()
        child = v.on_fork(root)
        v.on_join_completed(root, child)
        assert calls == [(root, child)]
