"""Algorithm-specific unit tests for the four TJ verifier back-ends."""

import threading

import pytest

from repro.core.policy import NullPolicy, make_policy
from repro.core.tj_gt import GTNode, TJGlobalTree
from repro.core.tj_jp import JPNode, TJJumpPointers
from repro.core.tj_om import TJOrderMaintenance
from repro.core.tj_sp import SPNode, TJSpawnPaths


class TestTJGT:
    def test_node_fields(self):
        p = TJGlobalTree()
        root = p.add_child(None)
        assert root.depth == 0 and root.ix is None and root.children == 0
        c0 = p.add_child(root)
        c1 = p.add_child(root)
        assert (c0.depth, c0.ix) == (1, 0)
        assert (c1.depth, c1.ix) == (1, 1)
        assert root.children == 2

    def test_less_walks_are_bounded_by_height(self):
        p = TJGlobalTree()
        node = p.add_child(None)
        chain = [node]
        for _ in range(100):
            node = p.add_child(node)
            chain.append(node)
        assert p.permits(chain[0], chain[-1])
        assert not p.permits(chain[-1], chain[0])

    def test_space_accounting(self):
        p = TJGlobalTree()
        root = p.add_child(None)
        p.add_child(root)
        assert p.space_units() == 8  # 4 slots x 2 vertices


class TestTJJP:
    def test_jump_pointer_lengths(self):
        p = TJJumpPointers()
        node = p.add_child(None)
        nodes = [node]
        for _ in range(1, 17):
            node = p.add_child(node)
            nodes.append(node)
        # depth d has floor(log2(d)) + 1 pointers
        assert len(nodes[1].up) == 1
        assert len(nodes[2].up) == 2
        assert len(nodes[3].up) == 2
        assert len(nodes[4].up) == 3
        assert len(nodes[16].up) == 5

    def test_jump_pointers_point_correctly(self):
        p = TJJumpPointers()
        node = p.add_child(None)
        nodes = [node]
        for _ in range(1, 20):
            node = p.add_child(node)
            nodes.append(node)
        for d, v in enumerate(nodes):
            for k, anc in enumerate(v.up):
                assert anc is nodes[d - (1 << k)]

    def test_lift(self):
        p = TJJumpPointers()
        node = p.add_child(None)
        nodes = [node]
        for _ in range(1, 40):
            node = p.add_child(node)
            nodes.append(node)
        assert p._lift(nodes[37], 37) is nodes[0]
        assert p._lift(nodes[37], 5) is nodes[32]
        assert p._lift(nodes[10], 0) is nodes[10]


class TestTJSP:
    def test_paths(self):
        p = TJSpawnPaths()
        root = p.add_child(None)
        a = p.add_child(root)
        b = p.add_child(root)
        aa = p.add_child(a)
        assert root.path == ()
        assert a.path == (0,)
        assert b.path == (1,)
        assert aa.path == (0, 0)

    def test_prefix_means_ancestor(self):
        p = TJSpawnPaths()
        assert p._less((0,), (0, 3))  # ancestor
        assert not p._less((0, 3), (0,))  # descendant
        assert not p._less((0, 3), (0, 3))  # equal

    def test_divergence_compares_reversed(self):
        p = TJSpawnPaths()
        assert p._less((2, 5), (1,))  # younger branch < older branch
        assert not p._less((1,), (2, 5))


class TestTJOM:
    def test_relabelling_preserves_order(self):
        p = TJOrderMaintenance()
        root = p.add_child(None)
        # Hammer one insertion point: every new child lands right after
        # the root, exhausting the local gap and forcing relabels.
        kids = [p.add_child(root) for _ in range(3000)]
        assert p.relabel_count >= 1
        # Younger children are smaller; spot-check ordering invariants.
        assert p.permits(kids[-1], kids[0])
        assert p.permits(root, kids[0])
        for i in range(0, 2999, 97):
            assert p.permits(kids[i + 1], kids[i])
            assert not p.permits(kids[i], kids[i + 1])

    def test_concurrent_forks_remain_ordered(self):
        p = TJOrderMaintenance()
        root = p.add_child(None)
        tops = [p.add_child(root) for _ in range(8)]
        results: list[list] = [[] for _ in range(8)]

        def grow(i):
            node = tops[i]
            for _ in range(500):
                node = p.add_child(node)
                results[i].append(node)

        threads = [threading.Thread(target=grow, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every chain is descending in fork order (ancestors are less),
        # and chains respect sibling order at the top.
        for i in range(8):
            assert p.permits(tops[i], results[i][-1])
            assert not p.permits(results[i][-1], tops[i])
        for i in range(7):
            # tops[i+1] forked later => smaller, including whole subtree
            assert p.permits(results[i + 1][-1], results[i][-1])


class TestNullPolicy:
    def test_everything_permitted(self):
        p = NullPolicy()
        a = p.add_child(None)
        b = p.add_child(a)
        assert p.permits(a, b) and p.permits(b, a) and p.permits(a, a)
        assert p.space_units() == 0

    def test_handles_are_unique(self):
        p = NullPolicy()
        assert p.add_child(None) != p.add_child(None)


class TestRegistry:
    def test_all_policies_registered(self):
        for name in [
            "none",
            "TJ-GT",
            "TJ-JP",
            "TJ-SP",
            "TJ-SP-legacy",
            "TJ-OM",
            "KJ-VC",
            "KJ-SS",
            "KJ-CC",
        ]:
            assert make_policy(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown policy"):
            make_policy("TJ-XX")

    def test_duplicate_registration_rejected(self):
        from repro.core.policy import POLICY_REGISTRY, register_policy

        with pytest.raises(ValueError, match="already registered"):
            register_policy("TJ-SP", TJGlobalTree)
        # the registry is untouched by the failed attempt
        from repro.core.tj_sp_flat import TJSpawnPathsFlat

        assert POLICY_REGISTRY["TJ-SP"] is TJSpawnPathsFlat

    def test_duplicate_registration_with_override(self):
        from repro.core.policy import POLICY_REGISTRY, register_policy

        original = POLICY_REGISTRY["TJ-SP"]
        try:
            register_policy("TJ-SP", TJGlobalTree, override=True)
            assert POLICY_REGISTRY["TJ-SP"] is TJGlobalTree
        finally:
            register_policy("TJ-SP", original, override=True)

    def test_same_factory_reregistration_is_idempotent(self):
        from repro.core.policy import register_policy

        register_policy(TJSpawnPaths.name, TJSpawnPaths)  # no error
