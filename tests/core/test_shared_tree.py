"""The shared-memory spawn-path forest: cross-process agreement, growth,
lock-free striping, and leak-free teardown.

Tiny geometry (``stripe=8, seg0=16``) on purpose: every test crosses
several doubling generations, exercising the create-vs-attach handshake
that real runs hit only at scale.
"""

from __future__ import annotations

import glob
import multiprocessing

import pytest

from repro.core.shared_tree import (
    SharedFlatTree,
    SharedTJPolicy,
    shm_available,
)
from repro.core.tj_sp_flat import TJSpawnPathsFlat

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="multiprocessing.shared_memory unavailable"
)


def _leaked(base: str) -> list[str]:
    return glob.glob(f"/dev/shm/*{base}*")


# ----------------------------------------------------------------------
# single process: semantics versus the reference flat policy
# ----------------------------------------------------------------------
def test_verdicts_match_the_flat_reference_policy():
    with SharedFlatTree.create(nprocs=1, stripe=8, seg0=16) as tree:
        shm_pol = SharedTJPolicy(tree)
        ref_pol = TJSpawnPathsFlat()
        sv, rv = {}, {}
        sv[0] = shm_pol.add_child(None)
        rv[0] = ref_pol.add_child(None)
        # a bushy tree: every third vertex forks from its grandparent
        parents = [0]
        for i in range(1, 120):
            parent = parents[i % len(parents)]
            sv[i] = shm_pol.add_child(sv[parent])
            rv[i] = ref_pol.add_child(rv[parent])
            parents.append(i)
        for a in range(0, 120, 7):
            for b in range(0, 120, 11):
                assert shm_pol.permits(sv[a], sv[b]) == ref_pol.permits(
                    rv[a], rv[b]
                ), (a, b)


def test_rows_survive_generation_growth():
    with SharedFlatTree.create(nprocs=1, stripe=8, seg0=16) as tree:
        root = tree.add_child(-1)
        chain = [root]
        for _ in range(300):  # crosses several seg doublings
            chain.append(tree.add_child(chain[-1]))
        assert tree.depth_of(chain[-1]) == 300
        assert tree.row_of(chain[1]) == (root, 0, 1)
        assert tree.less(root, chain[-1])
        assert not tree.less(chain[-1], root)
        assert tree.path_of(chain[3]) == (0, 0, 0)


def test_striped_ids_never_collide_across_regions():
    with SharedFlatTree.create(nprocs=3, stripe=8, seg0=32) as tree:
        mine = {tree.add_child(-1) for _ in range(100)}
        assert len(mine) == 100
        for vid in mine:
            assert (vid // 8) % 3 == 0  # region 0 stripes only


# ----------------------------------------------------------------------
# cross-process: workers fork concurrently, everyone agrees
# ----------------------------------------------------------------------
def _forker(handle, region, root, out_q):
    tree = SharedFlatTree.attach(handle, region)
    pol = SharedTJPolicy(tree)
    kids = [pol.add_child(root) for _ in range(60)]
    verdicts = (
        all(pol.permits(root, k) for k in kids),
        pol.permits(kids[1], kids[0]),  # later sibling joins earlier
        pol.permits(kids[0], kids[1]),  # earlier may not join later
        pol.permits(kids[0], root),  # descendant never joins ancestor
    )
    out_q.put((region, kids[:4], verdicts))
    tree.close()


def test_concurrent_workers_grow_one_agreed_forest():
    ctx = multiprocessing.get_context("spawn")
    tree = SharedFlatTree.create(nprocs=3, stripe=8, seg0=16)
    base = tree.handle().base
    try:
        pol = SharedTJPolicy(tree)
        root = pol.add_child(None)
        out_q = ctx.Queue()
        procs = [
            ctx.Process(target=_forker, args=(tree.handle(), r, root, out_q))
            for r in (1, 2)
        ]
        for p in procs:
            p.start()
        results = [out_q.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        for region, kids, (all_ok, later_ok, earlier_ok, up_ok) in results:
            assert all_ok and later_ok
            assert not earlier_ok and not up_ok
            # the parent agrees about rows it never wrote
            for k in kids:
                assert pol.permits(root, k)
                assert not pol.permits(k, root)
        # cross-region sibling order: edge indices decide, not id order
        (_, kids_a, _), (_, kids_b, _) = sorted(results)
        order = SharedTJPolicy(tree)
        for a, b in zip(kids_a, kids_b):
            ea = tree.row_of(a)[1]
            eb = tree.row_of(b)[1]
            assert order.permits(a, b) == (ea > eb)
    finally:
        tree.close()
    assert not _leaked(base)


def test_owner_close_unlinks_worker_created_generations():
    ctx = multiprocessing.get_context("spawn")
    tree = SharedFlatTree.create(nprocs=2, stripe=8, seg0=16)
    base = tree.handle().base
    out_q = ctx.Queue()
    root = tree.add_child(-1)
    p = ctx.Process(target=_forker, args=(tree.handle(), 1, root, out_q))
    p.start()
    out_q.get(timeout=60)  # worker forked 60 vertices: created generations
    p.join(timeout=60)
    assert _leaked(base)  # segments exist while the owner is open
    tree.close()
    assert not _leaked(base)
