"""Errors that cross process boundaries must survive pickling intact.

The deadlock diagnoses carry live :class:`TaskHandle` objects in their
``cycle`` and the quarantine error carries a formatted traceback; both
classes define ``__reduce__`` so a pickle round trip (as used by
``multiprocessing`` result queues and the kill-9 journal harness)
neither fails nor scrambles the constructor arguments.
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    PolicyQuarantinedError,
)


class _Handle:
    """Stand-in for a TaskHandle: unpicklable, but carries a name."""

    def __init__(self, name):
        self.name = name

    def __reduce__(self):
        raise TypeError("task handles are pinned to one process")


@pytest.mark.parametrize("cls", [DeadlockAvoidedError, DeadlockDetectedError])
def test_deadlock_errors_pickle_with_live_handles(cls):
    cycle = (_Handle("task-1"), _Handle("task-2"), _Handle("task-1"))
    err = cls(cycle=cycle)
    back = pickle.loads(pickle.dumps(err))
    assert type(back) is cls
    # handles crossed the boundary by name
    assert back.cycle == ("task-1", "task-2", "task-1")
    assert str(back) == str(err)


@pytest.mark.parametrize("cls", [DeadlockAvoidedError, DeadlockDetectedError])
def test_deadlock_errors_pickle_without_a_cycle(cls):
    back = pickle.loads(pickle.dumps(cls()))
    assert back.cycle is None
    assert type(back) is cls


def test_deadlock_cycle_of_plain_values_passes_through():
    err = DeadlockDetectedError(cycle=("a", "b", "a"))
    back = pickle.loads(pickle.dumps(err))
    assert back.cycle == ("a", "b", "a")


def test_quarantine_error_pickles_all_fields():
    err = PolicyQuarantinedError(
        "TJ-SP", "permits", original="Traceback (most recent call last): boom"
    )
    back = pickle.loads(pickle.dumps(err))
    assert type(back) is PolicyQuarantinedError
    assert back.policy == "TJ-SP"
    assert back.site == "permits"
    assert back.original == err.original
    assert str(back) == str(err)
