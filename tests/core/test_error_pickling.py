"""Errors that cross process boundaries must survive pickling intact.

The deadlock diagnoses carry live :class:`TaskHandle` objects in their
``cycle`` and the quarantine error carries a formatted traceback; both
classes define ``__reduce__`` so a pickle round trip (as used by
``multiprocessing`` result queues and the kill-9 journal harness)
neither fails nor scrambles the constructor arguments.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.errors import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    InjectedFaultError,
    JoinTimeoutError,
    PolicyQuarantinedError,
    PolicyViolationError,
    ReproError,
    ServiceBackpressureError,
    TaskCancelledError,
    TaskFailedError,
)


class _Handle:
    """Stand-in for a TaskHandle: unpicklable, but carries a name."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"<task {self.name}>"

    def __reduce__(self):
        raise TypeError("task handles are pinned to one process")


@pytest.mark.parametrize("cls", [DeadlockAvoidedError, DeadlockDetectedError])
def test_deadlock_errors_pickle_with_live_handles(cls):
    cycle = (_Handle("task-1"), _Handle("task-2"), _Handle("task-1"))
    err = cls(cycle=cycle)
    back = pickle.loads(pickle.dumps(err))
    assert type(back) is cls
    # handles crossed the boundary by name
    assert back.cycle == ("task-1", "task-2", "task-1")
    assert str(back) == str(err)


@pytest.mark.parametrize("cls", [DeadlockAvoidedError, DeadlockDetectedError])
def test_deadlock_errors_pickle_without_a_cycle(cls):
    back = pickle.loads(pickle.dumps(cls()))
    assert back.cycle is None
    assert type(back) is cls


def test_deadlock_cycle_of_plain_values_passes_through():
    err = DeadlockDetectedError(cycle=("a", "b", "a"))
    back = pickle.loads(pickle.dumps(err))
    assert back.cycle == ("a", "b", "a")


def test_quarantine_error_pickles_all_fields():
    err = PolicyQuarantinedError(
        "TJ-SP", "permits", original="Traceback (most recent call last): boom"
    )
    back = pickle.loads(pickle.dumps(err))
    assert type(back) is PolicyQuarantinedError
    assert back.policy == "TJ-SP"
    assert back.site == "permits"
    assert back.original == err.original
    assert str(back) == str(err)


# ----------------------------------------------------------------------
# every public error, through a real multiprocessing result queue
# ----------------------------------------------------------------------
class _Unpicklable(Exception):
    """A user exception whose payload refuses to pickle."""

    def __init__(self):
        self.lock = object().__reduce__  # bound-method payload: unpicklable
        super().__init__("user code blew up")


def _failed_with_batch_index():
    err = TaskFailedError(_Handle("leaf-3"), ValueError("boom"))
    err.batch_index = 3
    return err


def _every_public_error():
    """One representative instance per error that can cross a boundary."""
    return [
        PolicyViolationError("TJ-SP", _Handle("a"), _Handle("b")),
        PolicyQuarantinedError("TJ-SP", "permits", original="tb"),
        DeadlockAvoidedError(cycle=(_Handle("a"), _Handle("b"), _Handle("a"))),
        DeadlockDetectedError(cycle=("a", "b", "a")),
        JoinTimeoutError(_Handle("joiner"), _Handle("joinee"), 1.5),
        ServiceBackpressureError("sess-1", 1024),
        TaskCancelledError(_Handle("victim")),
        _failed_with_batch_index(),
        InjectedFaultError(site="join:4"),
    ]


def _echo_errors(out_q):
    for err in _every_public_error():
        out_q.put(err)


def test_every_error_type_round_trips_a_result_queue():
    """The procs runtime ships failures through mp queues verbatim."""
    ctx = multiprocessing.get_context("spawn")
    out_q = ctx.Queue()
    proc = ctx.Process(target=_echo_errors, args=(out_q,))
    proc.start()
    received = [out_q.get(timeout=30) for _ in _every_public_error()]
    proc.join(timeout=30)
    assert proc.exitcode == 0
    for sent, back in zip(_every_public_error(), received):
        assert type(back) is type(sent)
        assert str(back) == str(sent)


def test_task_failed_error_preserves_batch_index_and_cause():
    err = _failed_with_batch_index()
    back = pickle.loads(pickle.dumps(err))
    assert type(back) is TaskFailedError
    assert back.batch_index == 3
    assert back.task == "leaf-3"
    assert isinstance(back.__cause__, ValueError)
    assert str(back.__cause__) == "boom"
    assert str(back) == str(err)


def test_task_failed_error_survives_an_unpicklable_cause():
    err = TaskFailedError(_Handle("leaf"), _Unpicklable())
    back = pickle.loads(pickle.dumps(err))
    assert type(back) is TaskFailedError
    assert isinstance(back.__cause__, ReproError)
    assert "unpicklable cause" in str(back.__cause__)
    assert str(back) == str(err)


def test_join_timeout_error_fields_cross_by_name():
    err = JoinTimeoutError(_Handle("joiner"), _Handle("joinee"), 2.5)
    back = pickle.loads(pickle.dumps(err))
    assert (back.joiner, back.joinee, back.timeout) == ("joiner", "joinee", 2.5)
    assert isinstance(back, TimeoutError)


def test_quarantine_error_chained_cause_survives():
    err = PolicyQuarantinedError("TJ-SP", "permits", original="tb")
    try:
        try:
            raise ZeroDivisionError("policy bug")
        except ZeroDivisionError as inner:
            raise err from inner
    except PolicyQuarantinedError as caught:
        back = pickle.loads(pickle.dumps(caught))
    assert back.policy == "TJ-SP"
    # __reduce__ rebuilds from constructor args; an explicitly chained
    # cause still crosses because pickle carries exception state too.
    assert str(back) == str(err)
