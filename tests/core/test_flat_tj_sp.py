"""The flat struct-of-arrays TJ-SP core: differential + backend tests.

The load-bearing property: on the same fork tree, the flat policy —
under the pure-Python kernel *and* the compiled kernel, scalar *and*
vectorized batch — returns verdicts identical to the seed tuple
implementation (``TJ-SP-legacy``) and the interned object implementation
(``TJ-SP-obj``), across 1000+ random trees and across the kernels'
growth/reallocation boundaries.  Plus the backend-selection contract
(``REPRO_TJ_BACKEND`` / ``backend=``), the chunked verdict-cache
eviction, the generic ``permits_many``/scalar agreement for every other
policy, and the per-backend verifier histogram labels.
"""

import random

import pytest

from repro.core import Verifier, make_policy
from repro.core._cbuild import BACKEND_ENV, compiled_module
from repro.core.tj_sp import TJSpawnPaths, TJSpawnPathsLegacy
from repro.core.tj_sp_flat import VECTOR_MIN, FlatTreePy, TJSpawnPathsFlat

HAVE_C = compiled_module() is not None

BACKENDS = ["py"] + (["c"] if HAVE_C else [])

needs_c = pytest.mark.skipif(not HAVE_C, reason="compiled kernel unavailable")


def random_parents(rng, n):
    """A random fork tree as a parent-index list (parents[0] is the root)."""
    return [None] + [rng.randrange(i) for i in range(1, n)]


def grow_all(policies, parents):
    """Replay one fork tree through several policies; vertex lists align."""
    out = [[] for _ in policies]
    for p in parents:
        for verts, policy in zip(out, policies):
            verts.append(policy.add_child(None if p is None else verts[p]))
    return out


# ----------------------------------------------------------------------
# the 1000-tree differential property suite
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_1000_trees_scalar_verdicts_identical(self, backend):
        """legacy == object == flat on every queried pair, 1000 trees."""
        rng = random.Random(0xF1A7)
        for tree in range(1000):
            n = rng.randint(2, 14)
            parents = random_parents(rng, n)
            flat = TJSpawnPathsFlat(backend=backend)
            legacy = TJSpawnPathsLegacy()
            obj = TJSpawnPaths()
            fv, lv, ov = grow_all([flat, legacy, obj], parents)
            for a in range(n):
                for b in range(n):
                    want = legacy.permits(lv[a], lv[b])
                    assert obj.permits(ov[a], ov[b]) == want
                    assert flat.permits(fv[a], fv[b]) == want, (
                        f"tree {tree} ({backend}): disagree on ({a}, {b})"
                    )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_equals_scalar_including_vectorized(self, backend):
        """check_joins == per-pair permits, below and above VECTOR_MIN."""
        rng = random.Random(0xBA7C4)
        for _ in range(60):
            n = rng.randint(2, 120)
            parents = random_parents(rng, n)
            flat = TJSpawnPathsFlat(backend=backend)
            ref = TJSpawnPathsLegacy()
            fv, rv = grow_all([flat, ref], parents)
            for size in (1, 3, VECTOR_MIN - 1, VECTOR_MIN, VECTOR_MIN + 29):
                joiner = rng.randrange(n)
                joinees = [rng.randrange(n) for _ in range(size)]
                want = [ref.permits(rv[joiner], rv[j]) for j in joinees]
                got = flat.permits_many(fv[joiner], [fv[j] for j in joinees])
                assert got == want
                # and again, through the batch verdict cache
                assert flat.permits_many(fv[joiner], [fv[j] for j in joinees]) == want

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_growth_boundaries(self, backend):
        """Verdicts survive every buffer reallocation.

        Both kernels start at capacity 8 and double; a 1000-node chain
        plus a wide star cross many grow events.  Queries are issued
        *while* growing so a stale buffer would be caught immediately.
        """
        flat = TJSpawnPathsFlat(backend=backend)
        ref = TJSpawnPathsLegacy()
        f_root = flat.add_child(None)
        r_root = ref.add_child(None)
        f_chain, r_chain = [f_root], [r_root]
        for i in range(1, 1000):
            f_chain.append(flat.add_child(f_chain[-1]))
            r_chain.append(ref.add_child(r_chain[-1]))
            if i in (7, 8, 15, 16, 31, 63, 127, 255, 511, 999):
                assert flat.permits(f_chain[0], f_chain[-1]) == ref.permits(
                    r_chain[0], r_chain[-1]
                )
                assert flat.permits(f_chain[-1], f_chain[0]) == ref.permits(
                    r_chain[-1], r_chain[0]
                )
        f_star = [flat.add_child(f_root) for _ in range(300)]
        r_star = [ref.add_child(r_root) for _ in range(300)]
        rng = random.Random(5)
        for _ in range(500):
            a, b = rng.randrange(300), rng.randrange(300)
            assert flat.permits(f_star[a], f_star[b]) == ref.permits(
                r_star[a], r_star[b]
            )
        # vectorized pass over the whole grown structure
        everything = f_chain + f_star
        ref_everything = r_chain + r_star
        got = flat.permits_many(f_chain[3], everything)
        want = [ref.permits(r_chain[3], x) for x in ref_everything]
        assert got == want

    @needs_c
    def test_pure_and_compiled_agree_directly(self):
        """The two kernels agree pair-for-pair (no reference needed)."""
        rng = random.Random(0xCAFE)
        for _ in range(200):
            n = rng.randint(2, 40)
            parents = random_parents(rng, n)
            py = TJSpawnPathsFlat(backend="py")
            c = TJSpawnPathsFlat(backend="c")
            pv, cv = grow_all([py, c], parents)
            for _ in range(80):
                a, b = rng.randrange(n), rng.randrange(n)
                assert py.permits(pv[a], pv[b]) == c.permits(cv[a], cv[b])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_path_of_matches_legacy_tuples(self, backend):
        rng = random.Random(0x9A7)
        parents = random_parents(rng, 60)
        flat = TJSpawnPathsFlat(backend=backend)
        legacy = TJSpawnPathsLegacy()
        fv, lv = grow_all([flat, legacy], parents)
        for f, l in zip(fv, lv):
            assert flat.path_of(f) == l.path


# ----------------------------------------------------------------------
# kernel mechanics
# ----------------------------------------------------------------------
class TestFlatKernel:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ids_are_dense_ints(self, backend):
        p = TJSpawnPathsFlat(backend=backend)
        ids = [p.add_child(None)]
        for _ in range(9):
            ids.append(p.add_child(ids[0]))
        assert ids == list(range(10))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_parent_rejected(self, backend):
        p = TJSpawnPathsFlat(backend=backend)
        p.add_child(None)
        with pytest.raises(ValueError):
            p.add_child(7)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_space_units_track_tasks(self, backend):
        p = TJSpawnPathsFlat(backend=backend)
        root = p.add_child(None)
        s0 = p.space_units()
        for _ in range(10):
            p.add_child(root)
        assert p.space_units() == s0 + 40  # 4 slots per vertex

    def test_mirror_sync_is_lazy(self):
        """Pure kernel: forks never touch the NumPy mirrors."""
        pytest.importorskip("numpy")
        t = FlatTreePy()
        root = t.add_child(-1)
        for _ in range(50):
            t.add_child(root)
        assert t._np_synced == 0
        t.permits_many(root, list(range(51)) * 2)  # wide enough to vectorize
        # The sync fence is the reserved high-water mark (thread-affine
        # blocks reserve ahead), so it covers every filled row.
        assert t._np_synced == t.n >= 51

    def test_vector_batch_rejects_unknown_ids(self):
        pytest.importorskip("numpy")
        t = FlatTreePy()
        root = t.add_child(-1)
        kids = [t.add_child(root) for _ in range(VECTOR_MIN)]
        with pytest.raises(ValueError):
            t.permits_many(root, kids[:-1] + [len(t) + 3])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_last_ok_monotone_fast_path(self, backend):
        p = TJSpawnPathsFlat(backend=backend)
        root = p.add_child(None)
        kid = p.add_child(root)
        assert p.permits(root, kid)
        assert p.permits(root, kid)  # served from the last-ok slot
        assert not p.permits(kid, root)


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------
class TestBackendSelection:
    def test_env_py_forces_pure(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "py")
        p = TJSpawnPathsFlat()
        assert p.backend == "py"
        assert isinstance(p._core, FlatTreePy)

    @needs_c
    def test_env_auto_prefers_compiled(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "auto")
        assert TJSpawnPathsFlat().backend == "c"

    @needs_c
    def test_explicit_arg_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "c")
        assert TJSpawnPathsFlat(backend="py").backend == "py"
        monkeypatch.setenv(BACKEND_ENV, "py")
        assert TJSpawnPathsFlat(backend="auto").backend == "py"  # py pin wins

    def test_invalid_choices_raise(self, monkeypatch):
        with pytest.raises(ValueError):
            TJSpawnPathsFlat(backend="fortran")
        monkeypatch.setenv(BACKEND_ENV, "rust")
        with pytest.raises(ValueError):
            TJSpawnPathsFlat()

    def test_registry_name_resolves_to_flat(self):
        p = make_policy("TJ-SP")
        assert isinstance(p, TJSpawnPathsFlat)
        assert p.backend in ("c", "py")
        assert make_policy("TJ-SP-obj").name == "TJ-SP-obj"
        assert make_policy("TJ-SP-legacy").name == "TJ-SP-legacy"


# ----------------------------------------------------------------------
# verdict-cache eviction (the chunked fix, both policies)
# ----------------------------------------------------------------------
class TestChunkedEviction:
    def test_object_policy_evicts_in_chunks(self):
        p = TJSpawnPaths()
        p.CACHE_CAPACITY = 64
        root = p.add_child(None)
        kids = [p.add_child(root) for _ in range(80)]
        for kid in kids[:64]:
            p.permits(kid, root)  # False verdicts: cached, no last-ok
        assert len(p._verdicts) == 64
        p.permits(kids[64], root)  # trips one chunk eviction
        stats = p.cache_stats()
        assert stats["evictions"] == 8  # capacity >> 3
        assert len(p._verdicts) == 64 - 8 + 1
        # steady state: the next few inserts pay no eviction at all
        for kid in kids[65:70]:
            p.permits(kid, root)
        assert p.cache_stats()["evictions"] == 8

    def test_flat_batch_cache_evicts_in_chunks(self):
        p = TJSpawnPathsFlat(backend="py")
        p.BATCH_CACHE_CAPACITY = 16
        root = p.add_child(None)
        kids = [p.add_child(root) for _ in range(40)]
        for kid in kids[:16]:
            p.permits_many(root, [kid])
        assert p.cache_stats() == {"batch_entries": 16, "evictions": 0}
        p.permits_many(root, [kids[16]])
        stats = p.cache_stats()
        assert stats["evictions"] == 2  # 16 >> 3
        assert stats["batch_entries"] == 16 - 2 + 1
        p.permits_many(root, [kids[17]])  # fits in the freed slot
        assert p.cache_stats()["evictions"] == 2

    def test_evicted_entries_recompute_correctly(self):
        p = TJSpawnPathsFlat(backend="py")
        p.BATCH_CACHE_CAPACITY = 8
        root = p.add_child(None)
        kids = [p.add_child(root) for _ in range(30)]
        want = {k: p.permits_many(root, [k])[0] for k in kids}
        for k in kids:  # thrash far past capacity, then re-ask everything
            assert p.permits_many(root, [k]) == [want[k]]


# ----------------------------------------------------------------------
# generic permits_many (the hoisted loop) stays scalar-equivalent
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ["TJ-GT", "TJ-JP", "TJ-OM", "KJ-VC", "KJ-SS"])
def test_generic_permits_many_equals_scalar(name):
    policy = make_policy(name)
    rng = random.Random(0xD00D)
    verts = [policy.add_child(None)]
    for i in range(1, 40):
        verts.append(policy.add_child(verts[rng.randrange(i)]))
    for _ in range(20):
        joiner = verts[rng.randrange(len(verts))]
        joinees = [verts[rng.randrange(len(verts))] for _ in range(12)]
        want = [policy.permits(joiner, j) for j in joinees]
        assert policy.permits_many(joiner, joinees) == want


# ----------------------------------------------------------------------
# the verifier stamps the backend onto its latency histograms
# ----------------------------------------------------------------------
class TestBackendObservability:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_histogram_carries_backend_label(self, backend):
        from repro import obs

        with obs.enabled():
            verifier = Verifier(TJSpawnPathsFlat(backend=backend))
            root = verifier.on_init()
            kid = verifier.on_fork(root)
            verifier.check_join(root, kid)
            labels = dict(verifier._check_hist.labels)
        assert labels == {"policy": "TJ-SP", "backend": backend}

    def test_non_flat_policies_report_py(self):
        from repro import obs

        with obs.enabled():
            verifier = Verifier(make_policy("KJ-VC"))
            labels = dict(verifier._check_hist.labels)
        assert labels == {"policy": "KJ-VC", "backend": "py"}


# ----------------------------------------------------------------------
# the compiled Armus DFS mirrors the Python one
# ----------------------------------------------------------------------
@needs_c
class TestCompiledFindPath:
    def test_matches_python_dfs_on_random_graphs(self):
        from repro.armus.graph import WaitsForGraph

        find_path = compiled_module().find_path
        rng = random.Random(0x60D)
        for _ in range(200):
            n = rng.randint(2, 12)
            g = WaitsForGraph()
            g._c_find_path = None  # force the Python DFS as reference
            succ = {}
            for _ in range(rng.randint(1, 20)):
                a, b = rng.randrange(n), rng.randrange(n)
                succ.setdefault(a, set()).add(b)
                g._add_edge(a, b)
            for src in range(n):
                for dst in range(n):
                    py_path = g._find_path(src, dst)
                    c_path = find_path(succ, src, dst)
                    if py_path is None:
                        assert c_path is None
                    else:
                        # Paths may differ (DFS order), but both must be
                        # real paths with the same endpoints.
                        assert c_path is not None
                        assert c_path[0] == src and c_path[-1] == dst
                        for x, y in zip(c_path, c_path[1:]):
                            assert y in succ.get(x, ())

    def test_graph_uses_compiled_kernel_when_available(self):
        from repro.armus.graph import WaitsForGraph

        g = WaitsForGraph()
        assert g._c_find_path is not None
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        assert g.has_path("a", "c")
        assert not g.has_path("c", "a")
        assert g._find_path("a", "c") == ["a", "b", "c"]
        assert g._find_path("a", "a") == ["a"]
