"""Differential property tests for the interned TJ-SP representation.

The interned prefix-tree ``Less`` (:meth:`TJSpawnPaths._less_nodes`, plus
its caching layers) must be *semantically identical* to the seed
Algorithm 3 tuple scan (:meth:`TJSpawnPaths._less`, still exercised via
the registered ``TJ-SP-legacy`` policy) and to the Algorithm 2 global
tree — on every task pair of every fork tree.  Seeded ``random`` only,
no extra dependencies; the acceptance bar is >= 1000 random trees.
"""

from __future__ import annotations

import random

from repro.core.tj_gt import TJGlobalTree
from repro.core.tj_sp import TJSpawnPaths, TJSpawnPathsLegacy

N_TREES = 1000
SEED = 0x7315D


def _random_parents(rng: random.Random, n_tasks: int) -> list[int]:
    """parents[k] is the parent index of task k (task 0 is the root)."""
    return [rng.randrange(k) for k in range(1, n_tasks)]


def _grow(policy, parents):
    vertices = [policy.add_child(None)]
    for p in parents:
        vertices.append(policy.add_child(vertices[p]))
    return vertices


class TestInternedLessAgreesWithSeedAndGT:
    def test_thousand_random_trees(self):
        rng = random.Random(SEED)
        trees = pairs_checked = 0
        for _ in range(N_TREES):
            n = rng.randint(2, 24)
            parents = _random_parents(rng, n)
            interned = TJSpawnPaths()
            legacy = TJSpawnPathsLegacy()
            gt = TJGlobalTree()
            vi = _grow(interned, parents)
            vl = _grow(legacy, parents)
            vg = _grow(gt, parents)
            # a sample of ordered pairs, always including self-pairs and
            # the root against everyone (the anc+/dec*/equal cases)
            indices = list(range(n))
            sample = [(0, j) for j in indices] + [(j, 0) for j in indices]
            sample += [(j, j) for j in indices]
            sample += [
                (rng.randrange(n), rng.randrange(n)) for _ in range(2 * n)
            ]
            for a, b in sample:
                want = legacy.permits(vl[a], vl[b])
                assert interned.permits(vi[a], vi[b]) == want, (
                    f"interned TJ-SP disagrees with seed on pair ({a}, {b}) "
                    f"of tree {parents}"
                )
                assert gt.permits(vg[a], vg[b]) == want, (
                    f"TJ-GT disagrees on pair ({a}, {b}) of tree {parents}"
                )
                pairs_checked += 1
            trees += 1
        assert trees == N_TREES
        assert pairs_checked > 50 * N_TREES

    def test_exhaustive_small_trees(self):
        """Every ordered pair on every tree of up to 7 tasks (200 trees)."""
        rng = random.Random(SEED + 1)
        for _ in range(200):
            n = rng.randint(2, 7)
            parents = _random_parents(rng, n)
            interned = TJSpawnPaths()
            legacy = TJSpawnPathsLegacy()
            vi = _grow(interned, parents)
            vl = _grow(legacy, parents)
            for a in range(n):
                for b in range(n):
                    assert interned.permits(vi[a], vi[b]) == legacy.permits(
                        vl[a], vl[b]
                    )

    def test_verdict_cache_is_consistent_on_repeats(self):
        """Asking the same pair repeatedly (the barrier pattern) never flips."""
        rng = random.Random(SEED + 2)
        parents = _random_parents(rng, 40)
        policy = TJSpawnPaths()
        vs = _grow(policy, parents)
        pairs = [(rng.randrange(40), rng.randrange(40)) for _ in range(60)]
        first = {pair: policy.permits(vs[pair[0]], vs[pair[1]]) for pair in pairs}
        for _ in range(5):
            for a, b in pairs:
                assert policy.permits(vs[a], vs[b]) == first[(a, b)]

    def test_cache_eviction_preserves_verdicts(self):
        """A capacity-1 cache thrashes constantly yet stays correct."""
        rng = random.Random(SEED + 3)
        parents = _random_parents(rng, 30)
        policy = TJSpawnPaths()
        policy.CACHE_CAPACITY = 1
        legacy = TJSpawnPathsLegacy()
        vi = _grow(policy, parents)
        vl = _grow(legacy, parents)
        for _ in range(3):
            for a in range(30):
                for b in range(30):
                    assert policy.permits(vi[a], vi[b]) == legacy.permits(
                        vl[a], vl[b]
                    )


class TestInternedPathMaterialisation:
    def test_path_property_matches_legacy_tuples(self):
        rng = random.Random(SEED + 4)
        for _ in range(50):
            n = rng.randint(2, 30)
            parents = _random_parents(rng, n)
            vi = _grow(TJSpawnPaths(), parents)
            vl = _grow(TJSpawnPathsLegacy(), parents)
            for a, b in zip(vi, vl):
                assert a.path == b.path

    def test_fork_is_o1_no_tuple_until_asked(self):
        policy = TJSpawnPaths()
        node = policy.add_child(None)
        for _ in range(50):
            node = policy.add_child(node)
        assert node._path is None  # nothing materialised by forking alone
        assert node.path == tuple([0] * 50)
        assert node._path is not None  # now cached

    def test_space_units_linear_in_tasks(self):
        """Interned slots are counted once per unique prefix-tree node."""
        policy = TJSpawnPaths()
        node = policy.add_child(None)
        assert policy.space_units() == 4
        for _ in range(99):
            node = policy.add_child(node)
        # 100 nodes x 4 slots — a 100-deep chain under the legacy tuple
        # accounting would be ~5000 slots
        assert policy.space_units() == 400
        legacy = TJSpawnPathsLegacy()
        lnode = legacy.add_child(None)
        for _ in range(99):
            lnode = legacy.add_child(lnode)
        assert legacy.space_units() > 10 * policy.space_units()
