"""Sharded verifier statistics: exactness under concurrent storms.

The seed ``Verifier`` serialised every event on a global lock; the
sharded version gives each thread a private counter shard and aggregates
on read.  These tests drive concurrent fork/join storms and assert the
aggregated totals are *exactly* the number of events issued — sharding
must not trade away a single count.
"""

from __future__ import annotations

import threading

import pytest

from repro.core import TJSpawnPaths, Verifier
from repro.core.policy import NullPolicy

N_THREADS = 8
FORKS_PER_THREAD = 400
CHECKS_PER_THREAD = 900


@pytest.fixture
def verifier():
    return Verifier(TJSpawnPaths())


class TestShardedCountsExact:
    def test_concurrent_fork_join_storm_sums_exactly(self, verifier):
        root = verifier.on_init()
        # Per the Section 5.1 contract, add_child calls never share a
        # parent: give every thread its own subtree root, created serially.
        subtree_roots = [verifier.on_fork(root) for _ in range(N_THREADS)]
        barrier = threading.Barrier(N_THREADS)

        def storm(i: int) -> None:
            barrier.wait()
            node = subtree_roots[i]
            locals_ = [node]
            for _ in range(FORKS_PER_THREAD):
                node = verifier.on_fork(node)
                locals_.append(node)
            for k in range(CHECKS_PER_THREAD):
                a = locals_[k % len(locals_)]
                b = locals_[(k * 7 + 3) % len(locals_)]
                verifier.check_join(a, b)

        threads = [threading.Thread(target=storm, args=(i,)) for i in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = verifier.stats
        assert stats.forks == 1 + N_THREADS + N_THREADS * FORKS_PER_THREAD
        assert stats.joins_checked == N_THREADS * CHECKS_PER_THREAD
        assert stats.joins_permitted + stats.joins_rejected == stats.joins_checked

    def test_rejections_counted_exactly_across_threads(self):
        verifier = Verifier(TJSpawnPaths())
        root = verifier.on_init()
        children = [verifier.on_fork(root) for _ in range(N_THREADS)]
        rounds = 500
        barrier = threading.Barrier(N_THREADS)

        def hammer(i: int) -> None:
            barrier.wait()
            # child -> root is always rejected (a child may not join an
            # ancestor); root -> child would be permitted.
            for _ in range(rounds):
                assert not verifier.check_join(children[i], root)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = verifier.stats
        assert stats.joins_checked == N_THREADS * rounds
        assert stats.joins_rejected == N_THREADS * rounds
        assert stats.rejection_rate == 1.0

    def test_batch_check_counts_whole_batch(self, verifier):
        root = verifier.on_init()
        kids = [verifier.on_fork(root) for _ in range(10)]
        verdicts = verifier.check_joins(root, kids)
        assert verdicts == [True] * 10
        assert verifier.stats.joins_checked == 10
        assert verifier.stats.joins_rejected == 0
        # mixed batch: joining the root is rejected, joining the older
        # sibling (forked earlier, hence TJ-greater) is permitted
        verdicts = verifier.check_joins(kids[1], [root, kids[0]])
        assert verdicts == [False, True]
        stats = verifier.stats
        assert stats.joins_checked == 12
        assert stats.joins_rejected == 1

    def test_reads_during_writes_are_safe_snapshots(self):
        verifier = Verifier(NullPolicy())
        root = verifier.on_init()
        stop = threading.Event()
        seen: list[int] = []

        def writer() -> None:
            for _ in range(20000):
                verifier.check_join(root, root)
            stop.set()

        def reader() -> None:
            while not stop.is_set():
                snap = verifier.stats
                # monotone, never negative, internally consistent
                assert snap.joins_checked >= 0
                assert snap.joins_permitted + snap.joins_rejected == snap.joins_checked
                seen.append(snap.joins_checked)

        w = threading.Thread(target=writer)
        r = threading.Thread(target=reader)
        w.start(), r.start()
        w.join(), r.join()
        assert verifier.stats.joins_checked == 20000
        assert seen == sorted(seen)  # snapshots are monotone

    def test_shards_survive_thread_death(self, verifier):
        """Counts recorded by a finished thread stay in the aggregate."""
        root = verifier.on_init()

        def once() -> None:
            verifier.check_join(root, root)

        for _ in range(5):
            t = threading.Thread(target=once)
            t.start()
            t.join()
        assert verifier.stats.joins_checked == 5


class TestShardRetirement:
    """Dead threads' shards are folded away, not leaked (thread-per-task
    runtimes would otherwise accumulate one shard per task forever)."""

    def test_shard_list_stays_bounded_under_thread_churn(self, verifier):
        root = verifier.on_init()

        def once() -> None:
            verifier.check_join(root, root)

        for _ in range(100):
            t = threading.Thread(target=once)
            t.start()
            t.join()
            verifier.stats  # reads fold dead shards as they go
        # every one of the 100 worker shards has been retired; at most
        # the current (main) thread's shard may remain live
        assert len(verifier._shards) <= 1

    def test_folding_is_exact_under_churn_and_concurrency(self, verifier):
        """Retirement must not lose or double-count a single event, even
        with reads interleaved with waves of short-lived writers."""
        root = verifier.on_init()
        waves, per_wave, checks = 10, 6, 37

        def storm() -> None:
            sub = verifier.on_fork(root)
            for _ in range(checks):
                verifier.check_join(sub, root)

        for _ in range(waves):
            threads = [threading.Thread(target=storm) for _ in range(per_wave)]
            for t in threads:
                t.start()
            verifier.stats  # concurrent read while writers live
            for t in threads:
                t.join()
        stats = verifier.stats
        assert stats.forks == 1 + waves * per_wave
        assert stats.joins_checked == waves * per_wave * checks
        assert stats.joins_rejected == waves * per_wave * checks
        assert len(verifier._shards) <= 1

    def test_registration_also_folds(self, verifier):
        """Folding happens at shard registration too, so a runtime that
        never reads stats still cannot leak shards."""
        root = verifier.on_init()

        def once() -> None:
            verifier.check_join(root, root)

        for _ in range(50):
            t = threading.Thread(target=once)
            t.start()
            t.join()
        # no stats read in the loop: the next registration prunes
        assert len(verifier._shards) <= 2  # last dead shard + main's
        assert verifier.stats.joins_checked == 50
