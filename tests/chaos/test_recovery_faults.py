"""Chaos coverage for the self-healing layer: quarantine and retry.

``run_with_policy_quarantine`` crashes *every* policy call (a
policy-bug storm, not a verdict) and proves the degraded verifier still
catches every true deadlock via Armus — across the whole policy
registry and both blocking runtimes, in both fail modes.
``run_with_task_retries`` makes seeded leaf tasks fail a fixed number
of times and proves the retry machinery re-runs them to success while
the verifier accounting stays exact.  Both runners assert their full
invariant sets internally (raising ``AssertionError`` on any breach);
the checks here pin the headline numbers a regression would move first.
"""

from __future__ import annotations

import pytest

from repro.core.policy import POLICY_REGISTRY
from repro.testing import (
    run_with_policy_quarantine,
    run_with_task_retries,
)

POLICIES = sorted(POLICY_REGISTRY)
RUNTIMES = ["threaded", "pool"]


@pytest.mark.parametrize("runtime", RUNTIMES)
@pytest.mark.parametrize("policy", POLICIES)
class TestQuarantineChaos:
    """Every policy x both runtimes x both fail modes."""

    def test_fail_open_still_avoids_every_deadlock(self, policy, runtime):
        for seed in range(2):
            result = run_with_policy_quarantine(
                seed, policy=policy, runtime=runtime, fail_mode="open"
            )
            assert result.stats.policy_faults >= 1
            assert result.deadlocks_avoided == result.deadlock_pairs > 0

    def test_fail_closed_refuses_deterministically(self, policy, runtime):
        result = run_with_policy_quarantine(
            0, policy=policy, runtime=runtime, fail_mode="closed", n_children=4
        )
        assert result.stats.policy_faults == 1
        assert result.quarantined_joins == 4


@pytest.mark.parametrize("runtime", RUNTIMES)
class TestRetryChaos:
    def test_flaky_leaves_retry_to_success(self, runtime):
        for seed in (1, 2, 11):
            result = run_with_task_retries(seed, runtime=runtime, fail_attempts=2)
            assert result.flaky_tasks  # the storm actually hit something
            assert result.retries == 2 * len(result.flaky_tasks)

    def test_retry_composes_with_other_policies(self, runtime):
        for policy in ("TJ-OM", "KJ-VC"):
            result = run_with_task_retries(
                3, policy=policy, runtime=runtime, fail_attempts=1
            )
            assert result.retries == len(result.flaky_tasks) > 0
