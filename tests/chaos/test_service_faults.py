"""Chaos coverage for the verification sidecar: kill -9 and link drops.

``run_with_service_faults`` runs a seeded deadlock-free program twice —
all-local (the reference) and against a real sidecar subprocess that the
:class:`FaultPlan` SIGKILLs (or whose TCP link it severs) mid-run — then
restarts the sidecar from its journal, reconciles, and asserts its full
invariant set internally: the workload completed with exact client-side
counts, the journal's verdict stream reached the client's check count,
and every journalled verdict equals the reference run's.  The checks
here pin the headline numbers a regression would move first.
"""

from __future__ import annotations

import pytest

from repro.testing import run_with_service_faults

RUNTIMES = ["threaded", "pool"]


@pytest.mark.parametrize("runtime", RUNTIMES)
class TestSidecarKillChaos:
    def test_kill9_degrades_then_reconciles_with_zero_divergence(self, runtime):
        for seed in (7, 11):
            result = run_with_service_faults(
                seed, runtime=runtime, max_tasks=10, service_crash_rate=1.0
            )
            assert result.sidecar_killed
            assert result.kill_after_checks >= 1
            assert result.degradations >= 1
            # (a kill landing after the final check leaves nothing to
            # replay, so `reconciles` may legitimately be 0)
            assert result.verdict_mismatches == []
            # reconcile restored the server's stats: one journalled
            # verdict per client check (rechecks may add extras)
            assert result.journal_verdicts >= result.remote_stats.joins_checked
            # the remote run checked exactly as many joins as the
            # all-local reference — no join unblocked unverified
            assert (
                result.remote_stats.joins_checked
                == result.local_stats.joins_checked
            )

    def test_verdicts_match_the_reference_run_edge_for_edge(self, runtime):
        result = run_with_service_faults(19, runtime=runtime, max_tasks=12)
        assert result.verdict_mismatches == []
        assert result.remote_stats.joins_rejected == result.local_stats.joins_rejected


class TestConnectionDropChaos:
    def test_link_drops_without_a_crash_still_converge(self):
        result = run_with_service_faults(
            3,
            runtime="threaded",
            max_tasks=12,
            service_crash_rate=0.0,
            connection_drop_rate=0.4,
        )
        assert not result.sidecar_killed
        assert result.drops_injected >= 1
        assert result.degradations >= result.drops_injected
        assert result.verdict_mismatches == []
        assert result.journal_verdicts >= result.remote_stats.joins_checked

    def test_no_faults_at_all_is_a_clean_remote_run(self):
        result = run_with_service_faults(
            5, runtime="threaded", max_tasks=10, service_crash_rate=0.0
        )
        assert not result.sidecar_killed
        assert result.drops_injected == 0
        assert result.verdict_mismatches == []
        assert result.remote_stats.joins_checked == result.local_stats.joins_checked
