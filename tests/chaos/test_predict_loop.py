"""The predict -> simulate -> avoid chaos loop and its repro commands."""

import pytest

from repro.testing.chaos import (
    generate_predict_spec,
    repro_command,
    run_predict_loop,
)


class TestSpecGeneration:
    def test_same_seed_same_spec(self):
        assert generate_predict_spec(3) == generate_predict_spec(3)

    def test_corpus_mixes_cyclic_and_acyclic_programs(self):
        specs = [generate_predict_spec(seed) for seed in range(8)]
        assert any(s.has_cycle for s in specs)
        assert any(not s.has_cycle for s in specs)

    def test_planted_cycles_are_real_join_rings(self):
        spec = generate_predict_spec(0)
        for cycle in spec.planted_cycles:
            for i, task in enumerate(cycle):
                target = cycle[(i + 1) % len(cycle)]
                assert ("join", target) in spec.actions[task]


class TestPredictLoop:
    def test_three_way_invariant_holds_on_the_corpus(self, tmp_path):
        result = run_predict_loop(
            3, seed=0, journal_dir=str(tmp_path), check=False
        )
        assert result.violations == []
        assert result.flagged_programs >= 1
        # the acceptance bar: flags from recorded runs that were clean
        assert result.clean_flagged >= 1
        assert len(result.journals) == 3

    def test_check_mode_raises_on_violations(self, tmp_path, monkeypatch):
        import repro.predict as predict_pkg
        from repro.predict.predictor import PredictionReport
        from repro.testing.chaos import ChaosInvariantError

        def always_skipped(path, **kwargs):
            return PredictionReport(path=path, skipped="forced for the test")

        monkeypatch.setattr(predict_pkg, "predict_deadlocks", always_skipped)
        with pytest.raises(ChaosInvariantError, match="skipped"):
            run_predict_loop(1, seed=0, journal_dir=str(tmp_path), check=True)

    def test_program_id_restricts_the_sweep(self, tmp_path):
        result = run_predict_loop(
            4, seed=0, journal_dir=str(tmp_path), check=False, program_id=2
        )
        assert len(result.journals) == 1
        assert result.journals[0].endswith("predict-2.jsonl")


class TestReproCommand:
    def test_renders_a_single_line(self):
        cmd = repro_command("--predict", 7, 2, programs=4)
        assert cmd == "repro chaos --predict --seed 7 --program-id 2 --programs 4"
        assert "\n" not in cmd

    def test_omits_absent_parts(self):
        assert repro_command("", 0) == "repro chaos --seed 0"
        assert (
            repro_command("--recovery", 1, None, runtimes="threaded")
            == "repro chaos --recovery --seed 1 --runtimes threaded"
        )
