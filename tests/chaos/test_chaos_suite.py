"""The chaos suite: seeded random fork/join programs under fire.

Every registered policy runs every generated program on both blocking
runtimes with crashes and scheduling delays injected from a seeded
:class:`FaultPlan`.  After each run, :func:`run_chaos_program` asserts
the supervised-runtime invariants (exact verifier stats, empty Armus
graph, no leaked BLOCKED states, no watchdog firings, every planned
crash observed).  ``ChaosInvariantError`` from any of the ~200+
programs is a real bug, not flake: the schedule perturbations are
deterministic per seed, so failures replay.
"""

from __future__ import annotations

import pytest

from repro.core.policy import POLICY_REGISTRY
from repro.testing import (
    FaultPlan,
    generate_spec,
    run_chaos_program,
    run_with_verifier_faults,
)

POLICIES = sorted(POLICY_REGISTRY)
RUNTIMES = ["threaded", "pool"]
SEEDS_PER_CELL = 12  # 9 policies x 2 runtimes x 12 seeds = 216 programs


@pytest.mark.parametrize("runtime", RUNTIMES)
@pytest.mark.parametrize("policy", POLICIES)
class TestChaosSweep:
    def test_seeded_programs_hold_every_invariant(self, policy, runtime):
        for seed in range(SEEDS_PER_CELL):
            plan = FaultPlan(seed=seed, delay_rate=0.25, max_delay=0.002)
            result = run_chaos_program(
                seed,
                policy=policy,
                runtime=runtime,
                max_tasks=10,
                crash_rate=0.15,
                plan=plan,
            )
            assert result.violations == []

    def test_crash_free_programs_too(self, policy, runtime):
        """No crashes at all: the pure fork/join invariants still hold
        (this is the cell where a stats or registry leak would hide if
        crash handling were doing the cleanup by accident)."""
        for seed in range(3):
            result = run_chaos_program(
                1000 + seed,
                policy=policy,
                runtime=runtime,
                max_tasks=8,
                crash_rate=0.0,
                plan=FaultPlan(seed=seed, delay_rate=0.3, max_delay=0.002),
            )
            assert result.violations == []
            assert result.failures_observed == frozenset()


@pytest.mark.parametrize("runtime", RUNTIMES)
class TestDelayEquivalence:
    """Verdict streams are schedule-independent for stable policies."""

    @pytest.mark.parametrize(
        "policy", [p for p in POLICIES if POLICY_REGISTRY[p]().stable_permits]
    )
    def test_verdicts_identical_with_and_without_delays(self, policy, runtime):
        for seed in range(4):
            spec = generate_spec(seed, max_tasks=9, crash_rate=0.0)
            plan = FaultPlan(seed=seed, delay_rate=0.5, max_delay=0.003)
            delayed = run_chaos_program(
                spec, policy=policy, runtime=runtime, plan=plan
            )
            calm = run_chaos_program(
                spec, policy=policy, runtime=runtime, plan=plan.without_delays()
            )
            assert delayed.verdicts == calm.verdicts
            assert delayed.violations == [] and calm.violations == []


@pytest.mark.parametrize("runtime", RUNTIMES)
class TestVerifierFaultInjection:
    """A fault raised from inside ``permits`` must leave the verifier
    accounting exact: ``joins_checked == attempts - injected faults``,
    the Armus graph and supervision registry empty."""

    def test_faulty_policy_accounting_is_exact(self, runtime):
        for seed in range(6):
            run_with_verifier_faults(
                seed, policy="TJ-SP", runtime=runtime, fault_rate=0.25
            )

    def test_zero_fault_rate_injects_nothing(self, runtime):
        run_with_verifier_faults(0, policy="TJ-SP", runtime=runtime, fault_rate=0.0)


class TestDeterminism:
    def test_same_seed_same_spec(self):
        assert generate_spec(7) == generate_spec(7)
        assert generate_spec(7) != generate_spec(8)

    def test_fault_plan_sites_are_independent(self):
        plan = FaultPlan(seed=3, crash_rate=0.5)
        # the same site always answers the same; distinct sites are
        # independently seeded, not a shared stream
        assert plan.should_crash(("crash", 1)) == plan.should_crash(("crash", 1))
        answers = {site: plan.should_crash(("crash", site)) for site in range(64)}
        assert len(set(answers.values())) == 2  # both outcomes occur

    def test_without_delays_preserves_crash_decisions(self):
        plan = FaultPlan(seed=11, crash_rate=0.4, delay_rate=0.9)
        calm = plan.without_delays()
        for site in range(64):
            assert plan.should_crash(("t", site)) == calm.should_crash(("t", site))
        assert calm.delay_rate == 0.0
