"""The paper's proofs, executed.

Section 3 defines the TJ permission relation by inference rules and
proves it a deadlock-excluding total order; Section 4 proves it subsumes
Known Joins.  This example doesn't just *test* those statements — it
builds the proof objects:

1. an explicit derivation tree for a transitive permission (the judgment
   KJ cannot make), validated by an independent checker;
2. Lemma 3.8 run as a program: two derivations composed into a third;
3. Theorem 4.3 run as a program: a KJ derivation (with a KJ-learn step)
   translated rule by rule into a TJ derivation;
4. the small-scope model checker sweeping every trace with up to 4 tasks
   and 2 joins.

Run:  python examples/executable_proofs.py
"""

from repro.formal import (
    Fork,
    Init,
    Join,
    check_derivation,
    check_kj_derivation,
    check_soundness,
    check_subsumption,
    compose,
    derive,
    derive_kj,
    translate_kj_to_tj,
)
from repro.formal.kj_derivations import _weaken


def show(deriv, indent=0):
    pad = "  " * indent
    name = type(deriv).__name__
    extra = getattr(deriv, "fork_index", getattr(deriv, "join_index", None))
    at = f" @{extra}" if extra is not None else f" @<{deriv.prefix_len}"
    symbol = "≺" if name.startswith("KJ") else "<"
    print(f"{pad}{name}{at}  ⊢ {deriv.conclusion[0]} {symbol} {deriv.conclusion[1]}")
    premise = getattr(deriv, "premise", None)
    if premise is not None:
        show(premise, indent + 1)


def main() -> None:
    fig1 = [
        Init("a"),
        Fork("a", "b"),
        Fork("b", "c"),
        Fork("a", "d"),
        Fork("d", "e"),
    ]

    print("1) derivation of e < c (Figure 1 right — TJ-only):")
    d_ec = derive(fig1, "e", "c")
    show(d_ec)
    print("   checker accepts:", check_derivation(fig1, d_ec))

    print("\n2) Lemma 3.8: compose d < b and b < c into d < c:")
    d_db = derive(fig1, "d", "b")
    d_bc = derive(fig1, "b", "c")
    d_dc = compose(fig1, d_db, d_bc)
    show(d_dc)
    print("   checker accepts:", check_derivation(fig1, d_dc))

    print("\n3) Theorem 4.3: translate a KJ-learn derivation into TJ:")
    learny = [
        Init("a"),
        Fork("a", "b"),
        Fork("b", "c"),
        Join("a", "b"),  # a learns c
    ]
    kj = _weaken(derive_kj(learny, "a", "c"), len(learny))
    print("   KJ derivation (a ≺ c via learn):")
    show(kj, indent=1)
    print("   KJ checker accepts:", check_kj_derivation(learny, kj))
    tj = translate_kj_to_tj(learny, kj)
    print("   translated TJ derivation:")
    show(tj, indent=1)
    print("   TJ checker accepts:", check_derivation(learny, tj))

    print("\n4) exhaustive small-scope checks:")
    s = check_soundness(max_tasks=4, max_joins=2)
    print(f"   Theorem 3.11 over {s.traces} traces "
          f"({s.satisfying} TJ-valid): {'OK' if s.ok else s.counterexample}")
    s = check_subsumption(max_tasks=4, max_joins=2)
    print(f"   Corollary 4.4 over {s.traces} traces "
          f"({s.satisfying} KJ-valid): {'OK' if s.ok else s.counterexample}")


if __name__ == "__main__":
    main()
