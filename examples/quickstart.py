"""Quickstart: fork tasks, join futures, stay deadlock-free.

Run:  python examples/quickstart.py

Demonstrates the core public API in under a minute:
* create a runtime with an always-on Transitive Joins verifier,
* fork tasks returning Futures, join them from anywhere TJ permits,
* see an illegal join faulted *before* it can deadlock.
"""

from repro import PolicyViolationError, TaskRuntime


def main() -> None:
    # TJ-SP is the paper's evaluated verifier; fallback=False gives pure
    # Algorithm 1 semantics (every policy violation faults immediately).
    rt = TaskRuntime(policy="TJ-SP", fallback=False)

    def leaf(x: int) -> int:
        return x * x

    def branch() -> int:
        futures = [rt.fork(leaf, i) for i in range(4)]
        return sum(f.join() for f in futures)  # parent joins children: rule I

    def root() -> None:
        left = rt.fork(branch)
        right = rt.fork(branch)
        # right was forked after left, so right < left in the TJ order and
        # the *root* may join both in any order (rules I + III):
        total = right.join() + left.join()
        print(f"sum of squares over two branches: {total}")

        # An illegal join: a fresh task trying to join its *own* future.
        import threading

        box = {}
        handed_over = threading.Event()

        def selfish():
            handed_over.wait()
            try:
                box["me"].join()
            except PolicyViolationError as exc:
                return f"verifier said no: {exc}"

        box["me"] = rt.fork(selfish)
        handed_over.set()
        print(box["me"].join())

    rt.run(root)
    stats = rt.verifier.stats
    print(
        f"verified {stats.joins_checked} joins "
        f"({stats.joins_rejected} rejected) across {stats.forks} tasks"
    )


if __name__ == "__main__":
    main()
