"""Phasers and the generalised deadlock model (beyond the paper's scope).

Section 2.4 notes "a high-level event-driven primitive could be used
instead" of Listing 2's spin loop, and scopes non-future primitives out.
This example uses the reproduction's extensions to go there:

1. an iterative stencil where workers synchronise each sweep through a
   phaser (the barrier version of the Jacobi benchmark's join pattern);
2. a *crossed-barrier* bug — two groups waiting on each other's phasers —
   refused by the generalised Armus detector with a recoverable error
   instead of hanging.

Run:  python examples/barrier_pipeline.py
"""

import threading

import numpy as np

from repro import TaskRuntime
from repro.armus.generalized import GeneralizedDetector
from repro.errors import DeadlockAvoidedError
from repro.runtime import Phaser


def stencil_with_phaser() -> None:
    from repro.benchsuite.jacobi import jacobi_reference

    n, sweeps, workers = 64, 8, 4
    initial = np.random.default_rng(0).random((n, n))
    # double buffering: sweep t reads grids[t % 2], writes the other;
    # boundaries are pre-filled in both and never written
    grids = [initial.copy(), initial.copy()]
    rt = TaskRuntime(policy="TJ-SP")
    ph = Phaser(name="sweep")
    rows = np.array_split(np.arange(1, n - 1), workers)
    all_registered = threading.Barrier(workers)

    def worker(my_rows):
        ph.register()
        all_registered.wait()
        lo, hi = my_rows[0], my_rows[-1] + 1
        for t in range(sweeps):
            src, dst = grids[t % 2], grids[(t + 1) % 2]
            dst[lo:hi, 1:-1] = 0.25 * (
                src[lo - 1 : hi - 1, 1:-1]
                + src[lo + 1 : hi + 1, 1:-1]
                + src[lo:hi, :-2]
                + src[lo:hi, 2:]
            )
            # everyone must finish sweep t before anyone reads it in t+1
            ph.signal_and_wait()
        ph.deregister()
        return hi - lo

    def main():
        futs = [rt.fork(worker, r) for r in rows]
        return sum(f.join() for f in futs)

    assert rt.run(main) == n - 2
    final = grids[sweeps % 2]
    ok = np.allclose(final, jacobi_reference(initial, sweeps))
    print(f"stencil: {sweeps} phaser-synchronised sweeps, "
          f"matches sequential reference: {ok}, final phase {ph.phase}")


def crossed_barriers() -> None:
    rt = TaskRuntime(policy="TJ-SP")
    detector = GeneralizedDetector(model="auto")
    p = Phaser(detector, name="P")
    q = Phaser(detector, name="Q")
    p_ready, q_ready = threading.Event(), threading.Event()

    def group_a():
        p.register()
        p_ready.set()
        q_ready.wait()
        try:
            q.wait(0)  # Q can't advance until group_b arrives... who waits on P
            return "a: q advanced"
        except DeadlockAvoidedError as exc:
            return f"a recovered: {exc}"
        finally:
            p.deregister()

    def group_b():
        q.register()
        q_ready.set()
        p_ready.wait()
        try:
            p.wait(0)
            return "b: p advanced"
        except DeadlockAvoidedError as exc:
            return f"b recovered: {exc}"
        finally:
            q.deregister()

    def main():
        fa, fb = rt.fork(group_a), rt.fork(group_b)
        return fa.join(), fb.join()

    ra, rb = rt.run(main)
    print(f"crossed barriers: {ra}")
    print(f"                  {rb}")
    print(f"barrier deadlocks avoided: {detector.stats.deadlocks_avoided} "
          f"(wfg checks {detector.stats.wfg_checks}, sg checks {detector.stats.sg_checks})")


if __name__ == "__main__":
    print(__doc__)
    stencil_with_phaser()
    crossed_barriers()
