"""Record a live execution as a formal trace and analyse it offline.

The TraceRecordingPolicy wraps any verifier and logs the init/fork/join
event stream; the formal layer then answers questions the online
verifier never had to: would this exact run have satisfied KJ?  Where is
the first join KJ rejects?  Is the TJ permission order really total?

Run:  python examples/trace_analysis.py
"""

from repro import TaskRuntime
from repro.core import TJSpawnPaths
from repro.formal import (
    ForkTree,
    KJFamily,
    TJFamily,
    contains_deadlock,
    format_trace,
    validate_trace,
)
from repro.tools import TraceRecordingPolicy


def main() -> None:
    recorder = TraceRecordingPolicy(TJSpawnPaths())
    rt = TaskRuntime(policy=recorder)

    # The Figure 1 (right) program: e joins c directly, *without* anyone
    # first joining b (which would teach KJ about c via KJ-learn) — the
    # handoff of c's future happens through shared memory + an event.
    import threading

    def program():
        c_future = {}
        c_ready = threading.Event()

        def b():
            c_future["c"] = rt.fork(lambda: "c's result")
            c_ready.set()
            return "b's result"

        rt.fork(b)  # never joined before e runs

        def e():
            c_ready.wait()
            return c_future["c"].join()  # transitive join: KJ x, TJ ok

        def d():
            return rt.fork(e).join()

        return rt.fork(d).join()

    print("program result:", rt.run(program))

    trace = recorder.snapshot()
    print("\nrecorded trace:")
    print(format_trace(trace))

    for family in (TJFamily, KJFamily):
        result = validate_trace(trace, family)
        verdict = "accepts" if result.valid else "rejects"
        print(f"\n{result.policy} {verdict} this run")
        for v in result.rejected_joins:
            print(f"  first rejected join: #{v.index} {v.action} — {v.reason}")

    print("\ncontains deadlock per Definition 3.9:", contains_deadlock(trace))

    tree = ForkTree.from_trace(trace)
    print("TJ total order (ascending):", " < ".join(map(str, tree.preorder())))


if __name__ == "__main__":
    main()
