"""Listing 2 (Section 2.4): map-reduce with a shorter critical path.

Mappers are spawned *asynchronously* (the spawning loop is itself a
task), so reducers can start accumulating as soon as individual mappers
appear — before all mappers are even forked.  The reducers join their
*grandparent's* grandchildren:

* always illegal under Known Joins (the reducers never learn the mappers
  exist: they would have to first join the spawner),
* always legal under Transitive Joins (main is transitively permitted to
  join its grandchildren, and the reducers inherit that permission).

The KJ-compliant alternative inserts a join on the spawner task into the
critical path; TJ's acceptance is a genuine critical-path reduction.

Run:  python examples/map_reduce.py
"""

import threading
import time

from repro import TaskRuntime

N = 64  # mappers
C = 4  # reducers


def run_under(policy: str) -> None:
    rt = TaskRuntime(policy=policy)
    mappers: list = [None] * N
    ready = [threading.Event() for _ in range(N)]

    def work(i: int) -> int:
        time.sleep(0.001)
        return i

    def main() -> int:
        def spawn_mappers():
            for i in range(N):
                mappers[i] = rt.fork(work, i)
                ready[i].set()

        rt.fork(spawn_mappers)  # async mapper spawning — never joined!

        def reducer(c: int) -> int:
            acc = 0
            for i in range(c * N // C, (c + 1) * N // C):
                ready[i].wait()  # stand-in for Listing 2's spin loop
                acc += mappers[i].join()  # grandchild join
            return acc

        reducers = [rt.fork(reducer, c) for c in range(C)]
        return sum(r.join() for r in reducers)

    total = rt.run(main)
    det = rt.detector.stats
    print(
        f"{policy:6s}: reduced {total} (expected {N * (N - 1) // 2}); "
        f"fallback used for {det.false_positives}/{rt.verifier.stats.joins_checked} joins"
    )


if __name__ == "__main__":
    print(__doc__)
    run_under("TJ-SP")  # 0 fallback joins
    run_under("KJ-SS")  # every mapper join goes through the fallback
