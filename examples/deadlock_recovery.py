"""Deadlock avoidance as a recoverable exception (Section 1's pitch).

Two workers each hold the other's Future and try to join — a guaranteed
cycle.  Three configurations of the same program:

1. no verification — on the deterministic cooperative runtime the
   scheduler *detects* the deadlock after the fact (a thread runtime
   would simply hang);
2. TJ without fallback — the first out-of-order join faults immediately
   (one false-positive-prone but zero-cost policy fault);
3. TJ + Armus (the paper's evaluated configuration) — only the join that
   would truly close the cycle faults, with a DeadlockAvoidedError the
   task catches to degrade gracefully.

Run:  python examples/deadlock_recovery.py
"""

from repro import (
    CooperativeRuntime,
    DeadlockAvoidedError,
    DeadlockDetectedError,
    PolicyViolationError,
)


def build_program(rt):
    box = {}

    def worker(me: str, other: str):
        while other not in box:
            yield None  # cooperative spin, as in Listing 2
        try:
            partner_value = yield box[other]  # join the other worker
            return f"{me} joined partner and saw {partner_value!r}"
        except (DeadlockAvoidedError, PolicyViolationError) as exc:
            return f"{me} recovered from refused join: {type(exc).__name__}"

    def main():
        box["a"] = rt.fork(worker, "a", "b")
        box["b"] = rt.fork(worker, "b", "a")
        ra = yield box["a"]
        rb = yield box["b"]
        return ra, rb

    return main


def scenario(title, rt):
    print(f"--- {title}")
    try:
        for line in rt.run(build_program(rt)):
            print(f"    {line}")
    except DeadlockDetectedError as exc:
        print(f"    scheduler detected a deadlock: {exc}")
    if rt.detector is not None:
        print(f"    deadlocks avoided: {rt.detector.stats.deadlocks_avoided}")


if __name__ == "__main__":
    print(__doc__)
    scenario("unprotected (detection only)", CooperativeRuntime(policy=None, fallback=False))
    scenario("TJ-SP, no fallback (pure Algorithm 1)", CooperativeRuntime("TJ-SP", fallback=False))
    scenario("TJ-SP + Armus (sound and precise)", CooperativeRuntime("TJ-SP"))
