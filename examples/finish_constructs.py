"""High-level constructs on the verified runtime: finish, accumulator,
Cilk spawn/sync, and asyncio.

The paper positions Futures as the general model subsuming Cilk and
async-finish (Section 1); this example exercises all of them — all
verified by TJ-SP, all deadlock-safe by construction.

Run:  python examples/finish_constructs.py
"""

import asyncio
import operator

from repro import (
    AsyncioRuntime,
    CilkFrame,
    FinishAccumulator,
    TaskRuntime,
    finish,
)


def demo_finish() -> None:
    rt = TaskRuntime(policy="TJ-SP")

    def main():
        with finish(rt) as scope:

            def explore(depth):
                if depth > 0:
                    scope.async_(explore, depth - 1)  # nested spawn
                    scope.async_(explore, depth - 1)
                return 1

            scope.async_(explore, 5)
        return len(scope.results)

    print(f"finish awaited {rt.run(main)} transitively spawned tasks "
          f"({rt.detector.stats.false_positives} fallback joins under TJ)")


def demo_accumulator() -> None:
    rt = TaskRuntime(policy="TJ-SP")

    def main():
        acc = FinishAccumulator(rt, op=operator.add, initial=0)
        for i in range(1, 101):
            acc.put(lambda i=i: i)
        return acc.get()

    print(f"finish accumulator summed 1..100 = {rt.run(main)}")


def demo_cilk() -> None:
    rt = TaskRuntime(policy="TJ-SP")

    def fib(n):
        if n < 2:
            return n
        with CilkFrame(rt) as frame:
            a = frame.spawn(fib, n - 1)
            b = frame.spawn(fib, n - 2)
        return a.join() + b.join()

    print(f"cilk-style fib(15) = {rt.run(fib, 15)}")


def demo_executor() -> None:
    from repro import VerifiedExecutor

    with VerifiedExecutor(max_workers=2, policy="TJ-SP") as ex:

        def fib(n):
            if n < 2:
                return n
            a, b = ex.submit(fib, n - 1), ex.submit(fib, n - 2)
            return a.join() + b.join()

        fut = ex.submit(fib, 12)
        value = ex.result(fut)
    print(f"verified executor: nested fib(12) = {value} on a 2-worker pool "
          f"(grew to {ex.runtime.peak_workers} via compensation — the case "
          "the stdlib ThreadPoolExecutor deadlocks on)")


def demo_asyncio() -> None:
    rt = AsyncioRuntime(policy="TJ-SP")

    async def fetch(i):
        await asyncio.sleep(0)
        return i * i

    async def main():
        futures = [rt.fork(fetch, i) for i in range(10)]
        return sum([await f for f in futures])

    print(f"asyncio adapter summed squares: {asyncio.run(rt.run(main))}")


if __name__ == "__main__":
    print(__doc__)
    demo_finish()
    demo_accumulator()
    demo_cilk()
    demo_executor()
    demo_asyncio()
