"""Reproduce the paper's evaluation end-to-end (Tables 1-2, Figure 2).

This is the script-level equivalent of the artifact's experiment
workflow (Appendix A.5): run every benchmark under the baseline and each
verifier, then print the overhead table and the execution-time chart.

Run:  python examples/run_evaluation.py [--quick]

``--quick`` shrinks parameters and repetitions for a <1 minute pass; the
default takes a few minutes.  Either way the *shape* of the results —
which verifier wins where, and NQueens being the only fallback trigger —
matches Table 2; see EXPERIMENTS.md for the paper-vs-measured record.
"""

import argparse
import sys

from repro.analysis import (
    measure_policy_costs,
    render_figure2,
    render_table1,
    render_table2,
)
from repro.benchsuite import ALL_BENCHMARKS, Harness
from repro.formal.generators import balanced_fork_trace, chain_fork_trace, star_fork_trace

QUICK = {
    "Jacobi": {"n": 96, "blocks": 4, "iterations": 4},
    "Smith-Waterman": {"length": 240, "chunks": 6},
    "Crypt": {"size_bytes": 256 * 1024, "tasks": 128},
    "Strassen": {"n": 128, "cutoff": 64},
    "Series": {"coefficients": 300, "samples": 100},
    "NQueens": {"n": 8, "cutoff": 3},
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    args = parser.parse_args(argv)

    reps = 3 if args.quick else 7
    overrides = {k.replace("-", "_"): v for k, v in QUICK.items()} if args.quick else {}

    print("=" * 72)
    print("Table 1 — empirical verifier complexity")
    print("=" * 72)
    sizes = [256, 2048] if args.quick else [256, 1024, 4096]
    points = []
    for policy in ("KJ-VC", "KJ-SS", "KJ-CC", "TJ-GT", "TJ-JP", "TJ-SP", "TJ-OM"):
        for shape, gen in (
            ("chain", chain_fork_trace),
            ("star", star_fork_trace),
            ("balanced", balanced_fork_trace),
        ):
            for n in sizes:
                points.append(measure_policy_costs(policy, shape, gen(n), queries=500))
    print(render_table1(points))

    harness = Harness(repetitions=reps, warmup=1, policies=("KJ-VC", "KJ-SS", "TJ-SP"))
    reports = harness.measure_suite(ALL_BENCHMARKS, **overrides)

    print()
    print("=" * 72)
    print("Table 2 — runtime and memory overheads for verification")
    print("=" * 72)
    print(render_table2(reports))

    print()
    print("=" * 72)
    print("Figure 2 — execution times with 95% confidence intervals")
    print("=" * 72)
    print(render_figure2(reports))

    print()
    print("fallback activity (NQueens should be the only non-zero KJ row):")
    for r in reports:
        fps = {p: m.false_positives for p, m in r.policies.items()}
        print(f"  {r.name:<15} {fps}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
