"""Listing 1 (Section 2.3): unordered join on all descendants.

A divide-and-conquer routine where every recursive task pushes its own
Future onto a shared queue, and main joins whatever it pops — parents and
children in no particular order.  This is the natural implementation of
the `finish` construct, and it is exactly the pattern that:

* is always accepted by Transitive Joins (main transitively may join any
  descendant), and
* nondeterministically violates Known Joins (main may pop a grandchild
  before its parent).

Run:  python examples/divide_and_conquer.py
"""

import queue

from repro import TaskRuntime


def run_under(policy: str) -> None:
    rt = TaskRuntime(policy=policy)  # hybrid: Armus filters false positives
    tasks: "queue.SimpleQueue" = queue.SimpleQueue()

    def f(depth: int) -> int:
        if depth == 0:
            return 1
        # children launch before being enqueued; no ordering guarantees
        tasks.put(rt.fork(f, depth - 1))
        tasks.put(rt.fork(f, depth - 1))
        return 1

    def main() -> int:
        tasks.put(rt.fork(f, 5))
        result = 0
        while True:
            try:
                fut = tasks.get_nowait()
            except queue.Empty:
                break
            # May join any descendant.  Sound because a join only unblocks
            # after the joinee terminated — and it enqueued its children
            # before terminating — so an empty queue means no task is left.
            result += fut.join()
        return result

    total = rt.run(main)
    det = rt.detector.stats
    print(
        f"{policy:6s}: counted {total} tasks; "
        f"{det.false_positives} joins needed the cycle-detection fallback"
    )


if __name__ == "__main__":
    print(__doc__)
    run_under("TJ-SP")  # never triggers the fallback
    run_under("KJ-SS")  # may trigger it, depending on scheduling
