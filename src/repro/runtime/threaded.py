"""The blocking (thread-per-task) runtime.

This is the Python analogue of Habanero-Java's blocking work-sharing
runtime used for five of the six evaluation benchmarks: every ``fork``
starts an OS thread, and a join blocks the calling thread until the
joinee terminates.

Instrumentation: every fork funnels through ``AddChild`` and every join
through the policy gate (Algorithm 1), optionally composed with the Armus
fallback (the Section 6 configuration).  With ``policy=None`` joins are
unchecked — the overhead baseline.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Sequence, Union

from .context import require_current_task, task_scope
from .future import Future
from .task import TaskHandle, TaskState
from ..armus.hybrid import HybridVerifier
from ..core.policy import JoinPolicy, NullPolicy, make_policy
from ..core.verifier import Verifier
from ..errors import PolicyViolationError, RuntimeStateError, TaskFailedError

__all__ = ["TaskRuntime", "resolve_policy"]


def resolve_policy(policy: Union[None, str, JoinPolicy]) -> JoinPolicy:
    """Accept a policy instance, a registered name, or None (unchecked)."""
    if policy is None:
        return NullPolicy()
    if isinstance(policy, str):
        return make_policy(policy)
    return policy


class TaskRuntime:
    """Thread-per-task futures runtime with pluggable join verification.

    Parameters
    ----------
    policy:
        A :class:`JoinPolicy`, a registered policy name (``"TJ-SP"``,
        ``"KJ-VC"``, ...), or None for the unchecked baseline.
    fallback:
        When True (default), policy rejections are referred to Armus cycle
        detection: false positives proceed, real cycles raise
        :class:`~repro.errors.DeadlockAvoidedError`.  When False, a
        rejection faults immediately with
        :class:`~repro.errors.PolicyViolationError` (pure Algorithm 1).

    A runtime instance hosts exactly one root task (one :meth:`run` call):
    the verifier data structures assume a single fork tree.
    """

    def __init__(
        self,
        policy: Union[None, str, JoinPolicy] = "TJ-SP",
        *,
        fallback: bool = True,
    ) -> None:
        policy_obj = resolve_policy(policy)
        self._hybrid: Optional[HybridVerifier] = HybridVerifier(policy_obj) if fallback else None
        self._verifier: Verifier = self._hybrid.verifier if self._hybrid else Verifier(policy_obj)
        self._root_started = False
        self._threads_started = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def policy(self) -> JoinPolicy:
        return self._verifier.policy

    @property
    def verifier(self) -> Verifier:
        return self._verifier

    @property
    def detector(self):
        """The Armus detector, or None when ``fallback=False``."""
        return self._hybrid.detector if self._hybrid else None

    @property
    def threads_started(self) -> int:
        return self._threads_started

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute *fn* as the root task in the calling thread.

        Returns *fn*'s result; exceptions propagate unchanged.
        """
        with self._lock:
            if self._root_started:
                raise RuntimeStateError(
                    "this runtime already hosted a root task; create a fresh "
                    "TaskRuntime per program run"
                )
            self._root_started = True
        vertex = self._verifier.on_init()
        root = TaskHandle(vertex, code=fn, name="root")
        root.state = TaskState.RUNNING
        with task_scope(root):
            try:
                result = fn(*args, **kwargs)
                root.state = TaskState.DONE
                return result
            except BaseException:
                root.state = TaskState.FAILED
                raise

    def fork(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """``async fn(*args)``: start *fn* in a new task; return its Future.

        Must be called from inside a task of this runtime (the forking task
        determines the new vertex's parent).
        """
        parent = require_current_task()
        vertex = self._verifier.on_fork(parent.vertex)
        task = TaskHandle(vertex, code=fn, parent_uid=parent.uid)
        future = Future(self, task)
        thread = threading.Thread(
            target=self._task_main,
            args=(task, future, fn, args, kwargs),
            name=task.name,
            daemon=True,
        )
        with self._lock:
            self._threads_started += 1
        task.state = TaskState.RUNNING
        thread.start()
        return future

    def _task_main(
        self,
        task: TaskHandle,
        future: Future,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        with task_scope(task):
            try:
                value = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - delivered at join
                task.state = TaskState.FAILED
                future._set_exception(exc)
            else:
                task.state = TaskState.DONE
                future._set_result(value)

    # ------------------------------------------------------------------
    # the join operation (called via Future.join)
    # ------------------------------------------------------------------
    def join(self, future: Future) -> Any:
        if future._runtime is not self:
            raise RuntimeStateError("future belongs to a different runtime")
        joiner = require_current_task()
        return self._join_one(joiner, future, None)

    def join_batch(
        self, futures: Sequence[Future], *, return_exceptions: bool = False
    ) -> list:
        """Join several futures, verifying the whole batch in one call.

        For ``stable_permits`` policies (all TJ variants and the null
        baseline) the permission verdicts are precomputed with one
        ``Verifier.check_joins`` call — one stats update and one pass
        through the policy's ``permits_many`` for the whole batch —
        and the joins then proceed without re-checking.  Learning (KJ)
        policies fall back to per-future verification, since their
        verdicts may flip as earlier joins in the batch teach knowledge.

        Results are returned in input order.  With
        ``return_exceptions=True``, a failed task contributes its
        :class:`~repro.errors.TaskFailedError` in place of a result
        instead of raising (policy faults and avoided deadlocks always
        raise).
        """
        futures = list(futures)
        for f in futures:
            if f._runtime is not self:
                raise RuntimeStateError("future belongs to a different runtime")
        if not futures:
            return []
        joiner = require_current_task()
        if self._verifier.policy.stable_permits:
            verdicts = self._verifier.check_joins(
                joiner.vertex, [f.task.vertex for f in futures]
            )
            flags: list[Optional[bool]] = [not ok for ok in verdicts]
        else:
            flags = [None] * len(futures)
        results = []
        for future, flagged in zip(futures, flags):
            try:
                results.append(self._join_one(joiner, future, flagged))
            except TaskFailedError as exc:
                if not return_exceptions:
                    raise
                results.append(exc)
        return results

    def _join_one(self, joiner, future: Future, flagged: Optional[bool]) -> Any:
        """Join one future; ``flagged`` is a precomputed verdict or None."""
        joinee = future.task
        if self._hybrid is not None:
            blocked = self._hybrid.begin_join(
                joiner,
                joinee,
                joiner.vertex,
                joinee.vertex,
                joinee_done=future.done(),
                flagged=flagged,
            )
            if blocked:
                prev_state = joiner.state
                joiner.state = TaskState.BLOCKED
                try:
                    future._wait()
                finally:
                    self._hybrid.end_join(joiner, joinee)
                    joiner.state = prev_state
            self._hybrid.on_join_completed(joiner.vertex, joinee.vertex)
        else:
            if flagged is None:
                self._verifier.require_join(joiner.vertex, joinee.vertex)
            elif flagged:
                raise PolicyViolationError(
                    self._verifier.policy.name, joiner.vertex, joinee.vertex
                )
            prev_state = joiner.state
            joiner.state = TaskState.BLOCKED
            try:
                future._wait()
            finally:
                joiner.state = prev_state
            self._verifier.on_join_completed(joiner.vertex, joinee.vertex)
        return future._result_now()
