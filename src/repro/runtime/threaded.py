"""The blocking (thread-per-task) runtime.

This is the Python analogue of Habanero-Java's blocking work-sharing
runtime used for five of the six evaluation benchmarks: every ``fork``
starts an OS thread, and a join blocks the calling thread until the
joinee terminates.

Instrumentation: every fork funnels through ``AddChild`` and every join
through the policy gate (Algorithm 1), optionally composed with the Armus
fallback (the Section 6 configuration).  With ``policy=None`` joins are
unchecked — the overhead baseline.

Joins are *supervised* (see :mod:`repro.runtime.supervisor`): they
accept deadlines, observe cooperative cancellation, and — with the
watchdog enabled (the default) — a true join cycle terminates every
blocked task with :class:`~repro.errors.DeadlockDetectedError` instead
of hanging, even in configurations the avoidance machinery does not
cover.  All blocked waits are interruptible poll loops, so Ctrl-C works
while the main thread is blocked in a join.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Union

from .context import require_current_task, task_scope
from .future import Future
from .supervisor import StallWatchdog, SupervisedJoinMixin
from .task import TaskHandle, TaskState
from ..armus.hybrid import HybridVerifier
from ..core.policy import JoinPolicy, NullPolicy, make_policy
from ..core.verifier import Verifier
from ..errors import RuntimeStateError

__all__ = ["TaskRuntime", "resolve_policy"]


def resolve_policy(policy: Union[None, str, JoinPolicy]) -> JoinPolicy:
    """Accept a policy instance, a registered name, or None (unchecked)."""
    if policy is None:
        return NullPolicy()
    if isinstance(policy, str):
        return make_policy(policy)
    return policy


class TaskRuntime(SupervisedJoinMixin):
    """Thread-per-task futures runtime with pluggable join verification.

    Parameters
    ----------
    policy:
        A :class:`JoinPolicy`, a registered policy name (``"TJ-SP"``,
        ``"KJ-VC"``, ...), or None for the unchecked baseline.
    fallback:
        When True (default), policy rejections are referred to Armus cycle
        detection: false positives proceed, real cycles raise
        :class:`~repro.errors.DeadlockAvoidedError`.  When False, a
        rejection faults immediately with
        :class:`~repro.errors.PolicyViolationError` (pure Algorithm 1).
    default_join_timeout:
        Runtime-wide deadline (seconds) applied to every join that does
        not pass an explicit ``timeout``; None (default) means unbounded.
    watchdog:
        True (default) to supervise blocked joins with a
        :class:`~repro.runtime.supervisor.StallWatchdog`; a float to set
        its scan interval; an existing watchdog instance to share one;
        False to disable.
    on_unjoined_failure:
        What :meth:`run` does about tasks that failed but whose futures
        were never joined: ``"warn"`` (default), ``"raise"`` (re-raise
        the first such failure as :class:`TaskFailedError`), or
        ``"ignore"``.  Best-effort on this runtime: ``run`` returns when
        the *root* returns, so only failures recorded by then are seen.

    A runtime instance hosts exactly one root task (one :meth:`run` call):
    the verifier data structures assume a single fork tree.
    """

    def __init__(
        self,
        policy: Union[None, str, JoinPolicy] = "TJ-SP",
        *,
        fallback: bool = True,
        default_join_timeout: Optional[float] = None,
        watchdog: Union[bool, float, StallWatchdog] = True,
        watchdog_interval: float = 0.1,
        on_unjoined_failure: str = "warn",
    ) -> None:
        policy_obj = resolve_policy(policy)
        self._hybrid: Optional[HybridVerifier] = HybridVerifier(policy_obj) if fallback else None
        self._verifier: Verifier = self._hybrid.verifier if self._hybrid else Verifier(policy_obj)
        self._root_started = False
        self._threads_started = 0
        self._lock = threading.Lock()
        self._init_supervision(
            default_join_timeout=default_join_timeout,
            watchdog=watchdog,
            watchdog_interval=watchdog_interval,
            on_unjoined_failure=on_unjoined_failure,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def policy(self) -> JoinPolicy:
        return self._verifier.policy

    @property
    def verifier(self) -> Verifier:
        return self._verifier

    @property
    def detector(self):
        """The Armus detector, or None when ``fallback=False``."""
        return self._hybrid.detector if self._hybrid else None

    @property
    def threads_started(self) -> int:
        return self._threads_started

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute *fn* as the root task in the calling thread.

        Returns *fn*'s result; exceptions propagate unchanged.  On a
        clean return, failures of never-joined futures recorded so far
        are surfaced per ``on_unjoined_failure``.
        """
        with self._lock:
            if self._root_started:
                raise RuntimeStateError(
                    "this runtime already hosted a root task; create a fresh "
                    "TaskRuntime per program run"
                )
            self._root_started = True
        vertex = self._verifier.on_init()
        root = TaskHandle(vertex, code=fn, name="root")
        root.state = TaskState.RUNNING
        with task_scope(root):
            try:
                result = fn(*args, **kwargs)
                root.state = TaskState.DONE
            except BaseException:
                root.state = TaskState.FAILED
                raise
        self._reap_unjoined()
        return result

    def fork(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """``async fn(*args)``: start *fn* in a new task; return its Future.

        Must be called from inside a task of this runtime (the forking task
        determines the new vertex's parent).  Forking is a cancellation
        point: a cancelled task faults here with
        :class:`~repro.errors.TaskCancelledError` instead of growing the
        tree further.
        """
        parent = require_current_task()
        parent.cancel_token.raise_if_cancelled(parent)
        vertex = self._verifier.on_fork(parent.vertex)
        task = TaskHandle(vertex, code=fn, parent_uid=parent.uid)
        future = Future(self, task)
        thread = threading.Thread(
            target=self._task_main,
            args=(task, future, fn, args, kwargs),
            name=task.name,
            daemon=True,
        )
        with self._lock:
            self._threads_started += 1
        task.state = TaskState.RUNNING
        thread.start()
        return future

    def _task_main(
        self,
        task: TaskHandle,
        future: Future,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        with task_scope(task):
            try:
                value = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - delivered at join
                task.state = TaskState.FAILED
                future._set_exception(exc)
            else:
                task.state = TaskState.DONE
                future._set_result(value)

    # join / join_batch / _join_one are provided by SupervisedJoinMixin.
