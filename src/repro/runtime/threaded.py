"""The blocking (thread-per-task) runtime.

This is the Python analogue of Habanero-Java's blocking work-sharing
runtime used for five of the six evaluation benchmarks: every ``fork``
gives the task a dedicated OS thread for its whole lifetime, and a join
blocks the calling thread until the joinee terminates.

``fork`` itself runs on a **pooled fast path**: a terminated task's
thread parks on a private handoff channel for ``idle_timeout`` seconds
(bounded to ``max_idle`` parked threads) and the next fork hands its
task straight to a parked thread instead of paying OS thread start-up
cost.  The model is unchanged — a running task still owns one thread
exclusively — only thread *creation* is amortised, which is where most
of the baseline fork cost went.  ``tasks_started`` counts forks;
``threads_started`` counts real OS threads (``<=`` forks).

Instrumentation: every fork funnels through ``AddChild`` and every join
through the policy gate (Algorithm 1), optionally composed with the Armus
fallback (the Section 6 configuration).  With ``policy=None`` joins are
unchecked — the overhead baseline.

Joins are *supervised* (see :mod:`repro.runtime.supervisor`): they
accept deadlines, observe cooperative cancellation, and — with the
watchdog enabled (the default) — a true join cycle terminates every
blocked task with :class:`~repro.errors.DeadlockDetectedError` instead
of hanging, even in configurations the avoidance machinery does not
cover.  Blocked waits are event-driven (a targeted notify per state
change); the main thread additionally re-checks on a coarse tick so
Ctrl-C works while it is blocked in a join.
"""

from __future__ import annotations

import threading
import time
from queue import Empty, SimpleQueue
from time import perf_counter_ns
from typing import Any, Callable, Optional, Union

from .context import require_current_task, task_scope
from .future import Future
from .retry import RetryPolicy
from .supervisor import StallWatchdog, SupervisedJoinMixin
from .task import TaskHandle, TaskState
from ..armus.hybrid import HybridVerifier
from ..core.policy import JoinPolicy, NullPolicy, make_policy
from ..core.verifier import Verifier
from ..errors import RuntimeStateError

__all__ = ["TaskRuntime", "resolve_policy", "resolve_verifier"]

_STOP = object()


def resolve_policy(policy: Union[None, str, JoinPolicy]) -> JoinPolicy:
    """Accept a policy instance, a registered name, or None (unchecked)."""
    if policy is None:
        return NullPolicy()
    if isinstance(policy, str):
        return make_policy(policy)
    return policy


def resolve_verifier(
    policy_obj: JoinPolicy,
    *,
    fallback: bool,
    fail_mode: str,
    journal: "Union[None, str, object]",
    verifier: "Union[None, str, Verifier]",
    runtime_name: str,
) -> tuple:
    """The construction block the blocking runtimes share.

    Resolves the journal (path string → owned :class:`TraceJournal`) and
    the verifier: None builds the usual local verifier; a
    ``"remote://host:port"`` string builds an *owned*
    :class:`~repro.service.client.RemoteVerifier` (closed when the
    runtime's ``run`` exits); a verifier instance is used as-is and left
    open (tests and chaos harnesses inspect it after the run).  When
    ``fallback`` is set the verifier — local or remote — sits inside a
    :class:`HybridVerifier`, which is what makes remote degradation
    sound: a degraded remote verifier reports ``unsound`` and Armus
    force-checks every blocking join.

    Returns ``(hybrid, verifier, journal, owns_journal, owns_verifier)``.
    """
    owns_journal = isinstance(journal, str)
    if owns_journal:
        from ..tools.journal import TraceJournal  # deferred: import cycle

        journal = TraceJournal(journal)
    owns_verifier = isinstance(verifier, str)
    if owns_verifier:
        from ..service.client import RemoteVerifier  # deferred: import cycle

        verifier = RemoteVerifier(
            verifier, policy_obj, fail_mode=fail_mode, journal=journal
        )
    if verifier is not None:
        hybrid = (
            HybridVerifier(policy_obj, fail_mode=fail_mode, verifier=verifier)
            if fallback
            else None
        )
        verifier_obj = verifier
    else:
        hybrid = (
            HybridVerifier(policy_obj, fail_mode=fail_mode, journal=journal)
            if fallback
            else None
        )
        verifier_obj = (
            hybrid.verifier
            if hybrid
            else Verifier(policy_obj, fail_mode=fail_mode, journal=journal)
        )
    if journal is not None:
        journal.log_start(
            policy=policy_obj.name, runtime=runtime_name, fail_mode=fail_mode
        )
    return hybrid, verifier_obj, journal, owns_journal, owns_verifier


class TaskRuntime(SupervisedJoinMixin):
    """Thread-per-task futures runtime with pluggable join verification.

    Parameters
    ----------
    policy:
        A :class:`JoinPolicy`, a registered policy name (``"TJ-SP"``,
        ``"KJ-VC"``, ...), or None for the unchecked baseline.
    fallback:
        When True (default), policy rejections are referred to Armus cycle
        detection: false positives proceed, real cycles raise
        :class:`~repro.errors.DeadlockAvoidedError`.  When False, a
        rejection faults immediately with
        :class:`~repro.errors.PolicyViolationError` (pure Algorithm 1).
    idle_timeout:
        How long (seconds) a thread whose task terminated stays parked
        awaiting reuse by a later fork; 0 disables pooling entirely
        (every fork starts a thread, the seed behaviour).
    max_idle:
        Bound on concurrently parked idle threads; excess threads exit
        as soon as their task terminates.
    fail_mode:
        Fault boundary around policy internals (see
        :class:`~repro.core.verifier.Verifier`): ``"raise"`` (default)
        propagates policy bugs, ``"open"`` quarantines the policy and
        degrades to Armus-only checking, ``"closed"`` quarantines and
        fails every later verification deterministically with
        :class:`~repro.errors.PolicyQuarantinedError`.
    journal:
        A :class:`~repro.tools.journal.TraceJournal`, or a path string
        (the runtime then creates the journal and closes it when
        :meth:`run` exits); None (default) disables journaling.
    verifier:
        ``"remote://host:port"`` to verify against the verification
        sidecar (the runtime builds a
        :class:`~repro.service.client.RemoteVerifier` and closes it when
        :meth:`run` exits), or a ready verifier instance (left open —
        chaos harnesses inspect it after the run); None (default) builds
        the local verifier from *policy*.  With ``fallback=True`` a
        degraded remote verifier stays sound: Armus force-checks every
        blocking join until the sidecar is back.
    default_join_timeout:
        Runtime-wide deadline (seconds) applied to every join that does
        not pass an explicit ``timeout``; None (default) means unbounded.
    watchdog:
        True (default) to supervise blocked joins with a
        :class:`~repro.runtime.supervisor.StallWatchdog`; a float to set
        its scan interval; an existing watchdog instance to share one;
        False to disable.
    on_unjoined_failure:
        What :meth:`run` does about tasks that failed but whose futures
        were never joined: ``"warn"`` (default), ``"raise"`` (re-raise
        the first such failure as :class:`TaskFailedError`), or
        ``"ignore"``.  Best-effort on this runtime: ``run`` returns when
        the *root* returns, so only failures recorded by then are seen.
    clock:
        The supervision clock (deadlines, watchdog ticks, retry
        backoff); None (default) uses the wall clock.  A
        :class:`~repro.runtime.sim.VirtualClock` makes every timed wait
        deterministic.

    A runtime instance hosts exactly one root task (one :meth:`run` call):
    the verifier data structures assume a single fork tree.
    """

    def __init__(
        self,
        policy: Union[None, str, JoinPolicy] = "TJ-SP",
        *,
        fallback: bool = True,
        fail_mode: str = "raise",
        journal: Union[None, str, object] = None,
        verifier: Union[None, str, Verifier] = None,
        idle_timeout: float = 2.0,
        max_idle: int = 32,
        default_join_timeout: Optional[float] = None,
        watchdog: Union[bool, float, StallWatchdog] = True,
        watchdog_interval: float = 0.1,
        on_unjoined_failure: str = "warn",
        clock=None,
    ) -> None:
        if idle_timeout < 0:
            raise ValueError("idle_timeout must be non-negative")
        if max_idle < 0:
            raise ValueError("max_idle must be non-negative")
        policy_obj = resolve_policy(policy)
        (
            self._hybrid,
            self._verifier,
            self._journal,
            self._owns_journal,
            self._owns_verifier,
        ) = resolve_verifier(
            policy_obj,
            fallback=fallback,
            fail_mode=fail_mode,
            journal=journal,
            verifier=verifier,
            runtime_name=type(self).__name__,
        )
        self._root_started = False
        self._threads_started = 0
        self._tasks_started = 0
        self._idle_timeout = idle_timeout
        self._max_idle = max_idle
        # LIFO stack of parked workers' handoff channels: the most
        # recently parked thread (warmest stack/caches) is reused first.
        self._idle_workers: list[SimpleQueue] = []
        self._idle_enabled = idle_timeout > 0 and max_idle > 0
        self._lock = threading.Lock()
        self._init_supervision(
            default_join_timeout=default_join_timeout,
            watchdog=watchdog,
            watchdog_interval=watchdog_interval,
            on_unjoined_failure=on_unjoined_failure,
            clock=clock,
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def policy(self) -> JoinPolicy:
        return self._verifier.policy

    @property
    def verifier(self) -> Verifier:
        return self._verifier

    @property
    def detector(self):
        """The Armus detector, or None when ``fallback=False``."""
        return self._hybrid.detector if self._hybrid else None

    @property
    def journal(self):
        """The trace journal, or None when journaling is disabled."""
        return self._journal

    @property
    def threads_started(self) -> int:
        """OS threads actually created (``<= tasks_started`` with pooling)."""
        return self._threads_started

    @property
    def tasks_started(self) -> int:
        """Tasks forked (the seed's per-fork thread count)."""
        return self._tasks_started

    @property
    def idle_threads(self) -> int:
        """Threads currently parked awaiting reuse."""
        with self._lock:
            return len(self._idle_workers)

    def _metrics_snapshot(self) -> dict:
        out = super()._metrics_snapshot()
        out["tasks_started"] = self._tasks_started
        out["threads_started"] = self._threads_started
        out["idle_threads"] = self.idle_threads
        return out

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute *fn* as the root task in the calling thread.

        Returns *fn*'s result; exceptions propagate unchanged.  On exit
        the idle thread pool is drained (parked threads stop; tasks
        still running are unaffected) and, on a clean return, failures
        of never-joined futures recorded so far are surfaced per
        ``on_unjoined_failure``.
        """
        with self._lock:
            if self._root_started:
                raise RuntimeStateError(
                    "this runtime already hosted a root task; create a fresh "
                    "TaskRuntime per program run"
                )
            self._root_started = True
        vertex = self._verifier.on_init()
        root = TaskHandle(vertex, code=fn, name="root")
        root.state = TaskState.RUNNING
        try:
            with task_scope(root):
                obs = self._obs
                tracer = obs.tracer if obs is not None else None
                handle = tracer.begin_span("run") if tracer is not None else None
                try:
                    result = fn(*args, **kwargs)
                    root.state = TaskState.DONE
                except BaseException:
                    root.state = TaskState.FAILED
                    raise
                finally:
                    if tracer is not None:
                        tracer.end_span(handle, args={"task": root.name})
        finally:
            self._drain_idle_workers()
            if self._owns_verifier:
                self._verifier.close()
            if self._journal is not None and self._owns_journal:
                self._journal.close()
        self._reap_unjoined()
        return result

    def _drain_idle_workers(self) -> None:
        with self._lock:
            self._idle_enabled = False
            channels = list(self._idle_workers)
            self._idle_workers.clear()
        for channel in channels:
            channel.put(_STOP)

    def fork(
        self, fn: Callable[..., Any], *args: Any, retry: Optional[RetryPolicy] = None, **kwargs: Any
    ) -> Future:
        """``async fn(*args)``: start *fn* in a new task; return its Future.

        Must be called from inside a task of this runtime (the forking task
        determines the new vertex's parent).  Forking is a cancellation
        point: a cancelled task faults here with
        :class:`~repro.errors.TaskCancelledError` instead of growing the
        tree further.

        ``retry`` (a :class:`~repro.runtime.retry.RetryPolicy`) makes a
        failing task body re-run with exponential backoff; each attempt
        is a fresh fork policy-wise (new vertex under the same parent),
        and the future only completes with the final attempt's outcome —
        joiners block straight through intermediate failures.
        """
        parent = require_current_task()
        parent.cancel_token.raise_if_cancelled(parent)
        obs = self._obs
        if obs is not None:
            _t0 = perf_counter_ns()
        if retry is not None and parent.fork_lock is None:
            # Retry re-forks run on whatever thread observed the failure
            # and race the parent's own forks; Section 5.1 forbids two
            # concurrent AddChild calls on one parent, so serialise them.
            parent.fork_lock = threading.Lock()
        lock = parent.fork_lock
        if lock is not None:
            with lock:
                vertex = self._verifier.on_fork(parent.vertex)
        else:
            vertex = self._verifier.on_fork(parent.vertex)
        task = TaskHandle(vertex, code=fn, parent_uid=parent.uid)
        future = Future(self, task)
        if retry is not None:
            future._retry = (retry, parent)
        item = (task, future, fn, args, kwargs)
        task.state = TaskState.RUNNING
        with self._lock:
            self._tasks_started += 1
            channel = self._idle_workers.pop() if self._idle_workers else None
            if channel is None:
                self._threads_started += 1
                count = self._threads_started
        if channel is not None:
            channel.put(item)
        else:
            threading.Thread(
                target=self._worker_main,
                args=(item,),
                name=f"repro-worker-{count}",
                daemon=True,
            ).start()
        if obs is not None:
            dur = perf_counter_ns() - _t0
            obs.fork_ns.observe(dur)
            if obs.tracer is not None:
                obs.tracer.complete(
                    "fork",
                    _t0,
                    dur,
                    args={"child": task.name, "parent": parent.name},
                )
        return future

    def _worker_main(self, item: tuple) -> None:
        channel: Optional[SimpleQueue] = None
        while True:
            task, future, fn, args, kwargs = item
            retry_delay: Optional[float] = None
            obs = self._obs
            tracer = obs.tracer if obs is not None else None
            with task_scope(task):
                handle = tracer.begin_span("run") if tracer is not None else None
                try:
                    value = fn(*args, **kwargs)
                except BaseException as exc:  # noqa: BLE001 - delivered at join
                    task.state = TaskState.FAILED
                    retry_delay = self._prepare_retry(future, exc)
                    if retry_delay is None:
                        future._set_exception(exc)
                        if self._journal is not None:
                            self._journal.log_complete(task.vertex, ok=False)
                else:
                    task.state = TaskState.DONE
                    future._set_result(value)
                    if self._journal is not None:
                        self._journal.log_complete(task.vertex, ok=True)
                finally:
                    if tracer is not None:
                        tracer.end_span(handle, args={"task": task.name})
            if retry_delay is not None:
                # Re-run the same item inline: the future is still
                # pending (joiners keep blocking) and _prepare_retry has
                # already re-pointed the task at a fresh vertex.
                if retry_delay > 0.0:
                    self._clock.sleep(retry_delay)
                continue
            # Park for reuse: publish our handoff channel and wait for
            # the next fork (bounded by idle_timeout / max_idle).
            if channel is None:
                channel = SimpleQueue()
            with self._lock:
                if not self._idle_enabled or len(self._idle_workers) >= self._max_idle:
                    return
                self._idle_workers.append(channel)
            try:
                item = channel.get(timeout=self._idle_timeout)
            except Empty:
                with self._lock:
                    try:
                        self._idle_workers.remove(channel)
                    except ValueError:
                        claimed = True  # a fork popped us as we timed out
                    else:
                        claimed = False
                if not claimed:
                    return
                # The racing fork's item (or the drain's stop token) is
                # already in flight to our channel; take it.
                item = channel.get()
            if item is _STOP:
                return

    # join / join_batch / _join_one are provided by SupervisedJoinMixin.
