"""The multi-process task runtime: verified fork/join past the GIL.

:class:`ProcessRuntime` keeps the verified fork/join API of
:class:`~repro.runtime.threaded.TaskRuntime` — ``fork``, ``join``,
``join_batch``, and the ``finish`` construct on top of them — but runs
the forked tasks across a pool of **worker processes**, so CPU-bound
task bodies scale with cores instead of serialising on the GIL.

Architecture
------------
The parent process hosts the root task and dispatches every
``ProcessRuntime.fork`` to a worker over a per-worker queue; the
dispatched function runs inside the worker's own private
:class:`~repro.runtime.threaded.TaskRuntime` (the *engine*) and
receives that engine as its first argument, through which it forks and
joins worker-local subtasks with the full supervised join protocol.
Results stream back on a shared result queue; a collector thread in the
parent completes the dispatched futures.

Spawn paths — the TJ-SP fork tree every verdict derives from — live in
one of two representations, chosen by ``spawn_paths``:

* ``"shm"`` (default where available): the struct-of-arrays forest of
  :class:`~repro.core.shared_tree.SharedFlatTree` in
  ``multiprocessing.shared_memory``.  Every process reads the same rows
  through int64 loads; segments double in capacity and are attached
  lazily via the generation handshake, and ids are striped per process
  so ``AddChild`` never takes an interprocess lock.
* ``"wire"``: no shared memory at all.  Each process keeps a private
  DePa-style path store (:class:`WireSpawnPaths`) and every dispatch
  ships the task's spawn-path lineage — a compact list of
  ``(vid, parent, edge, depth)`` rows — so the worker can verify
  locally against paths alone.

Join resolution — the local shard and the escalation rule
---------------------------------------------------------
Each process runs a :class:`ShardVerifier`: joins whose joiner was
**forked in this process** resolve against the process-local shard with
no synchronisation at all (the expected >90% fast path — a task joins
the children it forked).  A join whose joiner's vertex was forked in
*another* process (the dispatched task joining its own subtasks is the
canonical case) is a **cross-process edge** and escalates to the shared
verification sidecar (``repro serve``): every process holds one
:class:`~repro.service.client.SessionClient` session multiplexed under
one tenant, announces exactly the vertices that can appear on
cross-process edges (with their authoritative edge/depth placement),
and asks the sidecar's tenant mirror for the verdict via the existing
``check``/``check_batch`` wire vocabulary.

Degradation is sound by construction: TJ-SP verdicts depend only on the
fork tree, which every process can already see (shared memory) or
reconstruct (shipped lineages) — so when the sidecar dies mid-run the
:class:`~repro.service.client.SessionClient` degrades permanently and
the shard answers escalated checks from the local authority instead,
counting every such resolution.  Nothing blocks, nothing is unsound;
the sidecar is an arbiter and an observer, not the source of truth.

Worker death (at-least-once redispatch)
---------------------------------------
A monitor thread watches worker sentinels.  When a worker dies —
including ``SIGKILL`` mid-task, which the chaos suite injects — its
in-flight dispatches are re-forked under **fresh vertices** (a new
``AddChild`` under the same parent: a later sibling, so by the
no-widening property every verdict stays sound) and redispatched to the
surviving workers.  Task bodies therefore run *at least once*; bodies
with external side effects should be idempotent.  The shared-memory
rows the dead worker wrote are simply orphaned (the forest only grows),
and because no interprocess locks exist anywhere, a kill can never
strand one.

The API is identical where it can be: ``run`` hosts one root,
``fork``/``join``/``join_batch`` are the verified operations, failures
cross the process boundary as the package's picklable exceptions.  The
one necessary difference: a *dispatched* function must be picklable
(module-level) and receives the hosting engine as its first argument —
closures cannot cross a process boundary.
"""

from __future__ import annotations

import pickle
import secrets
import threading
import time
from multiprocessing.connection import wait as _mpc_wait
from typing import Any, Callable, Optional, Sequence, Union

from .context import require_current_task, task_scope
from .future import Future
from .supervisor import StallWatchdog, SupervisedJoinMixin
from .task import TaskHandle, TaskState
from .threaded import TaskRuntime
from ..core.shared_tree import (
    SharedFlatTree,
    SharedTJPolicy,
    SharedTreeHandle,
    shm_available,
)
from ..core.verifier import Verifier
from ..errors import ReproError, RuntimeStateError
from ..obs.metrics import CounterGroup, label_snapshot, merge_snapshots
from ..obs.tracing import current_trace_context, flow_id
from ..service.mirror import MirroredSpawnPaths

__all__ = ["ProcessRuntime", "ShardVerifier", "WireSpawnPaths"]

#: worker -> parent result-queue message kinds
_R_DONE = "done"
_R_STATS = "stats"

#: how many dispatched tasks a worker completes between stats messages
_STATS_EVERY = 256

#: with telemetry on, a worker also pushes stats when idle this long —
#: the live introspection plane refreshes even between dispatch bursts
_STATS_IDLE_PUSH = 1.0

#: how often the monitor thread pings the parent's sidecar connection
#: (well inside the server's 5 s liveness window)
_CLIENT_PING_EVERY = 1.0


# ----------------------------------------------------------------------
# wire-mode spawn paths: DePa-style rows, striped id allocation
# ----------------------------------------------------------------------
class WireSpawnPaths(MirroredSpawnPaths):
    """Per-process TJ-SP path store for the no-shared-memory fallback.

    Same Algorithm 3 verdicts as the mirror policy it extends, but ids
    are *allocated* here (striped per process, like the shared tree:
    process ``r`` of ``n`` owns ids ``r, r+n, r+2n, ...``), and remote
    lineages arrive via :meth:`adopt` — the compact
    ``(vid, parent, edge, depth)`` row lists a dispatch ships.
    """

    backend = "wire"

    def __init__(self, region: int, nprocs: int) -> None:
        super().__init__("TJ-SP")
        self.name = "TJ-SP-wire"
        self._next = region
        self._step = nprocs
        self._children: dict[int, int] = {}

    def add_child(self, parent: Optional[int]) -> int:
        vid = self._next
        self._next += self._step
        if parent is None or parent < 0:
            self.rows[vid] = (-1, 0, 0)
        else:
            edge = self._children.get(parent, 0)
            self._children[parent] = edge + 1
            self.rows[vid] = (parent, edge, self.rows[parent][2] + 1)
        return vid

    def adopt(self, rows: Sequence[tuple]) -> None:
        """Install remote rows (a shipped lineage) verbatim."""
        for vid, parent, edge, depth in rows:
            self.rows[vid] = (parent, edge, depth)

    def lineage(self, vid: int) -> list[tuple]:
        """Root-first ``(vid, parent, edge, depth)`` rows for *vid*."""
        out = []
        while vid >= 0:
            parent, edge, depth = self.rows[vid]
            out.append((vid, parent, edge, depth))
            vid = parent
        out.reverse()
        return out


# ----------------------------------------------------------------------
# the per-process verifier shard
# ----------------------------------------------------------------------
_SHARD_FIELDS = ("local_joins", "cross_joins", "degraded_joins", "announced")


class ShardVerifier(Verifier):
    """A :class:`Verifier` with the local-fast-path / escalation split.

    * Both endpoints forked in this process → the plain local verifier
      path (policy verdict, stats, quarantine boundary) — no I/O.
    * Joiner forked elsewhere (a cross-process edge) → escalate to the
      sidecar session when one is attached and healthy; on degradation
      (or with no sidecar at all) resolve against the local authority —
      sound, because the spawn paths of both endpoints are locally
      visible by construction — and count the degraded resolution.

    Vertices that can become cross-process joinees (children forked
    under a remotely-forked parent) are announced to the sidecar with
    their authoritative ``(edge, depth)`` placement as they are created;
    the dispatching runtime announces the dispatched vertices
    themselves.
    """

    def __init__(
        self,
        policy,
        *,
        fail_mode: str = "raise",
        sidecar=None,
        journal=None,
    ) -> None:
        super().__init__(policy, fail_mode=fail_mode, journal=journal)
        self.sidecar = sidecar
        self._local: set[int] = set()
        self._procs_events = CounterGroup(_SHARD_FIELDS)

    # -- bookkeeping ----------------------------------------------------
    def is_local(self, vid: object) -> bool:
        return vid in self._local

    def procs_stats(self) -> dict:
        return self._procs_events.totals()

    def adopt(self, vid: int, rows: Optional[Sequence[tuple]] = None) -> None:
        """Make a remotely-forked vertex resolvable here (NOT local).

        In wire mode *rows* carries the shipped lineage; in shm mode the
        shared forest already has the rows and there is nothing to copy.
        Adopted vertices stay outside the local set on purpose: joins
        from them are cross-process edges and must escalate.
        """
        if rows is not None:
            self.policy.adopt(rows)

    # -- announcements --------------------------------------------------
    def _announce(self, kind: str, vid: int) -> None:
        client = self.sidecar
        if client is None:
            return
        if kind == "init":
            client.init(vid)
        else:
            parent, edge, depth = self.policy.placement(vid)
            client.fork(parent, vid, edge, depth)
        self._procs_events.cell().announced += 1

    def announce_init(self, vid: int) -> None:
        self._announce("init", vid)

    def announce_fork(self, vid: int) -> None:
        self._announce("fork", vid)

    def flush_announcements(self) -> None:
        if self.sidecar is not None:
            self.sidecar.flush()

    # -- fork: track locality, announce escalation-relevant vertices ----
    def on_init(self):
        vertex = super().on_init()
        if isinstance(vertex, int):
            self._local.add(vertex)
        return vertex

    def on_fork(self, parent):
        vertex = super().on_fork(parent)
        if isinstance(vertex, int):
            self._local.add(vertex)
            if parent not in self._local:
                # A child of a remotely-forked task: the one shape that
                # can appear as the joinee of a cross-process edge.
                self._announce("fork", vertex)
        return vertex

    def _flow_escalation(self, client) -> None:
        """Flow-start for an escalated check: pairs with the sidecar's
        ``join_check`` flow-finish, drawing the arrow from the joining
        span's track to the sidecar's.  The ambient trace context is the
        same one the client stamps on the wire record."""
        obs = self._obs
        if client is None or obs is None or obs.tracer is None:
            return
        tctx = current_trace_context()
        if tctx is not None:
            obs.tracer.flow("s", "join_check", flow_id(tctx))

    # -- join: the fast path / escalation split -------------------------
    def check_join(self, joiner, joinee) -> bool:
        if not isinstance(joiner, int) or not isinstance(joinee, int):
            # Quarantined placeholders: the base verifier owns degraded
            # semantics.
            return super().check_join(joiner, joinee)
        if joiner in self._local:
            self._procs_events.cell().local_joins += 1
            return super().check_join(joiner, joinee)
        cell = self._procs_events.cell()
        cell.cross_joins += 1
        client = self.sidecar
        self._flow_escalation(client)
        verdict = client.check(joiner, joinee) if client is not None else None
        if verdict is None:
            cell.degraded_joins += 1
            return super().check_join(joiner, joinee)
        shard = self._shard()
        shard.joins_checked += 1
        if not verdict:
            shard.joins_rejected += 1
        if self.journal is not None:
            self.journal.log_verdict(joiner, joinee, verdict)
        return verdict

    def check_joins(self, joiner, joinees) -> list[bool]:
        joinees = list(joinees)
        if not joinees:
            return []
        if not isinstance(joiner, int) or any(
            not isinstance(j, int) for j in joinees
        ):
            return super().check_joins(joiner, joinees)
        if joiner in self._local:
            self._procs_events.cell().local_joins += len(joinees)
            return super().check_joins(joiner, joinees)
        cell = self._procs_events.cell()
        cell.cross_joins += len(joinees)
        client = self.sidecar
        self._flow_escalation(client)
        verdicts = (
            client.check_batch(joiner, joinees) if client is not None else None
        )
        if verdicts is None:
            cell.degraded_joins += len(joinees)
            return super().check_joins(joiner, joinees)
        shard = self._shard()
        shard.joins_checked += len(verdicts)
        shard.joins_rejected += verdicts.count(False)
        if self.journal is not None:
            for joinee, ok in zip(joinees, verdicts):
                self.journal.log_verdict(joiner, joinee, ok)
        return verdicts


# ----------------------------------------------------------------------
# the worker process
# ----------------------------------------------------------------------
class _WorkerEngine(TaskRuntime):
    """The private in-worker runtime that hosts dispatched task bodies.

    A thin :class:`TaskRuntime`: same pooled threads, same supervised
    joins, but driven by the worker's :class:`ShardVerifier` and able to
    host many dispatched tasks sequentially (``execute``) instead of
    exactly one root.
    """

    def __init__(self, verifier: ShardVerifier, **kwargs: Any) -> None:
        super().__init__(
            policy=verifier.policy,
            fallback=False,
            verifier=verifier,
            **kwargs,
        )
        #: vid -> live TaskHandle, for cancel targeting over the wake pipe
        self.dispatched: dict[int, TaskHandle] = {}

    def execute(
        self, vid: int, fn: Callable, args: tuple, kwargs: dict, tctx=None
    ):
        """Run one dispatched task body to completion in this thread.

        Returns ``("ok", value)`` or ``("err", exc)``; never raises.
        The body receives this engine as its first argument — its portal
        to the verified ``fork``/``join``/``join_batch`` API.  *tctx* is
        the dispatching fork's ``(trace_id, span_id)`` trace context:
        with tracing on, this task's ``run`` span parents under it (and
        every span it opens inherits the same trace id).
        """
        task = TaskHandle(vid, code=fn, name=f"dispatched-{vid}")
        task.state = TaskState.RUNNING
        self.dispatched[vid] = task
        obs = self._obs
        handle = None
        if obs is not None and obs.tracer is not None:
            handle = obs.tracer.begin_span("run", parent=tctx)
        try:
            with task_scope(task):
                value = fn(self, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - shipped to the parent
            task.state = TaskState.FAILED
            return ("err", exc)
        else:
            task.state = TaskState.DONE
            return ("ok", value)
        finally:
            if handle is not None:
                obs.tracer.end_span(handle, args={"task": f"dispatched-{vid}"})
            self.dispatched.pop(vid, None)

    def cancel_dispatched(self, vid: int) -> None:
        task = self.dispatched.get(vid)
        if task is not None:
            task.cancel_token.cancel()


def _pickle_safe(obj: object) -> object:
    """*obj* if it pickles, else a :class:`ReproError` describing it."""
    try:
        pickle.dumps(obj)
    except Exception:  # noqa: BLE001 - any pickling failure
        return ReproError(f"unpicklable worker payload: {obj!r}")
    return obj


def _worker_stats(engine: _WorkerEngine, shard: ShardVerifier, done: int) -> dict:
    stats = {
        "tasks_dispatched": done,
        "tasks_started": engine.tasks_started,
        "threads_started": engine.threads_started,
    }
    stats.update(shard.procs_stats())
    stats.update(shard.stats.snapshot())
    if shard.sidecar is not None:
        stats["sidecar_degraded"] = int(shard.sidecar.degraded)
    return stats


def _serialize_blocked(session) -> list:
    """The session's blocked joins as queue-portable plain dicts."""
    now = time.monotonic()
    out = []
    for record in session.blocked_joins():
        try:
            out.append(
                {
                    "joiner": record.joiner.name,
                    "joinee": record.joinee.name,
                    "age": max(0.0, now - record.since),
                    "wakeups": record.wakeups,
                }
            )
        except Exception:  # noqa: BLE001 - a join mid-wake is not an error
            continue
    return out


def _worker_obs_payload(session, index: int) -> Optional[dict]:
    """One telemetry push: registry snapshot + trace buffer + blocked."""
    if session is None:
        return None
    payload: dict = {
        "metrics": session.snapshot(),
        "blocked": _serialize_blocked(session),
    }
    if session.tracer is not None:
        payload["trace"] = session.tracer.export_state(label=f"worker-{index}")
    return payload


def _worker_main(cfg: dict) -> None:
    """Entry point of one worker process (spawn-safe, module level)."""
    from .. import obs as _obs_mod

    index = cfg["index"]
    dispatch_q = cfg["dispatch_q"]
    result_q = cfg["result_q"]
    wake_r = cfg["wake_r"]

    session = None
    tcfg = cfg.get("telemetry")
    if tcfg is not None:
        # A fresh spawn process starts with telemetry off; re-create the
        # parent's choice here so the shard/engine capture it at
        # construction.  The trace id is inherited, so even spans that
        # never adopt a dispatch context share the run's trace.
        session = _obs_mod.Telemetry(
            tracing=tcfg.get("tracing", True),
            trace_capacity=tcfg.get("trace_capacity", 65536),
            trace_id=tcfg.get("trace_id"),
        )

    tree = None
    with _obs_mod.using(session):
        if cfg["tree_handle"] is not None:
            tree = SharedFlatTree.attach(
                SharedTreeHandle(*cfg["tree_handle"]), region=cfg["region"]
            )
            policy = SharedTJPolicy(tree)
        else:
            policy = WireSpawnPaths(cfg["region"], cfg["nprocs"])

        client = None
        if cfg["sidecar_url"] is not None:
            from ..service.client import SessionClient

            client = SessionClient(
                cfg["sidecar_url"],
                f"{cfg['run_id']}-w{index}",
                tenant=cfg["run_id"],
            )
            client.connect()  # failure leaves it degraded: local fallback

        shard = ShardVerifier(policy, fail_mode=cfg["fail_mode"], sidecar=client)
        engine = _WorkerEngine(shard)

    stop = threading.Event()

    def control_main() -> None:
        # The wake pipe: out-of-band stop/cancel, never behind a queue
        # of pending dispatches.
        while True:
            try:
                msg = wake_r.recv()
            except (EOFError, OSError):
                stop.set()
                return
            if msg is None or msg[0] == "stop":
                stop.set()
                return
            if msg[0] == "cancel":
                engine.cancel_dispatched(msg[1])

    threading.Thread(target=control_main, daemon=True, name="procs-wake").start()

    def push_stats() -> None:
        result_q.put(
            (
                _R_STATS,
                index,
                _worker_stats(engine, shard, completed),
                _worker_obs_payload(session, index),
            )
        )

    completed = 0
    last_push = time.monotonic()
    try:
        while not stop.is_set():
            try:
                item = dispatch_q.get(timeout=0.2)
            except Exception:  # noqa: BLE001 - Empty, or torn queue at exit
                if (
                    session is not None
                    and time.monotonic() - last_push >= _STATS_IDLE_PUSH
                ):
                    push_stats()
                    last_push = time.monotonic()
                continue
            if item is None:
                break
            vid, payload, lineage, tctx = item
            shard.adopt(vid, lineage)
            try:
                fn, args, kwargs = pickle.loads(payload)
            except Exception as exc:  # noqa: BLE001
                result_q.put((_R_DONE, vid, "err", ReproError(f"undispatchable task: {exc!r}")))
                continue
            kind, value = engine.execute(vid, fn, args, kwargs, tctx)
            if kind == "ok":
                safe = _pickle_safe(value)
                if safe is not value:
                    result_q.put((_R_DONE, vid, "err", safe))
                else:
                    result_q.put((_R_DONE, vid, "ok", value))
            else:
                result_q.put((_R_DONE, vid, "err", _pickle_safe(value)))
            completed += 1
            if completed % _STATS_EVERY == 0:
                push_stats()
                last_push = time.monotonic()
    finally:
        try:
            push_stats()
        except Exception:  # noqa: BLE001 - parent may already be gone
            pass
        if client is not None:
            client.close()
        if tree is not None:
            tree.close()


# ----------------------------------------------------------------------
# parent-side plumbing
# ----------------------------------------------------------------------
class _CancelRelay:
    """A cancel-token waker that forwards the request over a wake pipe."""

    __slots__ = ("runtime", "vid")

    def __init__(self, runtime: "ProcessRuntime", vid: int) -> None:
        self.runtime = runtime
        self.vid = vid

    def set(self) -> None:
        self.runtime._relay_cancel(self.vid)


class _Inflight:
    __slots__ = ("future", "worker", "payload", "parent_vid", "attempts")

    def __init__(self, future, worker, payload, parent_vid, attempts=0):
        self.future = future
        self.worker = worker
        self.payload = payload
        self.parent_vid = parent_vid
        self.attempts = attempts


class _WorkerHandle:
    __slots__ = ("index", "proc", "dispatch_q", "wake_w", "alive", "stats")

    def __init__(self, index, proc, dispatch_q, wake_w):
        self.index = index
        self.proc = proc
        self.dispatch_q = dispatch_q
        self.wake_w = wake_w
        self.alive = True
        self.stats: dict = {}


class ProcessRuntime(SupervisedJoinMixin):
    """Verified fork/join across a pool of worker processes.

    Parameters
    ----------
    policy:
        Only the TJ-SP family is supported: cross-process soundness
        leans on verdicts that are fixed at fork time and derivable from
        spawn paths alone.  Pass ``"TJ-SP"`` (the default).
    workers:
        Worker process count (the parent is an additional process that
        hosts the root and the dispatch plumbing).
    spawn_paths:
        ``"shm"`` — shared-memory forest; ``"wire"`` — per-process path
        stores with shipped lineages; ``"auto"`` (default) picks shm
        where the platform has it.
    sidecar:
        ``None`` — no sidecar: cross-process edges resolve against the
        local authority from the start (counted as degraded);
        ``"auto"`` — spawn a private ``repro serve`` on an ephemeral
        port and point every process at it; a ``remote://host:port``
        URL — use an existing sidecar.
    redispatch:
        When True (default) a dead worker's in-flight tasks are re-run
        on surviving workers under fresh vertices (at-least-once);
        when False their futures fail with :class:`TaskFailedError`.
    introspect:
        ``None`` (default) — no introspection endpoint; an integer port
        (0 = ephemeral) — serve the live fleet snapshot over the wire
        protocol so ``repro top --live`` can attach while the run is in
        flight (see :mod:`repro.obs.live`).
    stripe, seg0:
        Shared-tree allocation geometry (shm mode), for tests.

    ``fail_mode``, ``default_join_timeout``, ``watchdog``,
    ``on_unjoined_failure`` behave as on :class:`TaskRuntime`.  There is
    no Armus fallback across processes: TJ-SP is pure avoidance here,
    and a rejected join faults immediately.
    """

    def __init__(
        self,
        policy: str = "TJ-SP",
        *,
        workers: int = 4,
        spawn_paths: str = "auto",
        sidecar: Union[None, str] = None,
        redispatch: bool = True,
        fail_mode: str = "raise",
        default_join_timeout: Optional[float] = None,
        watchdog: Union[bool, float, StallWatchdog] = True,
        watchdog_interval: float = 0.1,
        on_unjoined_failure: str = "warn",
        introspect: Optional[int] = None,
        stripe: int = 1024,
        seg0: int = 1 << 14,
    ) -> None:
        if isinstance(policy, str):
            policy_name = policy
        else:
            policy_name = getattr(policy, "name", str(policy))
        if not policy_name.startswith("TJ-SP"):
            raise ValueError(
                "ProcessRuntime requires a TJ-SP-family policy (verdicts "
                f"fixed at fork time); got {policy_name!r}"
            )
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if spawn_paths not in ("auto", "shm", "wire"):
            raise ValueError("spawn_paths must be 'auto', 'shm' or 'wire'")
        if spawn_paths == "auto":
            spawn_paths = "shm" if shm_available() else "wire"
        if spawn_paths == "shm" and not shm_available():  # pragma: no cover
            raise RuntimeError("shared memory unavailable; use spawn_paths='wire'")
        self.workers_requested = workers
        self.spawn_paths = spawn_paths
        self.redispatch = redispatch
        self._sidecar_spec = sidecar
        self._fail_mode = fail_mode
        self._stripe = stripe
        self._seg0 = seg0
        self.run_id = f"procs-{secrets.token_hex(4)}"
        self._nprocs = workers + 1  # workers plus the parent (region 0)

        self._tree: Optional[SharedFlatTree] = None
        self._sidecar_proc = None
        self._client = None
        self._verifier: Optional[ShardVerifier] = None
        self._hybrid = None  # no Armus across processes
        self._journal = None

        import multiprocessing

        self._ctx = multiprocessing.get_context("spawn")
        self._result_q = self._ctx.Queue()
        self._workers: list[_WorkerHandle] = []
        self._plock = threading.Lock()
        self._inflight: dict[int, _Inflight] = {}
        self._rr = 0  # round-robin dispatch cursor
        self._root_started = False
        self._stopping = threading.Event()
        self._collector: Optional[threading.Thread] = None
        self._monitor: Optional[threading.Thread] = None

        # merged telemetry (parent's view; worker cells merge on arrival)
        self.tasks_dispatched = 0
        self.tasks_completed = 0
        self.worker_deaths = 0
        self.tasks_redispatched = 0
        self.orphan_results = 0
        self._worker_stats: dict[int, dict] = {}

        # fleet telemetry (tentpole PR 10): latest labelled registry
        # snapshot and blocked-join list per live worker, plus the
        # retired accumulator dead workers fold into — the process-level
        # mirror of the sharded counters' dead-cell fold, so merged
        # totals stay exact across worker churn.
        self._worker_metrics: dict[int, dict] = {}
        self._worker_blocked: dict[int, list] = {}
        self._fleet_retired: Optional[dict] = None
        self._sidecar_stats: Optional[dict] = None
        self._introspect_port = introspect
        self._introspect_server = None

        self._init_supervision(
            default_join_timeout=default_join_timeout,
            watchdog=watchdog,
            watchdog_interval=watchdog_interval,
            on_unjoined_failure=on_unjoined_failure,
        )
        obs = self._obs
        if obs is not None:
            self._m_tasks = obs.registry.counter("repro_procs_tasks_total")
            self._m_cross = obs.registry.counter("repro_procs_cross_joins_total")
            self._m_ratio = obs.registry.gauge("repro_procs_escalation_ratio")
        else:
            self._m_tasks = self._m_cross = self._m_ratio = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def policy(self):
        return self._verifier.policy if self._verifier is not None else None

    @property
    def verifier(self) -> Optional[ShardVerifier]:
        return self._verifier

    @property
    def sidecar_url(self) -> Optional[str]:
        if self._client is not None:
            return self._client.url
        return None

    def join_stats(self) -> dict:
        """Merged local/cross/degraded join counts across all processes."""
        out = {f: 0 for f in _SHARD_FIELDS}
        sources = [self._verifier.procs_stats()] if self._verifier else []
        sources += list(self._worker_stats.values())
        for stats in sources:
            for field in _SHARD_FIELDS:
                out[field] += stats.get(field, 0)
        checked = out["local_joins"] + out["cross_joins"]
        out["escalation_ratio"] = out["cross_joins"] / checked if checked else 0.0
        return out

    def _metrics_snapshot(self) -> dict:
        out = super()._metrics_snapshot()
        joins = self.join_stats()
        out.update(
            procs_workers=len([w for w in self._workers if w.alive]),
            procs_tasks_total=self.tasks_completed
            + sum(s.get("tasks_started", 0) for s in self._worker_stats.values()),
            procs_tasks_dispatched=self.tasks_dispatched,
            procs_cross_joins_total=joins["cross_joins"],
            procs_local_joins_total=joins["local_joins"],
            procs_degraded_joins_total=joins["degraded_joins"],
            procs_escalation_ratio=joins["escalation_ratio"],
            procs_worker_deaths=self.worker_deaths,
            procs_tasks_redispatched=self.tasks_redispatched,
        )
        if self._m_ratio is not None:
            self._m_ratio.set(joins["escalation_ratio"])
        return out

    # ------------------------------------------------------------------
    # fleet telemetry: merged metrics, blocked joins, live introspection
    # ------------------------------------------------------------------
    def fleet_metrics(self) -> dict:
        """One merged registry snapshot for the whole fleet.

        Parent series carry ``process="parent"``, worker series
        ``worker="<index>"``.  Workers that died mid-run stay in the
        merge through the retired accumulator their last snapshot was
        folded into (the process-level analogue of the sharded
        counters' dead-cell fold), so counter totals are exact under
        churn.  Empty when telemetry is disabled.
        """
        parts: list[dict] = []
        obs = self._obs
        if obs is not None:
            parts.append(label_snapshot(obs.snapshot(), process="parent"))
        with self._plock:
            live = [self._worker_metrics[i] for i in sorted(self._worker_metrics)]
            retired = self._fleet_retired
        parts.extend(live)
        if retired is not None:
            parts.append(retired)
        return merge_snapshots(parts)

    def fleet_blocked_joins(self) -> list:
        """Currently blocked joins across every process, as plain dicts
        (``process``/``joiner``/``joinee``/``age``/``wakeups``).

        Worker entries are as-of that worker's latest stats push (at
        most :data:`_STATS_IDLE_PUSH` seconds stale); parent entries are
        live.
        """
        out: list = []
        obs = self._obs
        if obs is not None:
            now = time.monotonic()
            for record in obs.blocked_joins():
                try:
                    out.append(
                        {
                            "process": "parent",
                            "joiner": record.joiner.name,
                            "joinee": record.joinee.name,
                            "age": max(0.0, now - record.since),
                            "wakeups": record.wakeups,
                        }
                    )
                except Exception:  # noqa: BLE001 - join mid-wake
                    continue
        with self._plock:
            blocked = {i: list(v) for i, v in self._worker_blocked.items()}
        for index in sorted(blocked):
            for rec in blocked[index]:
                entry = dict(rec)
                entry["process"] = f"worker-{index}"
                out.append(entry)
        return out

    def _introspection_snapshot(self) -> dict:
        """The stats payload the introspection plane serves to
        ``repro top --live`` (wire ``stats`` → ``stats_reply``)."""
        with self._plock:
            workers = [
                {"index": w.index, "alive": w.alive, "pid": w.proc.pid}
                for w in self._workers
            ]
        return {
            "run_id": self.run_id,
            "kind": "procs",
            "workers": workers,
            "join_stats": self.join_stats(),
            "counters": self._metrics_snapshot(),
            "blocked": self.fleet_blocked_joins(),
            "metrics": self.fleet_metrics(),
            "sidecar": self.sidecar_url,
        }

    def _absorb_worker_obs(self, index: int, obs_state: dict) -> None:
        """Fold one worker telemetry push into the parent's fleet view."""
        metrics = obs_state.get("metrics")
        blocked = obs_state.get("blocked")
        with self._plock:
            if metrics is not None:
                self._worker_metrics[index] = label_snapshot(
                    metrics, worker=str(index)
                )
            self._worker_blocked[index] = blocked or []
        trace = obs_state.get("trace")
        obs = self._obs
        if trace is not None and obs is not None and obs.tracer is not None:
            obs.tracer.absorb_remote(trace)

    @property
    def introspect_url(self) -> Optional[str]:
        """The live introspection endpoint, if one was requested."""
        if self._introspect_server is None:
            return None
        return self._introspect_server.url

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _start_sidecar(self) -> Optional[str]:
        spec = self._sidecar_spec
        if spec is None:
            return None
        if spec == "auto":
            from ..service.proc import SidecarProcess

            obs = self._obs
            kwargs: dict = {}
            if obs is not None:
                # A telemetry-enabled run wants the private sidecar in
                # the same distributed trace: its join_check spans ship
                # home via the stats reply at shutdown.
                kwargs["obs"] = True
                if obs.tracer is not None:
                    kwargs["trace_id"] = obs.tracer.trace_id
            self._sidecar_proc = SidecarProcess(port=0, **kwargs)
            return self._sidecar_proc.url
        return spec

    def _start_workers(self) -> None:
        url = self._start_sidecar()
        if url is not None:
            from ..service.client import SessionClient

            self._client = SessionClient(url, f"{self.run_id}-p", tenant=self.run_id)
            self._client.connect()
        if self.spawn_paths == "shm":
            self._tree = SharedFlatTree.create(
                nprocs=self._nprocs, stripe=self._stripe, seg0=self._seg0
            )
            policy = SharedTJPolicy(self._tree)
            tree_handle = tuple(self._tree.handle())
        else:
            policy = WireSpawnPaths(0, self._nprocs)
            tree_handle = None
        self._verifier = ShardVerifier(
            policy, fail_mode=self._fail_mode, sidecar=self._client
        )
        obs = self._obs
        telemetry_cfg = None
        if obs is not None:
            # Workers re-create the parent's telemetry choice at startup
            # and inherit the run's trace id, so every process's spans
            # land in one distributed trace.
            telemetry_cfg = {
                "tracing": obs.tracer is not None,
                "trace_capacity": (
                    obs.tracer.capacity if obs.tracer is not None else 65536
                ),
                "trace_id": (
                    obs.tracer.trace_id if obs.tracer is not None else None
                ),
            }
        for i in range(self.workers_requested):
            dispatch_q = self._ctx.Queue()
            wake_r, wake_w = self._ctx.Pipe(duplex=False)
            cfg = {
                "index": i,
                "region": i + 1,
                "nprocs": self._nprocs,
                "tree_handle": tree_handle,
                "sidecar_url": url,
                "run_id": self.run_id,
                "fail_mode": self._fail_mode,
                "dispatch_q": dispatch_q,
                "result_q": self._result_q,
                "wake_r": wake_r,
                "telemetry": telemetry_cfg,
            }
            proc = self._ctx.Process(
                target=_worker_main,
                args=(cfg,),
                name=f"repro-procs-{i}",
                daemon=True,
            )
            proc.start()
            wake_r.close()
            self._workers.append(_WorkerHandle(i, proc, dispatch_q, wake_w))
        self._collector = threading.Thread(
            target=self._collector_main, daemon=True, name="procs-collect"
        )
        self._collector.start()
        self._monitor = threading.Thread(
            target=self._monitor_main, daemon=True, name="procs-monitor"
        )
        self._monitor.start()
        if self._introspect_port is not None:
            from ..obs.live import IntrospectionServer

            self._introspect_server = IntrospectionServer(
                self._introspection_snapshot, port=self._introspect_port
            )
            self._introspect_server.start()

    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute *fn* as the root task in the parent process.

        The root runs in the calling thread and may use this runtime
        directly (it shares the parent's address space); everything it
        ``fork``\\ s is dispatched to the worker pool.
        """
        with self._plock:
            if self._root_started:
                raise RuntimeStateError(
                    "this runtime already hosted a root task; create a fresh "
                    "ProcessRuntime per program run"
                )
            self._root_started = True
        self._start_workers()
        vertex = self._verifier.on_init()
        self._verifier.announce_init(vertex)
        self._verifier.flush_announcements()
        root = TaskHandle(vertex, code=fn, name="root")
        root.state = TaskState.RUNNING
        obs = self._obs
        handle = None
        if obs is not None and obs.tracer is not None:
            # The root span anchors the distributed trace: dispatches
            # under it capture its (trace, span) as their flow origin.
            handle = obs.tracer.begin_span("run")
        try:
            with task_scope(root):
                result = fn(*args, **kwargs)
                root.state = TaskState.DONE
        except BaseException:
            root.state = TaskState.FAILED
            raise
        finally:
            if handle is not None:
                obs.tracer.end_span(handle, args={"task": "root"})
            self._shutdown()
        self._reap_unjoined()
        return result

    def _shutdown(self) -> None:
        self._stopping.set()
        for w in self._workers:
            if w.alive:
                try:
                    w.wake_w.send(("stop",))
                except (OSError, BrokenPipeError):
                    pass
                try:
                    w.dispatch_q.put(None)
                except Exception:  # noqa: BLE001 - queue may be torn
                    pass
        deadline = time.monotonic() + 10.0
        for w in self._workers:
            w.proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=5.0)
        # One sentinel value unblocks the collector; it drains anything
        # (late results, final stats) queued before it.
        self._result_q.put(None)
        if self._collector is not None:
            self._collector.join(timeout=10.0)
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
        if self._introspect_server is not None:
            self._introspect_server.stop()
        obs = self._obs
        if obs is not None and self._client is not None:
            # Last stats pull before hanging up: the sidecar's trace
            # buffer (its join_check track) folds into the merged trace.
            stats = None
            if not self._client.degraded:
                try:
                    stats = self._client.stats()
                except Exception:  # noqa: BLE001 - a dying sidecar is fine
                    stats = None
            if stats is None and self.sidecar_url is not None:
                # The long-lived connection may have died (degraded, or
                # reaped by the server's liveness sweeper); one fresh
                # dial for the final pull costs a handshake and saves
                # the sidecar's whole track.
                from ..service.client import SessionClient

                try:
                    fresh = SessionClient(
                        self.sidecar_url,
                        f"{self.run_id}-stats",
                        tenant=self.run_id,
                    )
                    if fresh.connect():
                        stats = fresh.stats()
                    fresh.close()
                except Exception:  # noqa: BLE001 - a dying sidecar is fine
                    stats = None
            if stats is not None:
                self._sidecar_stats = stats
                trace = stats.get("trace")
                if trace is not None and obs.tracer is not None:
                    obs.tracer.absorb_remote(trace)
        if self._client is not None:
            self._client.close()
        if self._sidecar_proc is not None:
            self._sidecar_proc.stop()
        if self._tree is not None:
            self._tree.close()

    # ------------------------------------------------------------------
    # fork: dispatch to a worker
    # ------------------------------------------------------------------
    def fork(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Dispatch *fn* to a worker process; return its parent-side Future.

        *fn* must be picklable (module level) and receives the worker's
        engine — a full verified :class:`TaskRuntime` — as its first
        argument: ``fn(rt, *args, **kwargs)``.
        """
        parent = require_current_task()
        parent.cancel_token.raise_if_cancelled(parent)
        try:
            payload = pickle.dumps((fn, args, kwargs))
        except Exception as exc:
            raise RuntimeStateError(
                f"dispatched task {getattr(fn, '__name__', fn)!r} must be "
                f"picklable: {exc}"
            ) from exc
        vertex = self._verifier.on_fork(parent.vertex)
        self._verifier.announce_fork(vertex)
        self._verifier.flush_announcements()
        task = TaskHandle(vertex, code=fn, parent_uid=parent.uid)
        future = Future(self, task)
        task.state = TaskState.RUNNING
        lineage = None
        if self.spawn_paths == "wire":
            lineage = self._verifier.policy.lineage(vertex)
        with self._plock:
            self.tasks_dispatched += 1
            worker = self._pick_worker_locked()
            if worker is None:
                raise RuntimeStateError("no live worker processes")
            self._inflight[vertex] = _Inflight(
                future, worker.index, payload, parent.vertex
            )
        task.cancel_token._add_waker(_CancelRelay(self, vertex))
        obs = self._obs
        tctx = None
        if obs is not None and obs.tracer is not None:
            tctx = current_trace_context()
            if tctx is not None:
                obs.tracer.instant(
                    "fork", cat="dispatch",
                    args={"child": vertex, "worker": worker.index},
                )
                obs.tracer.flow("s", "dispatch", flow_id(tctx))
        worker.dispatch_q.put((vertex, payload, lineage, tctx))
        return future

    def _pick_worker_locked(self) -> Optional[_WorkerHandle]:
        live = [w for w in self._workers if w.alive]
        if not live:
            return None
        worker = live[self._rr % len(live)]
        self._rr += 1
        return worker

    def _relay_cancel(self, vid: int) -> None:
        with self._plock:
            entry = self._inflight.get(vid)
            worker = self._workers[entry.worker] if entry is not None else None
        if worker is not None and worker.alive:
            try:
                worker.wake_w.send(("cancel", vid))
            except (OSError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # result collection and worker supervision
    # ------------------------------------------------------------------
    def _collector_main(self) -> None:
        while True:
            try:
                msg = self._result_q.get(timeout=1.0)
            except Exception:  # noqa: BLE001 - Empty or torn queue
                if self._stopping.is_set() and not any(
                    w.proc.is_alive() for w in self._workers
                ):
                    return
                continue
            if msg is None:
                # shutdown sentinel: drain whatever is already queued
                while True:
                    try:
                        msg = self._result_q.get_nowait()
                    except Exception:  # noqa: BLE001
                        return
                    if msg is not None:
                        self._handle_result(msg)
                return
            self._handle_result(msg)

    def _handle_result(self, msg) -> None:
        try:
            kind = msg[0]
            if kind == _R_STATS:
                _, index, stats, obs_state = msg
                self._worker_stats[index] = stats
                if obs_state is not None:
                    self._absorb_worker_obs(index, obs_state)
                if self._m_cross is not None:
                    joins = self.join_stats()
                    delta = joins["cross_joins"] - self._m_cross.value
                    if delta > 0:
                        self._m_cross.inc(delta)
                    self._m_ratio.set(joins["escalation_ratio"])
                return
            _, vid, status, value = msg
        except (TypeError, ValueError, IndexError):
            self.orphan_results += 1
            return
        with self._plock:
            entry = self._inflight.pop(vid, None)
        if entry is None:
            self.orphan_results += 1  # redispatch raced a late result
            return
        entry.future.task.state = (
            TaskState.DONE if status == "ok" else TaskState.FAILED
        )
        self.tasks_completed += 1
        if self._m_tasks is not None:
            self._m_tasks.inc()
        if status == "ok":
            entry.future._set_result(value)
        else:
            entry.future._set_exception(value)

    def _monitor_main(self) -> None:
        last_ping = time.monotonic()
        while not self._stopping.is_set():
            sentinels = {
                w.proc.sentinel: w for w in self._workers if w.alive
            }
            if not sentinels:
                return
            ready = _mpc_wait(list(sentinels), timeout=0.2)
            for sentinel in ready:
                self._on_worker_death(sentinels[sentinel])
            # Keep the parent's mostly-idle sidecar connection alive so
            # the server's liveness sweeper doesn't reap it mid-run and
            # the shutdown stats pull finds the stream still open.
            now = time.monotonic()
            if self._client is not None and now - last_ping >= _CLIENT_PING_EVERY:
                last_ping = now
                self._client.ping()

    def _on_worker_death(self, worker: _WorkerHandle) -> None:
        with self._plock:
            if not worker.alive:
                return
            worker.alive = False
            if self._stopping.is_set():
                # Normal teardown: the exit is expected, nothing is stranded.
                return
            self.worker_deaths += 1
            # The dead worker's last labelled snapshot folds into the
            # retired accumulator: its counts survive in merged fleet
            # totals even though the live cell is gone (same rule as
            # the sharded counters' dead-cell fold, one level up).
            dead = self._worker_metrics.pop(worker.index, None)
            if dead is not None:
                self._fleet_retired = (
                    dead
                    if self._fleet_retired is None
                    else merge_snapshots([self._fleet_retired, dead])
                )
            self._worker_blocked.pop(worker.index, None)
            stranded = [
                (vid, entry)
                for vid, entry in self._inflight.items()
                if entry.worker == worker.index
            ]
            for vid, _ in stranded:
                del self._inflight[vid]
        for vid, entry in stranded:
            self._recover_task(vid, entry)

    def _recover_task(self, vid: int, entry: _Inflight) -> None:
        future = entry.future
        if future.done():
            return
        if not self.redispatch or entry.attempts + 1 >= 3:
            future.task.state = TaskState.FAILED
            future._set_exception(
                ReproError(f"worker process died while running task {vid}")
            )
            return
        # A fresh vertex under the original parent: the retry is a later
        # sibling, so every existing verdict stays sound (no-widening).
        new_vid = self._verifier.on_fork(entry.parent_vid)
        self._verifier.announce_fork(new_vid)
        self._verifier.flush_announcements()
        future.task.vertex = new_vid
        lineage = None
        if self.spawn_paths == "wire":
            lineage = self._verifier.policy.lineage(new_vid)
        with self._plock:
            worker = self._pick_worker_locked()
            if worker is None:
                future.task.state = TaskState.FAILED
                future._set_exception(
                    ReproError("no live worker processes to redispatch to")
                )
                return
            self.tasks_redispatched += 1
            self._inflight[new_vid] = _Inflight(
                future, worker.index, entry.payload, entry.parent_vid,
                attempts=entry.attempts + 1,
            )
        # Redispatch carries no trace context: the original dispatch span
        # may be long gone, so the retry's run span roots its own tree.
        worker.dispatch_q.put((new_vid, entry.payload, lineage, None))

    # join / join_batch / _join_one come from SupervisedJoinMixin, driving
    # the parent's ShardVerifier exactly like TaskRuntime drives its own.
