"""Systematic schedule exploration for cooperative programs.

The paper repeatedly appeals to *nondeterministic* behaviour — Listing 1
"may" violate KJ, NQueens "potentially violates" it "due to variations
in task scheduling" (Section 1).  This module turns those modal claims
into checkable artifacts: it runs the same program under many
interleavings of the cooperative runtime, either

* **exhaustively** — depth-first over every scheduling decision up to a
  bound (the stateless-model-checking discipline: each run replays a
  decision prefix, then explores a new branch), or
* **randomly** — seeded fuzzing for programs whose schedule tree is too
  large.

For each schedule it reports the policy verdicts (fallback activity,
deadlocks avoided/detected) so one can assert statements like "there
EXISTS a schedule where this program violates KJ" and "there is NO
schedule where it violates TJ".
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from .cooperative import CooperativeRuntime
from ..core.policy import JoinPolicy
from ..errors import DeadlockDetectedError, ReproError

__all__ = [
    "Schedule",
    "ScheduleOutcome",
    "ExplorationResult",
    "explore_schedules",
    "fuzz_schedules",
]


#: file-format version of a serialised schedule (bumped on layout change)
SCHEDULE_VERSION = 1


@dataclass(frozen=True)
class Schedule:
    """One deterministic interleaving of a cooperative program.

    The canonical currency of schedule replay, shared by the explorer,
    the deterministic simulator (:mod:`repro.runtime.sim`) and the
    predictor (:mod:`repro.predict`): ``choices[k]`` is the index picked
    at the k-th *real* decision point (ready-queue width > 1; width-1
    steps are not decisions and are not recorded).  ``widths`` — when
    present — records the queue width at each decision so a replay can
    verify it is walking the same tree; ``seed`` names the generator
    seed the schedule was recorded under, when it came from one.

    A schedule shorter than the run it replays is a *prefix*: decisions
    past its end fall back to the replaying scheduler's default policy.
    """

    choices: tuple[int, ...]
    widths: tuple[int, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "choices", tuple(int(c) for c in self.choices))
        object.__setattr__(self, "widths", tuple(int(w) for w in self.widths))
        if self.widths and len(self.widths) != len(self.choices):
            raise ValueError(
                f"widths ({len(self.widths)}) must match choices "
                f"({len(self.choices)}) when present"
            )
        for i, c in enumerate(self.choices):
            if c < 0 or (self.widths and c >= self.widths[i]):
                raise ValueError(f"choice {c} at decision {i} out of range")

    def __len__(self) -> int:
        return len(self.choices)

    # -- serialisation (the witness-schedule format of docs/prediction.md)
    def to_dict(self) -> dict:
        body: dict = {"version": SCHEDULE_VERSION, "choices": list(self.choices)}
        if self.widths:
            body["widths"] = list(self.widths)
        if self.seed is not None:
            body["seed"] = self.seed
        return body

    @classmethod
    def from_dict(cls, body: dict) -> "Schedule":
        if body.get("version", SCHEDULE_VERSION) != SCHEDULE_VERSION:
            raise ValueError(f"unsupported schedule version {body.get('version')!r}")
        return cls(
            choices=tuple(body.get("choices", ())),
            widths=tuple(body.get("widths", ())),
            seed=body.get("seed"),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "Schedule":
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps() + "\n")

    @classmethod
    def load(cls, path: str) -> "Schedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.loads(fh.read())


@dataclass
class ScheduleOutcome:
    """What one schedule did."""

    schedule: tuple[int, ...]
    result: Any = None
    error: Optional[BaseException] = None
    false_positives: int = 0
    deadlocks_avoided: int = 0
    deadlock_detected: bool = False
    joins_checked: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_schedule(self, *, seed: Optional[int] = None) -> Schedule:
        """The outcome's decision sequence as a replayable Schedule."""
        return Schedule(choices=self.schedule, seed=seed)


@dataclass
class ExplorationResult:
    """Aggregate over all explored schedules."""

    outcomes: list[ScheduleOutcome] = field(default_factory=list)
    exhausted: bool = True  # False when the bound cut exploration short

    @property
    def schedules(self) -> int:
        return len(self.outcomes)

    @property
    def any_fallback(self) -> bool:
        return any(o.false_positives > 0 for o in self.outcomes)

    @property
    def all_fallback(self) -> bool:
        return all(o.false_positives > 0 for o in self.outcomes)

    @property
    def any_deadlock(self) -> bool:
        return any(o.deadlock_detected or o.deadlocks_avoided for o in self.outcomes)

    def distinct_results(self) -> set:
        return {repr(o.result) for o in self.outcomes if o.ok}


class _ReplayScheduler:
    """Replays a fixed decision prefix, then picks branch 0 and records
    the queue width at each fresh decision point (to know the branching
    structure for DFS)."""

    def __init__(self, prefix: Sequence[int]) -> None:
        self.prefix = list(prefix)
        self.widths: list[int] = []  # queue width at each decision
        self.choices: list[int] = []  # full decision sequence taken
        self._at = 0

    def __call__(self, width: int) -> int:
        if width == 1:
            choice = 0  # no real decision; do not count it
        elif self._at < len(self.prefix):
            choice = self.prefix[self._at]
            self._at += 1
        else:
            self._at += 1
            choice = 0
        if width > 1:
            self.widths.append(width)
            self.choices.append(choice)
        return choice


def _run_one(
    program: Callable[[CooperativeRuntime], Callable[[], Any]],
    policy: Union[None, str, JoinPolicy],
    fallback: bool,
    scheduler: Callable[[int], int],
) -> ScheduleOutcome:
    rt = CooperativeRuntime(policy, fallback=fallback, scheduler=scheduler)
    outcome = ScheduleOutcome(schedule=())
    try:
        outcome.result = rt.run(program(rt))
    except DeadlockDetectedError as exc:
        outcome.error = exc
        outcome.deadlock_detected = True
    except BaseException as exc:  # noqa: BLE001 - recorded, not swallowed silently
        outcome.error = exc
    outcome.joins_checked = rt.verifier.stats.joins_checked
    if rt.detector is not None:
        outcome.false_positives = rt.detector.stats.false_positives
        outcome.deadlocks_avoided = rt.detector.stats.deadlocks_avoided
    return outcome


def explore_schedules(
    program: Callable[[CooperativeRuntime], Callable[[], Any]],
    *,
    policy: Union[None, str, JoinPolicy] = "TJ-SP",
    fallback: bool = True,
    max_schedules: int = 2000,
) -> ExplorationResult:
    """Run *program* under every cooperative interleaving (DFS, bounded).

    *program* is a factory: it receives a fresh runtime and returns the
    root task callable (fresh per run — runtimes are single-shot).  Note
    the policy must also be given by name/factory semantics so each run
    verifies independently.

    Exploration is depth-first over decision prefixes: a run is executed
    with a fixed prefix of choices; the recorded branching widths then
    seed the next unexplored sibling branch.  ``max_schedules`` bounds
    the number of runs; ``exhausted`` reports whether the full tree fit.
    """
    result = ExplorationResult()
    stack: list[list[int]] = [[]]  # prefixes to explore
    seen: set[tuple[int, ...]] = set()
    while stack:
        if len(result.outcomes) >= max_schedules:
            result.exhausted = False
            break
        prefix = stack.pop()
        replay = _ReplayScheduler(prefix)
        outcome = _run_one(program, policy, fallback, replay)
        outcome.schedule = tuple(replay.choices)
        if outcome.schedule in seen:
            continue  # a shorter prefix already produced this schedule
        seen.add(outcome.schedule)
        result.outcomes.append(outcome)
        # open sibling branches at every decision at/after the prefix end
        for depth in range(len(prefix), len(replay.widths)):
            for branch in range(1, replay.widths[depth]):
                stack.append(replay.choices[:depth] + [branch])
    return result


def fuzz_schedules(
    program: Callable[[CooperativeRuntime], Callable[[], Any]],
    *,
    policy: Union[None, str, JoinPolicy] = "TJ-SP",
    fallback: bool = True,
    runs: int = 50,
    seed: int = 0,
) -> ExplorationResult:
    """Run *program* under ``runs`` seeded-random interleavings."""
    result = ExplorationResult(exhausted=False)
    for i in range(runs):
        rng = random.Random(seed * 1_000_003 + i)
        choices: list[int] = []

        def scheduler(width: int, rng=rng, choices=choices) -> int:
            pick = rng.randrange(width)
            if width > 1:
                choices.append(pick)
            return pick

        outcome = _run_one(program, policy, fallback, scheduler)
        outcome.schedule = tuple(choices)
        result.outcomes.append(outcome)
    return result
