"""Task retry with exponential backoff and deterministic jitter.

A :class:`RetryPolicy` passed to ``TaskRuntime.fork(retry=...)`` (or
``finish(retry=...)``) makes a failing task body re-run instead of
failing its future.  The crucial property for the verifier: a retried
task is a **fresh fork** — the runtime asks the policy for a *new*
vertex (a new spawn path under the same parent), so the retry is
re-verified by TJ exactly like any younger sibling of the failed
attempt.  Retries therefore never *widen* the permitted-join relation:
under TJ-SP, any task permitted to join attempt *n+1* (spawn path
``P + (j,)``) was already permitted to join attempt *n* (``P + (i,)``
with ``i < j``), because the two paths agree up to the parent and the
retry only moves to a *later* sibling index.  ``tests/runtime/
test_retry.py`` checks that differentially against the policy family.

Backoff is exponential with bounded, *seeded* jitter: the delay before
attempt ``k`` is ``min(base_delay * multiplier**(k-1), max_delay)``
scaled by a factor drawn deterministically from the (seed, site,
attempt) triple — reruns of a chaos program reproduce the exact same
schedule, matching the determinism contract of
:class:`repro.testing.faults.FaultPlan`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..errors import (
    DeadlockError,
    PolicyQuarantinedError,
    PolicyViolationError,
    TaskCancelledError,
)

__all__ = ["RetryPolicy", "DEFAULT_NON_RETRYABLE"]

#: exception types that must never be retried: verdicts and cancellations
#: are properties of the task *graph*, not transient failures — re-running
#: the body cannot change them, and retrying a deadlock diagnosis would
#: re-block the very edge the verifier just refused.
DEFAULT_NON_RETRYABLE = (
    TaskCancelledError,
    PolicyViolationError,
    PolicyQuarantinedError,
    DeadlockError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) a failed task body is re-run.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first; ``max_attempts=3`` means up
        to two retries.
    base_delay / multiplier / max_delay:
        Exponential backoff: attempt ``k`` (the k-th *retry*) waits
        ``min(base_delay * multiplier**(k-1), max_delay)`` seconds
        before jitter.
    jitter:
        Fractional jitter amplitude in ``[0, 1]``: the delay is scaled
        by a factor uniform in ``[1-jitter, 1+jitter]``, drawn from a
        deterministic per-(seed, site, attempt) stream.
    seed:
        Seeds the jitter stream; same seed, same schedule.
    retry_on:
        Only exceptions matching these types are retried...
    non_retryable:
        ...unless they also match one of these (checked second, wins).
    """

    max_attempts: int = 3
    base_delay: float = 0.001
    multiplier: float = 2.0
    max_delay: float = 0.05
    jitter: float = 0.5
    seed: int = 0
    retry_on: tuple = (Exception,)
    non_retryable: tuple = field(default=DEFAULT_NON_RETRYABLE)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def retryable(self, exc: BaseException) -> bool:
        """Should a failure with *exc* be retried (attempt budget aside)?"""
        return isinstance(exc, self.retry_on) and not isinstance(exc, self.non_retryable)

    def delay(self, attempt: int, site: Optional[str] = None) -> float:
        """Seconds to wait before retry number *attempt* (1-based)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter == 0.0:
            return raw
        rng = random.Random(f"{self.seed}|{site!r}|{attempt}")
        return raw * (1.0 + self.jitter * (rng.random() * 2.0 - 1.0))
