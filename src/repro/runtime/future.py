"""Futures — the joinable handles of the programming model (Section 2.2).

``async`` (here: :meth:`TaskRuntime.fork`) immediately returns a Future;
``Future.join()`` blocks until the associated task terminates and returns
its result, after the runtime's policy verifier has admitted the join.
Futures are freely copyable/shareable across tasks — that is precisely
what creates the arbitrary-join deadlock problem TJ solves.

Completion is **event-driven**: a future keeps a list of *wakers* (any
object with a ``set()`` method — a ``threading.Event``, a supervised
join record, a batch latch arm) and calls each exactly once when the
task terminates.  A blocked join therefore receives a targeted notify
the moment its joinee completes instead of discovering it on a poll
tick.  The waker list replaces the seed's per-future
``threading.Event`` (an Event allocates a Condition plus a Lock), which
also makes ``fork`` cheaper — the fast path of the paper's 1.06×
end-to-end overhead claim.

The waker protocol is lock-free under the GIL by ordering alone:
completion sets ``_done`` *before* snapshotting and waking the list,
and a registering waiter appends *before* re-checking ``done()`` — so
either the completer's snapshot contains the waiter, or the waiter's
re-check observes completion.  Either way no wakeup is lost.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from ..errors import TaskCancelledError, TaskFailedError

if TYPE_CHECKING:  # pragma: no cover
    from .task import TaskHandle

__all__ = ["Future"]

_PENDING = object()


class Future:
    """The eventual result of an asynchronously executing task."""

    __slots__ = (
        "task",
        "_runtime",
        "_value",
        "_exc",
        "_done",
        "_waiters",
        "_joined",
        "_retry",
        "_retry_attempt",
    )

    def __init__(self, runtime: object, task: "TaskHandle") -> None:
        self.task = task
        self._runtime = runtime
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._done = False
        #: wakers to notify (once each) when the task terminates
        self._waiters: list = []
        #: set by the first completed join; read by the unjoined-failure
        #: reaper at runtime shutdown
        self._joined = False
        #: retry configuration: None, or (RetryPolicy, parent TaskHandle).
        #: While a retry is pending the future stays *undone* — joiners
        #: keep blocking across attempts — and ``task`` is re-pointed at
        #: each fresh attempt's handle.
        self._retry = None
        #: number of retries already consumed (0 = first attempt running)
        self._retry_attempt = 0

    # ------------------------------------------------------------------
    # completion (called by the owning runtime)
    # ------------------------------------------------------------------
    def _set_result(self, value: Any) -> None:
        self._value = value
        self._finish()

    def _set_exception(self, exc: BaseException) -> None:
        self._exc = exc
        self._value = None
        self._finish()
        note = getattr(self._runtime, "_note_failure", None)
        if note is not None:
            note(self)

    def _finish(self) -> None:
        # Order matters: _done must be visible before any waker fires so
        # a woken waiter's done() check always succeeds.
        self._done = True
        for waker in list(self._waiters):
            waker.set()

    # ------------------------------------------------------------------
    # waker registration (the targeted-wakeup protocol)
    # ------------------------------------------------------------------
    def _add_waiter(self, waker) -> None:
        """Register *waker* to be ``set()`` on completion.

        Appends first, then re-checks completion: if the completer's
        snapshot raced past us, we fire the waker ourselves.  A waker
        must tolerate ``set()`` being called more than once (Events and
        the supervisor's records do).
        """
        self._waiters.append(waker)
        if self._done:
            waker.set()

    def _discard_waiter(self, waker) -> None:
        try:
            self._waiters.remove(waker)
        except ValueError:
            pass  # already drained by completion

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def done(self) -> bool:
        """Has the task terminated (successfully or not)?"""
        return self._done

    def cancelled(self) -> bool:
        """Did the task terminate by observing a cancellation request?"""
        return self._done and isinstance(self._exc, TaskCancelledError)

    def _wait(self, timeout: Optional[float] = None) -> bool:
        """Unverified completion wait (internal/tooling use only)."""
        if self._done:
            return True
        if timeout is not None and timeout <= 0:
            return False
        import threading

        waker = threading.Event()
        self._add_waiter(waker)
        try:
            waker.wait(timeout)
        finally:
            self._discard_waiter(waker)
        return self._done

    def _result_now(self) -> Any:
        """The result of a *terminated* task; wraps failures."""
        assert self._done
        if self._exc is not None:
            raise TaskFailedError(self.task, self._exc)
        return self._value

    # ------------------------------------------------------------------
    # the join operation
    # ------------------------------------------------------------------
    def join(self, timeout: Optional[float] = None) -> Any:
        """Block until the task terminates and return its result.

        The join is first checked by the runtime's verifier; a disallowed
        join faults with :class:`~repro.errors.PolicyViolationError` or —
        under the hybrid configuration — only a truly cyclic join faults,
        with :class:`~repro.errors.DeadlockAvoidedError`.

        ``timeout`` (seconds) bounds the blocked wait on the blocking
        runtimes: expiry raises :class:`~repro.errors.JoinTimeoutError`
        carrying the blocked edge, after the wait-for edge has been
        unregistered — the same future may be joined again later.  When
        None, the runtime's ``default_join_timeout`` (if any) applies.

        In the cooperative runtime this method only works from the
        scheduler thread's currently running task; generator tasks should
        prefer ``result = yield future``.
        """
        if timeout is None:
            return self._runtime.join(self)
        return self._runtime.join(self, timeout=timeout)

    # ``get`` is the Futures-literature name used by some of the paper's
    # sources; keep it as an alias.
    get = join

    def cancel(self) -> bool:
        """Request cooperative cancellation of the task.

        Returns False if the task has already terminated (nothing to
        cancel), True once the request is recorded.  Cancellation is
        *cooperative*: a not-yet-started pool task is dropped before its
        body runs; a running task observes the request at its next
        cancellation point (fork, join, blocked-wait wakeup, or an
        explicit ``current_task().cancel_token.raise_if_cancelled()``)
        and terminates with :class:`~repro.errors.TaskCancelledError`.
        A task that never reaches a cancellation point runs to
        completion regardless.
        """
        if self._done:
            return False
        self.task.cancel_token.cancel()
        return True

    def __repr__(self) -> str:
        state = "done" if self._done else "pending"
        return f"<Future of {self.task.name}: {state}>"
