"""Futures — the joinable handles of the programming model (Section 2.2).

``async`` (here: :meth:`TaskRuntime.fork`) immediately returns a Future;
``Future.join()`` blocks until the associated task terminates and returns
its result, after the runtime's policy verifier has admitted the join.
Futures are freely copyable/shareable across tasks — that is precisely
what creates the arbitrary-join deadlock problem TJ solves.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, TYPE_CHECKING

from ..errors import TaskFailedError

if TYPE_CHECKING:  # pragma: no cover
    from .task import TaskHandle

__all__ = ["Future"]

_PENDING = object()


class Future:
    """The eventual result of an asynchronously executing task."""

    __slots__ = ("task", "_runtime", "_value", "_exc", "_event")

    def __init__(self, runtime: object, task: "TaskHandle") -> None:
        self.task = task
        self._runtime = runtime
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._event = threading.Event()

    # ------------------------------------------------------------------
    # completion (called by the owning runtime)
    # ------------------------------------------------------------------
    def _set_result(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _set_exception(self, exc: BaseException) -> None:
        self._exc = exc
        self._value = None
        self._event.set()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def done(self) -> bool:
        """Has the task terminated (successfully or not)?"""
        return self._event.is_set()

    def _wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def _result_now(self) -> Any:
        """The result of a *terminated* task; wraps failures."""
        assert self._event.is_set()
        if self._exc is not None:
            raise TaskFailedError(self.task, self._exc)
        return self._value

    # ------------------------------------------------------------------
    # the join operation
    # ------------------------------------------------------------------
    def join(self) -> Any:
        """Block until the task terminates and return its result.

        The join is first checked by the runtime's verifier; a disallowed
        join faults with :class:`~repro.errors.PolicyViolationError` or —
        under the hybrid configuration — only a truly cyclic join faults,
        with :class:`~repro.errors.DeadlockAvoidedError`.

        In the cooperative runtime this method only works from the
        scheduler thread's currently running task; generator tasks should
        prefer ``result = yield future``.
        """
        return self._runtime.join(self)

    # ``get`` is the Futures-literature name used by some of the paper's
    # sources; keep it as an alias.
    get = join

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"<Future of {self.task.name}: {state}>"
