"""Futures — the joinable handles of the programming model (Section 2.2).

``async`` (here: :meth:`TaskRuntime.fork`) immediately returns a Future;
``Future.join()`` blocks until the associated task terminates and returns
its result, after the runtime's policy verifier has admitted the join.
Futures are freely copyable/shareable across tasks — that is precisely
what creates the arbitrary-join deadlock problem TJ solves.
"""

from __future__ import annotations

import threading
from typing import Any, Optional, TYPE_CHECKING

from ..errors import TaskCancelledError, TaskFailedError

if TYPE_CHECKING:  # pragma: no cover
    from .task import TaskHandle

__all__ = ["Future"]

_PENDING = object()


class Future:
    """The eventual result of an asynchronously executing task."""

    __slots__ = ("task", "_runtime", "_value", "_exc", "_event", "_joined")

    def __init__(self, runtime: object, task: "TaskHandle") -> None:
        self.task = task
        self._runtime = runtime
        self._value: Any = _PENDING
        self._exc: Optional[BaseException] = None
        self._event = threading.Event()
        #: set by the first completed join; read by the unjoined-failure
        #: reaper at runtime shutdown
        self._joined = False

    # ------------------------------------------------------------------
    # completion (called by the owning runtime)
    # ------------------------------------------------------------------
    def _set_result(self, value: Any) -> None:
        self._value = value
        self._event.set()

    def _set_exception(self, exc: BaseException) -> None:
        self._exc = exc
        self._value = None
        self._event.set()
        note = getattr(self._runtime, "_note_failure", None)
        if note is not None:
            note(self)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def done(self) -> bool:
        """Has the task terminated (successfully or not)?"""
        return self._event.is_set()

    def cancelled(self) -> bool:
        """Did the task terminate by observing a cancellation request?"""
        return self._event.is_set() and isinstance(self._exc, TaskCancelledError)

    def _wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def _result_now(self) -> Any:
        """The result of a *terminated* task; wraps failures."""
        assert self._event.is_set()
        if self._exc is not None:
            raise TaskFailedError(self.task, self._exc)
        return self._value

    # ------------------------------------------------------------------
    # the join operation
    # ------------------------------------------------------------------
    def join(self, timeout: Optional[float] = None) -> Any:
        """Block until the task terminates and return its result.

        The join is first checked by the runtime's verifier; a disallowed
        join faults with :class:`~repro.errors.PolicyViolationError` or —
        under the hybrid configuration — only a truly cyclic join faults,
        with :class:`~repro.errors.DeadlockAvoidedError`.

        ``timeout`` (seconds) bounds the blocked wait on the blocking
        runtimes: expiry raises :class:`~repro.errors.JoinTimeoutError`
        carrying the blocked edge, after the wait-for edge has been
        unregistered — the same future may be joined again later.  When
        None, the runtime's ``default_join_timeout`` (if any) applies.

        In the cooperative runtime this method only works from the
        scheduler thread's currently running task; generator tasks should
        prefer ``result = yield future``.
        """
        if timeout is None:
            return self._runtime.join(self)
        return self._runtime.join(self, timeout=timeout)

    # ``get`` is the Futures-literature name used by some of the paper's
    # sources; keep it as an alias.
    get = join

    def cancel(self) -> bool:
        """Request cooperative cancellation of the task.

        Returns False if the task has already terminated (nothing to
        cancel), True once the request is recorded.  Cancellation is
        *cooperative*: a not-yet-started pool task is dropped before its
        body runs; a running task observes the request at its next
        cancellation point (fork, join, blocked wait, or an explicit
        ``current_task().cancel_token.raise_if_cancelled()``) and
        terminates with :class:`~repro.errors.TaskCancelledError`.
        A task that never reaches a cancellation point runs to
        completion regardless.
        """
        if self.done():
            return False
        self.task.cancel_token.cancel()
        return True

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"<Future of {self.task.name}: {state}>"
