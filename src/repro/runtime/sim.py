"""Deterministic-simulation runtime: seeded schedules + a virtual clock.

:class:`SimRuntime` extends the cooperative runtime into a full
deterministic-simulation harness (the style of the
``RustBackedSimulatorTestCase`` exemplar): every scheduling decision is
driven either by a seeded ``random.Random`` or by a replayed
:class:`~repro.runtime.explore.Schedule`, and every decision taken is
recorded — so any run, including a failing one, is replayable
byte-for-byte from ``(seed, program)`` or from a witness schedule the
predictor (:mod:`repro.predict`) emitted.

Time is **virtual**: the runtime owns a :class:`VirtualClock` that only
advances when no task is runnable, jumping straight to the earliest
pending timer.  ``yield rt.sleep(dt)`` parks a task for *dt* virtual
seconds without any wall-clock sleep, and ``default_join_timeout`` gives
every blocking join a virtual deadline that fires deterministically —
the discrete-event-simulation discipline: execution is instantaneous,
waiting is what takes time.

Determinism contract: identical ``(seed, program)`` produce the identical
event sequence, policy verdicts, recorded schedule, and results across
repeated runs and across processes (the seed is string-mixed through
``random.Random`` exactly like :mod:`repro.testing.faults`, so it is
immune to hash randomisation).  A recorded schedule replayed through a
fresh ``SimRuntime`` retraces the run decision-for-decision; with
``strict=True`` the replay also validates the recorded queue widths, so
divergence (a different program, a nondeterministic task body) is an
error instead of a silently different run.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Callable, Optional, Sequence, Union

from .cooperative import CooperativeRuntime, _Resume
from .explore import Schedule
from .future import Future
from .task import TaskHandle, TaskState
from ..core.policy import JoinPolicy
from ..errors import JoinTimeoutError, RuntimeStateError

__all__ = ["SimRuntime", "VirtualClock"]


class VirtualClock:
    """A monotonic clock that advances only when told to.

    Duck-type-compatible with the supervision layer's wall clock
    (:data:`repro.runtime.supervisor.WALL_CLOCK`): ``monotonic`` reads
    the current virtual time, ``sleep`` advances it instantly, and
    ``wait`` treats an event timeout as a pure time advance — so a
    supervised join deadline under a virtual clock expires
    deterministically without the thread ever sleeping.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def monotonic(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot advance a monotonic clock backwards")
        self._now += seconds

    def advance_to(self, deadline: float) -> None:
        if deadline > self._now:
            self._now = deadline

    def wait(self, event, timeout: Optional[float] = None) -> bool:
        """Event-wait protocol: consume *timeout* as virtual time.

        With no timeout a virtual wait cannot legally block (nothing
        else advances the clock), so an unset event is an error rather
        than a hang.
        """
        if event.is_set():
            return True
        if timeout is None:
            raise RuntimeStateError(
                "untimed event wait under a virtual clock would hang; "
                "give the wait a deadline"
            )
        self.advance(timeout)
        return event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualClock t={self._now:.6f}>"


class _Sleep:
    """Marker a task yields to park on the virtual clock."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("sleep duration must be non-negative")
        self.seconds = float(seconds)


class SimRuntime(CooperativeRuntime):
    """Single-threaded deterministic scheduler with recorded decisions.

    Parameters
    ----------
    policy, fallback:
        As for :class:`~repro.runtime.cooperative.CooperativeRuntime`.
    seed:
        Seeds the scheduling RNG.  ``None`` (default) schedules FIFO —
        index 0 at every decision — which makes an unseeded SimRuntime
        behave exactly like the plain cooperative runtime plus
        recording (the overhead benchmark compares these two).
    schedule:
        A :class:`~repro.runtime.explore.Schedule` to replay.  Its
        choices drive the first ``len(schedule)`` decisions; later
        decisions fall back to the seed / FIFO default (a witness
        schedule is usually complete, so the fallback never engages on
        an exact replay).
    director:
        Optional ``director(ready_tasks) -> index`` callable consulted
        after the replayed prefix instead of the RNG — the predictor's
        guided search hands the actual ready tasks to a cycle-driving
        heuristic.  Directed decisions are recorded like any other, so
        the resulting schedule replays without the director.
    default_join_timeout:
        When set, every blocking join gets a *virtual* deadline this
        many seconds out; expiry resumes the joiner with
        :class:`~repro.errors.JoinTimeoutError` at the blocked yield.
    strict:
        Replay validation: when True (default) a replayed choice that is
        out of range for the actual queue width — or, if the schedule
        carries widths, a width mismatch — raises ``RuntimeStateError``
        instead of silently diverging.
    max_steps:
        Safety budget on scheduler steps (spin-waiting reconstructed
        programs cannot loop forever under an adversarial RNG).
    """

    def __init__(
        self,
        policy: Union[None, str, JoinPolicy] = "TJ-SP",
        *,
        fallback: bool = True,
        seed: Optional[int] = None,
        schedule: Optional[Schedule] = None,
        director: Optional[Callable[[Sequence[TaskHandle]], int]] = None,
        default_join_timeout: Optional[float] = None,
        strict: bool = True,
        max_steps: int = 1_000_000,
    ) -> None:
        super().__init__(policy, fallback=fallback, scheduler=None)
        self._rng = random.Random(f"sim|{seed}") if seed is not None else None
        self._seed = seed
        self._replay = schedule.choices if schedule is not None else ()
        self._replay_widths = schedule.widths if schedule is not None else ()
        self._director = director
        self._strict = strict
        self._max_steps = max_steps
        self._decision = 0
        self._choices: list[int] = []
        self._widths: list[int] = []
        self.clock = VirtualClock()
        self.default_join_timeout = default_join_timeout
        #: (deadline, tie-break, task, future-or-None) min-heap; a None
        #: future is a sleep timer, otherwise a join deadline
        self._timers: list[tuple[float, int, TaskHandle, Optional[Future]]] = []
        self._timer_seq = 0
        self.timeouts_fired = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.clock.monotonic()

    @property
    def recorded_schedule(self) -> Schedule:
        """Every decision taken so far, as a replayable Schedule."""
        return Schedule(
            choices=tuple(self._choices),
            widths=tuple(self._widths),
            seed=self._seed,
        )

    def sleep(self, seconds: float) -> _Sleep:
        """A marker to yield: park the task for *seconds* virtual time."""
        return _Sleep(seconds)

    # ------------------------------------------------------------------
    # the deterministic scheduling decision
    # ------------------------------------------------------------------
    def _select_task(self) -> TaskHandle:
        if self._steps >= self._max_steps:
            raise RuntimeStateError(
                f"simulation exceeded {self._max_steps} scheduler steps"
            )
        width = len(self._ready)
        if width == 1:
            # Not a decision: matches the explorer's width>1 convention,
            # so schedules transfer between the two unchanged.
            return self._ready.popleft()
        at = self._decide(width)
        self._decision += 1
        self._choices.append(at)
        self._widths.append(width)
        self._ready.rotate(-at)
        task = self._ready.popleft()
        self._ready.rotate(at)
        return task

    def _decide(self, width: int) -> int:
        k = self._decision
        if k < len(self._replay):
            at = self._replay[k]
            if self._strict:
                if self._replay_widths and self._replay_widths[k] != width:
                    raise RuntimeStateError(
                        f"schedule replay diverged at decision {k}: recorded "
                        f"width {self._replay_widths[k]}, actual {width}"
                    )
                if not 0 <= at < width:
                    raise RuntimeStateError(
                        f"schedule replay diverged at decision {k}: choice "
                        f"{at} out of range for width {width}"
                    )
            return at if 0 <= at < width else 0
        if self._director is not None:
            at = self._director(tuple(self._ready))
            if not 0 <= at < width:
                raise RuntimeStateError(
                    f"director returned index {at} for queue of {width}"
                )
            return at
        if self._rng is not None:
            return self._rng.randrange(width)
        return 0  # FIFO

    # ------------------------------------------------------------------
    # virtual-clock integration
    # ------------------------------------------------------------------
    def _handle_other_yield(self, task: TaskHandle, yielded: Any) -> bool:
        if isinstance(yielded, _Sleep):
            task.state = TaskState.BLOCKED
            self._push_timer(self.now + yielded.seconds, task, None)
            return True
        return False

    def _parked(self, task: TaskHandle, future: Future) -> None:
        if self.default_join_timeout is not None:
            self._push_timer(self.now + self.default_join_timeout, task, future)

    def _push_timer(
        self, deadline: float, task: TaskHandle, future: Optional[Future]
    ) -> None:
        self._timer_seq += 1
        heapq.heappush(self._timers, (deadline, self._timer_seq, task, future))

    def _on_idle(self) -> bool:
        while self._timers:
            deadline, _, task, future = heapq.heappop(self._timers)
            if future is None:
                # Sleep timer: always live (a sleeping task holds no
                # other parking spot).
                self.clock.advance_to(deadline)
                task.state = TaskState.RUNNING
                self._ready.append(task)
                return True
            # Join deadline: only live while the task still blocks on
            # that same future (lazy cancellation).
            if self._blocked_on.get(task) is not future or future.done():
                continue
            self.clock.advance_to(deadline)
            del self._blocked_on[task]
            waiters = self._waiters.get(future)
            if waiters is not None:
                waiters.remove(task)
                if not waiters:
                    del self._waiters[future]
            if self._hybrid is not None:
                self._hybrid.end_join(task, future.task)
            self.timeouts_fired += 1
            task.state = TaskState.RUNNING
            self._resume[task] = _Resume(
                exc=JoinTimeoutError(task, future.task, self.default_join_timeout)
            )
            self._ready.append(task)
            return True
        return super()._on_idle()
