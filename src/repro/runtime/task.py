"""Task records.

A :class:`TaskHandle` is the runtime identity of one asynchronous task —
the ``{node: u, code: f}`` record of Section 5.1.  ``vertex`` is the
opaque policy handle returned by ``AddChild``; the handle itself is the
vertex used in the Armus waits-for graph.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Callable, Optional

from ..errors import TaskCancelledError

__all__ = ["CancelToken", "TaskHandle", "TaskState"]

_uid = itertools.count()


class TaskState(Enum):
    CREATED = "created"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class CancelToken:
    """A set-once cooperative cancellation flag attached to each task.

    ``cancel()`` only *requests* cancellation; the task observes it at its
    next cancellation point — fork, join entry, a blocked supervised wait,
    or an explicit :meth:`raise_if_cancelled` inside the task body.  The
    flag is monotonic (never cleared), so a plain attribute read suffices:
    under the GIL a set-once boolean needs no lock, and a racing reader
    merely observes the request one check later.

    A blocked supervised wait registers a *waker* (:meth:`_add_waker`) so
    ``cancel()`` interrupts the wait immediately instead of on the next
    poll tick.  The waker list is allocated lazily: the common task never
    blocks-and-registers, and the single-writer discipline (a task blocks
    on at most one join at a time, and registers its own waker) makes the
    lazy ``None -> []`` transition race-free under the GIL.
    """

    __slots__ = ("_cancelled", "_wakers")

    def __init__(self) -> None:
        self._cancelled = False
        self._wakers: Optional[list] = None

    def cancel(self) -> None:
        """Request cancellation (idempotent) and wake any blocked wait."""
        self._cancelled = True
        # Flag first, then wake: a waiter registered concurrently either
        # lands in this snapshot or re-checks the flag after appending.
        wakers = self._wakers
        if wakers:
            for waker in list(wakers):
                waker.set()

    def cancelled(self) -> bool:
        return self._cancelled

    def _add_waker(self, waker) -> None:
        """Register *waker* to be ``set()`` when cancellation is requested."""
        if self._wakers is None:
            self._wakers = []
        self._wakers.append(waker)
        if self._cancelled:
            waker.set()

    def _discard_waker(self, waker) -> None:
        if self._wakers is None:
            return
        try:
            self._wakers.remove(waker)
        except ValueError:
            pass

    def raise_if_cancelled(self, task: object = None) -> None:
        """Raise :class:`TaskCancelledError` if cancellation was requested."""
        if self._cancelled:
            raise TaskCancelledError(task)


class TaskHandle:
    """Identity and bookkeeping for one task.

    ``name`` is materialised lazily: the default ``task-<uid>`` string is
    only interpolated when something actually reads it (reprs, watchdog
    diagnoses, error messages), which keeps the fork fast path free of
    string formatting.
    """

    __slots__ = (
        "uid",
        "_name",
        "vertex",
        "code",
        "state",
        "parent_uid",
        "cancel_token",
        "fork_lock",
    )

    def __init__(
        self,
        vertex: object,
        code: Optional[Callable[..., Any]] = None,
        *,
        name: Optional[str] = None,
        parent_uid: Optional[int] = None,
    ) -> None:
        self.uid = next(_uid)
        self._name = name
        self.vertex = vertex
        self.code = code
        self.state = TaskState.CREATED
        self.parent_uid = parent_uid
        self.cancel_token = CancelToken()
        #: serialises AddChild calls on this task's vertex (Section 5.1:
        #: no two add_child calls may share a parent concurrently).  Plain
        #: forks run only in the parent itself, so the lock is allocated
        #: lazily at the first *retry-enabled* fork — the one case where a
        #: re-fork (issued by whatever thread observed the failure) can
        #: race the parent's own forks.
        self.fork_lock = None

    @property
    def name(self) -> str:
        name = self._name
        if name is None:
            name = self._name = f"task-{self.uid}"
        return name

    def __repr__(self) -> str:
        return f"<TaskHandle {self.name} {self.state.value}>"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other
