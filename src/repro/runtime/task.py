"""Task records.

A :class:`TaskHandle` is the runtime identity of one asynchronous task —
the ``{node: u, code: f}`` record of Section 5.1.  ``vertex`` is the
opaque policy handle returned by ``AddChild``; the handle itself is the
vertex used in the Armus waits-for graph.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Callable, Optional

from ..errors import TaskCancelledError

__all__ = ["CancelToken", "TaskHandle", "TaskState"]

_uid = itertools.count()


class TaskState(Enum):
    CREATED = "created"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class CancelToken:
    """A set-once cooperative cancellation flag attached to each task.

    ``cancel()`` only *requests* cancellation; the task observes it at its
    next cancellation point — fork, join entry, a blocked supervised wait,
    or an explicit :meth:`raise_if_cancelled` inside the task body.  The
    flag is monotonic (never cleared), so a plain attribute read suffices:
    under the GIL a set-once boolean needs no lock, and a racing reader
    merely observes the request one check later.
    """

    __slots__ = ("_cancelled",)

    def __init__(self) -> None:
        self._cancelled = False

    def cancel(self) -> None:
        """Request cancellation (idempotent)."""
        self._cancelled = True

    def cancelled(self) -> bool:
        return self._cancelled

    def raise_if_cancelled(self, task: object = None) -> None:
        """Raise :class:`TaskCancelledError` if cancellation was requested."""
        if self._cancelled:
            raise TaskCancelledError(task)


class TaskHandle:
    """Identity and bookkeeping for one task."""

    __slots__ = ("uid", "name", "vertex", "code", "state", "parent_uid", "cancel_token")

    def __init__(
        self,
        vertex: object,
        code: Optional[Callable[..., Any]] = None,
        *,
        name: Optional[str] = None,
        parent_uid: Optional[int] = None,
    ) -> None:
        self.uid = next(_uid)
        self.name = name if name is not None else f"task-{self.uid}"
        self.vertex = vertex
        self.code = code
        self.state = TaskState.CREATED
        self.parent_uid = parent_uid
        self.cancel_token = CancelToken()

    def __repr__(self) -> str:
        return f"<TaskHandle {self.name} {self.state.value}>"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other
