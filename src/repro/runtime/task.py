"""Task records.

A :class:`TaskHandle` is the runtime identity of one asynchronous task —
the ``{node: u, code: f}`` record of Section 5.1.  ``vertex`` is the
opaque policy handle returned by ``AddChild``; the handle itself is the
vertex used in the Armus waits-for graph.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Any, Callable, Optional

__all__ = ["TaskHandle", "TaskState"]

_uid = itertools.count()


class TaskState(Enum):
    CREATED = "created"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class TaskHandle:
    """Identity and bookkeeping for one task."""

    __slots__ = ("uid", "name", "vertex", "code", "state", "parent_uid")

    def __init__(
        self,
        vertex: object,
        code: Optional[Callable[..., Any]] = None,
        *,
        name: Optional[str] = None,
        parent_uid: Optional[int] = None,
    ) -> None:
        self.uid = next(_uid)
        self.name = name if name is not None else f"task-{self.uid}"
        self.vertex = vertex
        self.code = code
        self.state = TaskState.CREATED
        self.parent_uid = parent_uid

    def __repr__(self) -> str:
        return f"<TaskHandle {self.name} {self.state.value}>"

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other
