"""Phasers: barrier synchronisation with deadlock avoidance.

Habanero Java pairs futures with *phasers* — registration-based barriers
a task can signal and wait on phase by phase.  The TJ paper explicitly
scopes them out ("it is beyond the scope of this work to consider
primitives other than Futures", Section 2.4) while gesturing at them as
the high-level replacement for Listing 2's spin loop.  This module
implements them on the generalised Armus model, so barrier-only *and*
mixed join+barrier cycles are avoided, not hung.

Model: advancing from phase ``p`` of phaser ``P`` is the event
``(P, p)``.  Every registered party impedes ``(P, p)`` until it signals
for that phase; ``wait()`` blocks the caller on the event after an
atomic cycle check.  ``signal_and_wait()`` (the classic ``next``)
signals first — so a task never impedes an event it is about to wait
for, and single-phaser barriers can never self-deadlock.

Wakeups are batched per phase: each awaited phase owns one
``threading.Event`` that the completing advance sets exactly once, so a
waiter wakes once per phase it awaits — never for other phases'
advances (a shared condition variable would wake *every* waiter at
*every* advance, O(waiters × advances) spurious wakeups on split-phase
programs).  ``notifies`` counts the advance-side notifications issued.
"""

from __future__ import annotations

import itertools
import threading
import time
from time import perf_counter_ns
from typing import Hashable, Optional

from ..armus.generalized import GeneralizedDetector
from ..errors import JoinTimeoutError, RuntimeStateError
from ..obs import active as _active_telemetry
from .context import require_current_task

__all__ = ["Phaser"]

_phaser_ids = itertools.count()

#: main-thread re-check cadence, purely for Ctrl-C delivery
_MAIN_TICK = 0.05


class Phaser:
    """A multi-phase barrier with Armus-style avoidance.

    Parties are runtime tasks (the current task is looked up on each
    operation).  Typical use::

        ph = Phaser(detector)          # share one detector per program
        ph.register()                  # in each participating task
        ...
        ph.signal_and_wait()           # barrier: arrive + await the phase
        ...
        ph.deregister()                # stop participating

    ``signal()`` alone supports split-phase (fuzzy) barriers; ``wait()``
    alone lets non-signalling observers await a phase.
    """

    def __init__(self, detector: Optional[GeneralizedDetector] = None, *, name: str | None = None) -> None:
        self.name = name if name is not None else f"phaser-{next(_phaser_ids)}"
        self.detector = detector if detector is not None else GeneralizedDetector()
        self._lock = threading.Lock()
        self._phase = 0
        #: parties registered, mapped to the next phase they must signal
        self._parties: dict[Hashable, int] = {}
        #: signals received for the current phase
        self._arrived: set[Hashable] = set()
        #: one wake event per phase with live waiters; set (and dropped)
        #: exactly once, by the advance that completes the phase
        self._phase_events: dict[int, threading.Event] = {}
        #: phase-advance notifications issued (one per completed phase
        #: with waiters); tests assert single-wakeup behaviour with this
        self.notifies = 0
        #: total OS-level waits returned across all ``wait`` calls
        self.wakeups = 0
        obs = _active_telemetry()
        self._obs = obs
        if obs is not None:
            obs.registry.add_source("phaser", self.metrics_snapshot)

    def metrics_snapshot(self) -> dict:
        """Uniform stats-source protocol for the notify/wakeup counters."""
        with self._lock:
            return {
                "notifies": self.notifies,
                "wakeups": self.wakeups,
                "registered_parties": len(self._parties),
            }

    # ------------------------------------------------------------------
    @property
    def phase(self) -> int:
        with self._lock:
            return self._phase

    def _event(self, phase: int) -> tuple[str, int]:
        return (self.name, phase)

    def _phase_wake(self, phase: int) -> threading.Event:
        """The wake event of *phase*; caller holds the lock."""
        wake = self._phase_events.get(phase)
        if wake is None:
            wake = self._phase_events[phase] = threading.Event()
        return wake

    # ------------------------------------------------------------------
    def register(self) -> None:
        """Enrol the current task as a party of the current phase."""
        task = require_current_task()
        with self._lock:
            if task in self._parties:
                raise RuntimeStateError(f"{task!r} already registered on {self.name}")
            self._parties[task] = self._phase
        self.detector.add_impeder(task, self._event(self._phase))

    def deregister(self) -> None:
        """Withdraw the current task; may release the waiting parties."""
        task = require_current_task()
        with self._lock:
            phase = self._parties.pop(task, None)
            if phase is None:
                raise RuntimeStateError(f"{task!r} not registered on {self.name}")
            self._arrived.discard(task)
            current = self._phase
        self.detector.remove_impeder(task, self._event(current))
        self._maybe_advance()

    def signal(self) -> int:
        """Arrive at the current phase without waiting; returns the phase."""
        task = require_current_task()
        with self._lock:
            if task not in self._parties:
                raise RuntimeStateError(f"{task!r} not registered on {self.name}")
            if task in self._arrived:
                return self._phase
            self._arrived.add(task)
            phase = self._phase
        self.detector.remove_impeder(task, self._event(phase))
        self._maybe_advance()
        return phase

    def _maybe_advance(self) -> None:
        """Advance the phase once every registered party has arrived."""
        with self._lock:
            if self._parties and self._arrived != set(self._parties):
                return
            if not self._parties and not self._arrived:
                pass  # deregistration of the last party also releases
            phase = self._phase
            self._phase += 1
            self._arrived.clear()
            # Every party impedes the new phase.  Registered *before*
            # waiters are woken, so no cycle check ever runs against a
            # phase whose impeders are still being installed (lock order
            # is phaser -> detector, never the reverse).
            new_event = self._event(phase + 1)
            for party in self._parties:
                self._parties[party] = self._phase
            # One batched registration (single detector lock acquisition)
            # instead of one add_impeder call per party per phase.
            self.detector.add_impeders(list(self._parties), new_event)
            # One notify for the whole phase: set (and retire) the
            # completed phase's event.  Waiters of other phases sleep on.
            wake = self._phase_events.pop(phase, None)
            if wake is not None:
                self.notifies += 1
                wake.set()

    def wait(self, phase: Optional[int] = None, *, timeout: Optional[float] = None) -> int:
        """Block until *phase* (default: the current one) completes.

        The block is first checked against the generalised waits-for
        state; a true cycle raises
        :class:`~repro.errors.DeadlockAvoidedError` without blocking.
        The wait is event-driven: the advance completing the awaited
        phase delivers one targeted notify, so a waiter performs O(1)
        wakeups (the main thread additionally re-checks on a coarse
        tick so Ctrl-C is honoured).  ``timeout`` (seconds) bounds the
        wait: expiry raises :class:`~repro.errors.JoinTimeoutError`
        whose ``joinee`` is the phase event ``(phaser-name, phase)``,
        after the waits-for edge has been released — the phaser itself
        stays usable.  Returns the phase that completed.
        """
        task = require_current_task()
        with self._lock:
            target = self._phase if phase is None else phase
            if self._phase > target:
                return target  # already past it
            wake = self._phase_wake(target)
        event = self._event(target)
        deadline = None if timeout is None else time.monotonic() + timeout
        on_main = threading.current_thread() is threading.main_thread()
        self.detector.block(task, event)
        obs = self._obs
        t0 = perf_counter_ns() if obs is not None else 0
        try:
            while True:
                with self._lock:
                    if self._phase > target:
                        return target
                wait_t = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise JoinTimeoutError(task, event, timeout)
                    wait_t = remaining
                if on_main and (wait_t is None or _MAIN_TICK < wait_t):
                    wait_t = _MAIN_TICK
                wake.wait(wait_t)
                with self._lock:
                    self.wakeups += 1
        finally:
            self.detector.unblock(task, event)
            if obs is not None:
                dur = perf_counter_ns() - t0
                obs.blocked_wait_ns.observe(dur)
                if obs.tracer is not None:
                    obs.tracer.complete(
                        "phaser_wait",
                        t0,
                        dur,
                        cat="phaser",
                        args={"phaser": self.name, "phase": target},
                    )

    def signal_and_wait(self, *, timeout: Optional[float] = None) -> int:
        """The classic barrier ``next``: arrive, then await everyone."""
        phase = self.signal()
        return self.wait(phase, timeout=timeout)

    # ------------------------------------------------------------------
    @property
    def registered_parties(self) -> int:
        with self._lock:
            return len(self._parties)
