"""The cooperative (single-threaded, deterministic) runtime.

The paper's footnote 4 mentions an alternative *cooperative work-sharing*
runtime used for NQueens; this module provides the Python analogue.
Tasks are generator functions; a task joins by yielding the future::

    def reducer(futs):
        total = 0
        for f in futs:
            total += (yield f)      # join
        return total

``yield None`` is a pure scheduling yield (the analogue of
``Thread.yield()`` in Listing 2's spin loop).  Plain (non-generator)
functions are also accepted and simply run to completion when scheduled.

Because scheduling is deterministic (FIFO), this runtime doubles as the
repository's deadlock sandbox: with verification disabled a cyclic join
pattern is *detected* (the scheduler observes that no task can make
progress and raises :class:`DeadlockDetectedError` instead of hanging),
and with verification enabled the same program receives a recoverable
:class:`DeadlockAvoidedError`/:class:`PolicyViolationError` at the
offending ``yield`` — tasks can catch it, exactly the recovery story of
Section 1.

Being single-threaded, this runtime never sleeps on a future: the
scheduler observes completion synchronously at each scheduling step, so
the event-driven waker protocol on :class:`~repro.runtime.future.Future`
(targeted wakes for the blocking runtimes' supervised waits) is simply
unused here — blocked generators are parked in data structures and
resumed when their future's task terminates.
"""

from __future__ import annotations

import inspect
from collections import deque
from typing import Any, Callable, Generator, Optional, Union

from .context import current_task, require_current_task, task_scope
from .future import Future
from .task import TaskHandle, TaskState
from ..armus.hybrid import HybridVerifier
from ..core.policy import JoinPolicy
from ..core.verifier import Verifier
from ..errors import (
    DeadlockDetectedError,
    RuntimeStateError,
    TaskCancelledError,
    TaskFailedError,
)
from .threaded import resolve_policy
from ..formal.deadlock import find_cycle

__all__ = ["CooperativeRuntime"]


class _Resume:
    """What to deliver to a task at its next step."""

    __slots__ = ("value", "exc")

    def __init__(self, value: Any = None, exc: Optional[BaseException] = None) -> None:
        self.value = value
        self.exc = exc


class CooperativeRuntime:
    """Deterministic single-threaded futures runtime with generator tasks."""

    def __init__(
        self,
        policy: Union[None, str, JoinPolicy] = "TJ-SP",
        *,
        fallback: bool = True,
        scheduler: Optional[Callable[[int], int]] = None,
    ) -> None:
        """``scheduler``, if given, picks which ready task runs next: it
        receives the current ready-queue length and returns an index into
        it.  The default (None) is FIFO.  Schedule exploration
        (:mod:`repro.runtime.explore`) uses this hook to drive a program
        through many interleavings deterministically."""
        policy_obj = resolve_policy(policy)
        self._hybrid: Optional[HybridVerifier] = HybridVerifier(policy_obj) if fallback else None
        self._verifier: Verifier = self._hybrid.verifier if self._hybrid else Verifier(policy_obj)
        self._scheduler = scheduler
        self._ready: deque[TaskHandle] = deque()
        self._resume: dict[TaskHandle, _Resume] = {}
        self._gen: dict[TaskHandle, Generator] = {}
        self._future: dict[TaskHandle, Future] = {}
        #: task -> future it is blocked on (the cooperative waits-for map)
        self._blocked_on: dict[TaskHandle, Future] = {}
        self._waiters: dict[Future, list[TaskHandle]] = {}
        self._running = False
        self._root_started = False
        self._steps = 0

    # ------------------------------------------------------------------
    @property
    def policy(self) -> JoinPolicy:
        return self._verifier.policy

    @property
    def verifier(self) -> Verifier:
        return self._verifier

    @property
    def detector(self):
        return self._hybrid.detector if self._hybrid else None

    @property
    def steps(self) -> int:
        """Scheduler steps executed so far (determinism aid for tests)."""
        return self._steps

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute *fn* as the root task; drive the scheduler to completion."""
        if self._root_started:
            raise RuntimeStateError(
                "this runtime already hosted a root task; create a fresh "
                "CooperativeRuntime per program run"
            )
        self._root_started = True
        vertex = self._verifier.on_init()
        root = self._make_task(vertex, fn, args, kwargs, name="root")
        root_future = self._future[root]
        self._running = True
        try:
            self._loop()
        finally:
            self._running = False
        assert root_future.done()
        root_future._joined = True
        return root_future._result_now()

    def fork(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """``async fn(*args)`` from within a running task.

        Forking is a cancellation point: a cancelled task faults here
        with :class:`~repro.errors.TaskCancelledError`.
        """
        parent = require_current_task()
        parent.cancel_token.raise_if_cancelled(parent)
        vertex = self._verifier.on_fork(parent.vertex)
        task = self._make_task(vertex, fn, args, kwargs)
        return self._future[task]

    def join(self, future: Future, *, timeout: Optional[float] = None) -> Any:
        """Synchronous join — only legal on an already-terminated future.

        A cooperative task that needs to *wait* must use ``yield future``;
        blocking here would freeze the whole scheduler, so it is refused.
        ``timeout`` is accepted for interface parity with the blocking
        runtimes and ignored: a join that is legal here never waits.
        """
        if future._runtime is not self:
            raise RuntimeStateError("future belongs to a different runtime")
        joiner = require_current_task()
        if not future.done():
            raise RuntimeStateError(
                "cooperative tasks must join with `result = yield future`; "
                "Future.join() can only collect already-terminated tasks"
            )
        joinee = future.task
        if self._hybrid is not None:
            self._hybrid.begin_join(
                joiner, joinee, joiner.vertex, joinee.vertex, joinee_done=True
            )
            self._hybrid.on_join_completed(joiner.vertex, joinee.vertex)
        else:
            self._verifier.require_join(joiner.vertex, joinee.vertex)
            self._verifier.on_join_completed(joiner.vertex, joinee.vertex)
        future._joined = True
        return future._result_now()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _make_task(
        self,
        vertex: object,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        *,
        name: Optional[str] = None,
    ) -> TaskHandle:
        parent = current_task()
        task = TaskHandle(
            vertex, code=fn, name=name, parent_uid=parent.uid if parent else None
        )
        future = Future(self, task)
        self._future[task] = future
        # Instantiate the body immediately so generator-function detection
        # happens at fork time; execution starts at the first scheduler step.
        if inspect.isgeneratorfunction(fn):
            self._gen[task] = fn(*args, **kwargs)
        else:
            # Plain callables run atomically when first scheduled.
            self._gen[task] = _as_generator(fn, args, kwargs)
        task.state = TaskState.RUNNING
        self._ready.append(task)
        return task

    def _loop(self) -> None:
        while True:
            if not self._ready:
                # The idle hook may wake parked tasks (the simulator's
                # virtual clock fires timers here); when it reports no
                # progress the run is over — or stuck.
                if self._on_idle():
                    continue
                break
            self._step(self._select_task())

    def _select_task(self) -> TaskHandle:
        """Pick the next ready task to step (the scheduling decision)."""
        if self._scheduler is None:
            return self._ready.popleft()
        at = self._scheduler(len(self._ready))
        if not 0 <= at < len(self._ready):
            raise RuntimeStateError(
                f"scheduler returned index {at} for queue of "
                f"{len(self._ready)}"
            )
        self._ready.rotate(-at)
        task = self._ready.popleft()
        self._ready.rotate(at)
        return task

    def _on_idle(self) -> bool:
        """No task is ready.  Returns True when progress was made.

        The base runtime can make none: blocked tasks with an empty
        ready queue are a deadlock (reported), and no blocked tasks
        means the program is done.  :class:`~repro.runtime.sim.SimRuntime`
        overrides this to advance its virtual clock and fire timers.
        """
        if self._blocked_on:
            self._report_stuck()
        return False

    def _report_stuck(self) -> None:
        """No runnable task but blocked tasks remain: a real deadlock.

        Unreachable while avoidance is active (that is Theorem 3.11 at
        work); with verification disabled this converts a hang into a
        diagnosable error carrying the cycle.
        """
        graph: dict[Any, set[Any]] = {}
        for task, future in self._blocked_on.items():
            graph.setdefault(task, set()).add(future.task)
            graph.setdefault(future.task, set())
        cycle = find_cycle(graph)
        raise DeadlockDetectedError(
            cycle=tuple(cycle) if cycle else tuple(self._blocked_on),
            message=None
            if cycle
            else "all tasks blocked but no cycle found (external future?)",
        )

    def _step(self, task: TaskHandle) -> None:
        gen = self._gen[task]
        resume = self._resume.pop(task, _Resume())
        if task.cancel_token.cancelled() and resume.exc is None:
            # Scheduling is a cancellation point: deliver the request as
            # an exception thrown into the generator, so the task can
            # run its cleanup (or catch and finish gracefully).
            resume = _Resume(exc=TaskCancelledError(task))
        self._steps += 1
        with task_scope(task):
            try:
                if resume.exc is not None:
                    yielded = gen.throw(resume.exc)
                else:
                    yielded = gen.send(resume.value)
            except StopIteration as stop:
                self._complete(task, value=stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - delivered at joins
                self._complete(task, exc=exc)
                return
        self._handle_yield(task, yielded)

    def _handle_yield(self, task: TaskHandle, yielded: Any) -> None:
        if yielded is None:
            # Pure scheduling yield: go to the back of the ready queue.
            self._ready.append(task)
            return
        if not isinstance(yielded, Future):
            if self._handle_other_yield(task, yielded):
                return
            self._resume[task] = _Resume(
                exc=RuntimeStateError(f"task yielded {yielded!r}; yield a Future or None")
            )
            self._ready.append(task)
            return
        future = yielded
        if future._runtime is not self:
            self._resume[task] = _Resume(
                exc=RuntimeStateError("future belongs to a different runtime")
            )
            self._ready.append(task)
            return
        joinee = future.task
        try:
            if self._hybrid is not None:
                blocked = self._hybrid.begin_join(
                    task, joinee, task.vertex, joinee.vertex, joinee_done=future.done()
                )
            else:
                self._verifier.require_join(task.vertex, joinee.vertex)
        except BaseException as exc:  # policy fault or avoided deadlock
            self._resume[task] = _Resume(exc=exc)
            self._ready.append(task)
            return
        if future.done():
            self._finish_join(task, future)
            self._ready.append(task)
            return
        # Genuinely blocked: park until the joinee completes.
        task.state = TaskState.BLOCKED
        self._blocked_on[task] = future
        self._waiters.setdefault(future, []).append(task)
        self._parked(task, future)

    def _handle_other_yield(self, task: TaskHandle, yielded: Any) -> bool:
        """Hook for subclass yield vocabulary (e.g. the simulator's
        sleep markers).  Return True when *yielded* was consumed."""
        return False

    def _parked(self, task: TaskHandle, future: Future) -> None:
        """Hook: *task* just blocked on *future* (simulator deadlines)."""

    def _finish_join(self, task: TaskHandle, future: Future) -> None:
        """Deliver a completed join's result (or failure) at next resume."""
        joinee = future.task
        if self._hybrid is not None:
            self._hybrid.on_join_completed(task.vertex, joinee.vertex)
        else:
            self._verifier.on_join_completed(task.vertex, joinee.vertex)
        future._joined = True
        try:
            value = future._result_now()
        except TaskFailedError as exc:
            self._resume[task] = _Resume(exc=exc)
        else:
            self._resume[task] = _Resume(value=value)

    def _complete(self, task: TaskHandle, value: Any = None, exc: Optional[BaseException] = None) -> None:
        future = self._future[task]
        if exc is not None:
            task.state = TaskState.FAILED
            future._set_exception(exc)
        else:
            task.state = TaskState.DONE
            future._set_result(value)
        del self._gen[task]
        for waiter in self._waiters.pop(future, ()):
            blocked_future = self._blocked_on.pop(waiter, None)
            assert blocked_future is future
            if self._hybrid is not None:
                self._hybrid.end_join(waiter, task)
            waiter.state = TaskState.RUNNING
            self._finish_join(waiter, future)
            self._ready.append(waiter)


def _as_generator(fn: Callable[..., Any], args: tuple, kwargs: dict) -> Generator:
    """Wrap a plain callable as a single-step generator task body."""
    if False:  # pragma: no cover - makes this function a generator
        yield None
    return fn(*args, **kwargs)
