"""A blocking work-sharing pool runtime (Habanero Java's default model).

The evaluation ran five of six benchmarks on HJ's *blocking work-sharing
runtime*: a pool of worker threads executing tasks from a shared queue,
where a worker that blocks in a join is *compensated* by growing the
pool so queued tasks are never starved of a worker.  The thread-per-task
runtime (:class:`TaskRuntime`) over-approximates that model; this class
implements it properly:

* ``fork`` enqueues the task; an idle worker picks it up;
* a worker about to block in ``join`` checks whether any idle worker
  remains — if not, it starts a compensation worker (bounded by
  ``max_workers``) before blocking, preserving progress;
* join verification is identical to the other runtimes (policy gate,
  Armus filter, KJ-learn).

Compensation removes *scheduler-induced* deadlocks (all workers blocked
while runnable tasks wait in the queue); *join-cycle* deadlocks remain
the policy's job — which is the paper's division of labour.
"""

from __future__ import annotations

import threading
from queue import Empty, SimpleQueue
from typing import Any, Callable, Optional, Sequence, Union

from .context import require_current_task, task_scope
from .future import Future
from .task import TaskHandle, TaskState
from .threaded import resolve_policy
from ..armus.hybrid import HybridVerifier
from ..core.policy import JoinPolicy
from ..core.verifier import Verifier
from ..errors import PolicyViolationError, RuntimeStateError, TaskFailedError

__all__ = ["WorkSharingRuntime"]

_SHUTDOWN = object()


class WorkSharingRuntime:
    """Task-parallel futures on a self-compensating worker pool."""

    def __init__(
        self,
        policy: Union[None, str, JoinPolicy] = "TJ-SP",
        *,
        fallback: bool = True,
        workers: int = 4,
        max_workers: int = 256,
    ) -> None:
        if workers < 1 or max_workers < workers:
            raise ValueError("need 1 <= workers <= max_workers")
        policy_obj = resolve_policy(policy)
        self._hybrid: Optional[HybridVerifier] = HybridVerifier(policy_obj) if fallback else None
        self._verifier: Verifier = self._hybrid.verifier if self._hybrid else Verifier(policy_obj)
        self._queue: "SimpleQueue" = SimpleQueue()
        self._lock = threading.Lock()
        self._idle = 0  # workers currently parked on queue.get
        self._worker_count = 0
        self._peak_workers = 0
        self._compensations = 0
        self._base_workers = workers
        self._max_workers = max_workers
        self._worker_threads: set[int] = set()  # thread idents of pool workers
        self._outstanding = 0  # forked tasks not yet terminated
        self._all_done = threading.Condition(self._lock)
        self._root_started = False
        self._shutdown = False

    # ------------------------------------------------------------------
    @property
    def policy(self) -> JoinPolicy:
        return self._verifier.policy

    @property
    def verifier(self) -> Verifier:
        return self._verifier

    @property
    def detector(self):
        return self._hybrid.detector if self._hybrid else None

    @property
    def peak_workers(self) -> int:
        """Largest pool size reached (base + compensation threads)."""
        with self._lock:
            return self._peak_workers

    @property
    def compensations(self) -> int:
        """How many compensation workers blocking joins forced us to add."""
        with self._lock:
            return self._compensations

    # ------------------------------------------------------------------
    # pool machinery
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> None:
        """Start one worker; caller holds the lock."""
        self._worker_count += 1
        self._peak_workers = max(self._peak_workers, self._worker_count)
        thread = threading.Thread(target=self._worker_main, daemon=True)
        thread.start()

    def _worker_main(self) -> None:
        self._worker_threads.add(threading.get_ident())
        while True:
            with self._lock:
                self._idle += 1
            item = self._queue.get()
            with self._lock:
                self._idle -= 1
            if item is _SHUTDOWN:
                return
            task, future, fn, args, kwargs = item
            self._execute(task, future, fn, args, kwargs)

    def _execute(self, task: TaskHandle, future: Future, fn, args, kwargs) -> None:
        task.state = TaskState.RUNNING
        with task_scope(task):
            try:
                value = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - delivered at join
                task.state = TaskState.FAILED
                future._set_exception(exc)
            else:
                task.state = TaskState.DONE
                future._set_result(value)
        with self._all_done:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._all_done.notify_all()

    def _ensure_capacity_for_block(self) -> None:
        """A pool worker is about to block: keep the pool progressing."""
        if threading.get_ident() not in self._worker_threads:
            return  # the root (or a foreign thread) blocking costs no worker
        with self._lock:
            if self._idle == 0 and self._worker_count < self._max_workers:
                self._compensations += 1
                self._spawn_worker()

    def _block_on(self, future: Future) -> None:
        """Wait for *future*, helping with queued tasks from a capped pool.

        Compensation keeps one spare worker per blocked one, but it is
        bounded by ``max_workers``; past the cap a blocked worker *helps*:
        it pulls runnable tasks off the queue and executes them inline
        while polling the future.  Deep fork trees therefore never starve
        (HJ's runtime solves the same problem with a similar mix of
        compensation and work assists)."""
        if threading.get_ident() not in self._worker_threads:
            future._wait()
            return
        while not future._wait(timeout=0.002):
            try:
                item = self._queue.get_nowait()
            except Empty:
                continue
            if item is _SHUTDOWN:
                # shutdown is only initiated once nothing is outstanding,
                # so this cannot happen while we are blocked; be safe.
                self._queue.put(item)
                continue
            task, item_future, fn, args, kwargs = item
            self._execute(task, item_future, fn, args, kwargs)

    # ------------------------------------------------------------------
    # task API (mirrors TaskRuntime)
    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute *fn* as the root task in the calling thread.

        Returns after *fn* finishes **and** every forked task has
        terminated (top-level implicit finish); then stops the pool.
        """
        with self._lock:
            if self._root_started:
                raise RuntimeStateError(
                    "this runtime already hosted a root task; create a fresh "
                    "WorkSharingRuntime per program run"
                )
            self._root_started = True
            for _ in range(self._base_workers):
                self._spawn_worker()
        vertex = self._verifier.on_init()
        root = TaskHandle(vertex, code=fn, name="root")
        root.state = TaskState.RUNNING
        try:
            with task_scope(root):
                result = fn(*args, **kwargs)
                root.state = TaskState.DONE
            return result
        except BaseException:
            root.state = TaskState.FAILED
            raise
        finally:
            with self._all_done:
                while self._outstanding:
                    self._all_done.wait()
                self._shutdown = True
                count = self._worker_count
            for _ in range(count):
                self._queue.put(_SHUTDOWN)

    def fork(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        parent = require_current_task()
        with self._lock:
            if self._shutdown:
                raise RuntimeStateError("runtime already shut down")
        vertex = self._verifier.on_fork(parent.vertex)
        task = TaskHandle(vertex, code=fn, parent_uid=parent.uid)
        future = Future(self, task)
        with self._all_done:
            self._outstanding += 1
        self._queue.put((task, future, fn, args, kwargs))
        return future

    def join(self, future: Future) -> Any:
        if future._runtime is not self:
            raise RuntimeStateError("future belongs to a different runtime")
        joiner = require_current_task()
        return self._join_one(joiner, future, None)

    def join_batch(
        self, futures: Sequence[Future], *, return_exceptions: bool = False
    ) -> list:
        """Join several futures with one batched verification pass.

        Semantics match :meth:`TaskRuntime.join_batch <repro.runtime.threaded.TaskRuntime.join_batch>`:
        ``stable_permits`` policies are verified in one
        ``Verifier.check_joins`` call, learning policies per future;
        results come back in input order; ``return_exceptions=True``
        collects :class:`~repro.errors.TaskFailedError` s in place.
        """
        futures = list(futures)
        for f in futures:
            if f._runtime is not self:
                raise RuntimeStateError("future belongs to a different runtime")
        if not futures:
            return []
        joiner = require_current_task()
        if self._verifier.policy.stable_permits:
            verdicts = self._verifier.check_joins(
                joiner.vertex, [f.task.vertex for f in futures]
            )
            flags: list[Optional[bool]] = [not ok for ok in verdicts]
        else:
            flags = [None] * len(futures)
        results = []
        for future, flagged in zip(futures, flags):
            try:
                results.append(self._join_one(joiner, future, flagged))
            except TaskFailedError as exc:
                if not return_exceptions:
                    raise
                results.append(exc)
        return results

    def _join_one(self, joiner, future: Future, flagged: Optional[bool]) -> Any:
        joinee = future.task
        if self._hybrid is not None:
            blocked = self._hybrid.begin_join(
                joiner,
                joinee,
                joiner.vertex,
                joinee.vertex,
                joinee_done=future.done(),
                flagged=flagged,
            )
            if blocked:
                self._ensure_capacity_for_block()
                prev = joiner.state
                joiner.state = TaskState.BLOCKED
                try:
                    self._block_on(future)
                finally:
                    self._hybrid.end_join(joiner, joinee)
                    joiner.state = prev
            self._hybrid.on_join_completed(joiner.vertex, joinee.vertex)
        else:
            if flagged is None:
                self._verifier.require_join(joiner.vertex, joinee.vertex)
            elif flagged:
                raise PolicyViolationError(
                    self._verifier.policy.name, joiner.vertex, joinee.vertex
                )
            if not future.done():
                self._ensure_capacity_for_block()
            prev = joiner.state
            joiner.state = TaskState.BLOCKED
            try:
                self._block_on(future)
            finally:
                joiner.state = prev
            self._verifier.on_join_completed(joiner.vertex, joinee.vertex)
        return future._result_now()
