"""A blocking work-sharing pool runtime (Habanero Java's default model).

The evaluation ran five of six benchmarks on HJ's *blocking work-sharing
runtime*: a pool of worker threads executing tasks from a shared queue,
where a worker that blocks in a join is *compensated* by growing the
pool so queued tasks are never starved of a worker.  The thread-per-task
runtime (:class:`TaskRuntime`) over-approximates that model; this class
implements it properly:

* ``fork`` enqueues the task; an idle worker picks it up;
* a worker about to block in ``join`` checks whether any idle worker
  remains — if not, it starts a compensation worker (bounded by
  ``max_workers``) before blocking, preserving progress;
* join verification is identical to the other runtimes (policy gate,
  Armus filter, KJ-learn).

Compensation removes *scheduler-induced* deadlocks (all workers blocked
while runnable tasks wait in the queue); *join-cycle* deadlocks remain
the policy's job — which is the paper's division of labour.  On top of
that sits the supervision layer (:mod:`repro.runtime.supervisor`): join
deadlines, cooperative cancellation, a stall watchdog that turns true
join cycles into :class:`~repro.errors.DeadlockDetectedError` even with
``policy=None``, and an unjoined-failure reaper at shutdown.
"""

from __future__ import annotations

import threading
from queue import Empty, SimpleQueue
from time import perf_counter_ns
from typing import Any, Callable, Optional, Union

from .context import require_current_task, task_scope
from .future import Future
from .retry import RetryPolicy
from .supervisor import StallWatchdog, SupervisedJoinMixin
from .task import TaskHandle, TaskState
from .threaded import resolve_policy, resolve_verifier
from ..core.policy import JoinPolicy
from ..core.verifier import Verifier
from ..errors import RuntimeStateError, TaskCancelledError

__all__ = ["WorkSharingRuntime"]

_SHUTDOWN = object()


class WorkSharingRuntime(SupervisedJoinMixin):
    """Task-parallel futures on a self-compensating worker pool.

    Supervision parameters (``default_join_timeout``, ``watchdog``,
    ``on_unjoined_failure``) match
    :class:`~repro.runtime.threaded.TaskRuntime`; unlike there, the
    unjoined-failure reaper here is exact — :meth:`run` waits for every
    forked task to terminate before reaping.
    """

    def __init__(
        self,
        policy: Union[None, str, JoinPolicy] = "TJ-SP",
        *,
        fallback: bool = True,
        fail_mode: str = "raise",
        journal: Union[None, str, object] = None,
        verifier: Union[None, str, Verifier] = None,
        workers: int = 4,
        max_workers: int = 256,
        default_join_timeout: Optional[float] = None,
        watchdog: Union[bool, float, StallWatchdog] = True,
        watchdog_interval: float = 0.1,
        on_unjoined_failure: str = "warn",
        clock=None,
    ) -> None:
        if workers < 1 or max_workers < workers:
            raise ValueError("need 1 <= workers <= max_workers")
        policy_obj = resolve_policy(policy)
        (
            self._hybrid,
            self._verifier,
            self._journal,
            self._owns_journal,
            self._owns_verifier,
        ) = resolve_verifier(
            policy_obj,
            fallback=fallback,
            fail_mode=fail_mode,
            journal=journal,
            verifier=verifier,
            runtime_name=type(self).__name__,
        )
        self._queue: "SimpleQueue" = SimpleQueue()
        self._lock = threading.Lock()
        self._idle = 0  # workers currently parked on queue.get
        self._worker_count = 0
        self._peak_workers = 0
        self._compensations = 0
        self._base_workers = workers
        self._max_workers = max_workers
        self._worker_threads: set[int] = set()  # thread idents of pool workers
        self._outstanding = 0  # forked tasks not yet terminated
        self._all_done = threading.Condition(self._lock)
        self._root_started = False
        self._shutdown = False
        self._init_supervision(
            default_join_timeout=default_join_timeout,
            watchdog=watchdog,
            watchdog_interval=watchdog_interval,
            on_unjoined_failure=on_unjoined_failure,
            clock=clock,
        )

    # ------------------------------------------------------------------
    @property
    def policy(self) -> JoinPolicy:
        return self._verifier.policy

    @property
    def verifier(self) -> Verifier:
        return self._verifier

    @property
    def detector(self):
        return self._hybrid.detector if self._hybrid else None

    @property
    def journal(self):
        """The trace journal, or None when journaling is disabled."""
        return self._journal

    @property
    def peak_workers(self) -> int:
        """Largest pool size reached (base + compensation threads)."""
        with self._lock:
            return self._peak_workers

    @property
    def compensations(self) -> int:
        """How many compensation workers blocking joins forced us to add."""
        with self._lock:
            return self._compensations

    def _metrics_snapshot(self) -> dict:
        out = super()._metrics_snapshot()
        with self._lock:
            out["workers"] = self._worker_count
            out["peak_workers"] = self._peak_workers
            out["compensations"] = self._compensations
            out["outstanding"] = self._outstanding
        return out

    # ------------------------------------------------------------------
    # pool machinery
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> None:
        """Start one worker; caller holds the lock."""
        self._worker_count += 1
        self._peak_workers = max(self._peak_workers, self._worker_count)
        thread = threading.Thread(target=self._worker_main, daemon=True)
        thread.start()

    def _worker_main(self) -> None:
        self._worker_threads.add(threading.get_ident())
        while True:
            with self._lock:
                self._idle += 1
            item = self._queue.get()
            with self._lock:
                self._idle -= 1
            if item is _SHUTDOWN:
                return
            task, future, fn, args, kwargs = item
            self._execute(task, future, fn, args, kwargs)

    def _execute(self, task: TaskHandle, future: Future, fn, args, kwargs) -> None:
        if task.cancel_token.cancelled():
            # Cancelled while still queued: never run the body.
            task.state = TaskState.FAILED
            future._set_exception(TaskCancelledError(task))
            with self._all_done:
                self._outstanding -= 1
                if self._outstanding == 0:
                    self._all_done.notify_all()
            return
        task.state = TaskState.RUNNING
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        with task_scope(task):
            handle = tracer.begin_span("run") if tracer is not None else None
            try:
                value = fn(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - delivered at join
                task.state = TaskState.FAILED
                retry_delay = self._prepare_retry(future, exc)
                if retry_delay is not None:
                    # Requeue the attempt instead of completing the
                    # future.  The task stays *outstanding* — run() must
                    # not shut the pool down between attempts — and the
                    # cancel check at the top of _execute drops retries
                    # cancelled during the backoff.
                    item = (task, future, fn, args, kwargs)
                    if retry_delay > 0.0:
                        timer = threading.Timer(retry_delay, self._queue.put, args=(item,))
                        timer.daemon = True
                        timer.start()
                    else:
                        self._queue.put(item)
                    return
                future._set_exception(exc)
                if self._journal is not None:
                    self._journal.log_complete(task.vertex, ok=False)
            else:
                task.state = TaskState.DONE
                future._set_result(value)
                if self._journal is not None:
                    self._journal.log_complete(task.vertex, ok=True)
            finally:
                if tracer is not None:
                    tracer.end_span(handle, args={"task": task.name})
        with self._all_done:
            self._outstanding -= 1
            if self._outstanding == 0:
                self._all_done.notify_all()

    def _ensure_capacity_for_block(self) -> None:
        """A pool worker is about to block: keep the pool progressing."""
        if threading.get_ident() not in self._worker_threads:
            return  # the root (or a foreign thread) blocking costs no worker
        with self._lock:
            if self._idle == 0 and self._worker_count < self._max_workers:
                self._compensations += 1
                self._spawn_worker()

    # ------------------------------------------------------------------
    # supervision hooks (see SupervisedJoinMixin)
    # ------------------------------------------------------------------
    def _before_block(self, future: Future) -> None:
        self._ensure_capacity_for_block()

    def _helper_tick(self) -> Optional[Callable[[], bool]]:
        """Does the blocked wait need to poll for help-work right now?

        Only a *saturated* pool does: no idle worker to take queued
        tasks and no headroom left to compensate.  Every other state
        lets the event-driven wait sleep untimed — the last worker to
        block at the cap always sees saturation here and keeps ticking,
        which is what preserves progress (see ``_wait_helper``).
        """
        if threading.get_ident() not in self._worker_threads:
            return None

        def saturated() -> bool:
            with self._lock:
                return self._idle == 0 and self._worker_count >= self._max_workers

        return saturated

    def _wait_helper(self) -> Optional[Callable[[], bool]]:
        """Blocked *workers* help: execute queued tasks between wakeups.

        Compensation keeps one spare worker per blocked one, but it is
        bounded by ``max_workers``; past the cap a blocked worker pulls
        runnable tasks off the queue and executes them inline between
        the ticks ``_helper_tick`` requests, so deep fork trees never
        starve (HJ's runtime solves the same problem with a similar mix
        of compensation and work assists).
        """
        if threading.get_ident() not in self._worker_threads:
            return None

        def helper() -> bool:
            with self._lock:
                if self._idle > 0 or self._worker_count < self._max_workers:
                    return False  # compensation (or an idle worker) has it
            try:
                item = self._queue.get_nowait()
            except Empty:
                return False
            if item is _SHUTDOWN:
                # shutdown is only initiated once nothing is outstanding,
                # so this cannot happen while we are blocked; be safe.
                self._queue.put(item)
                return False
            task, future, fn, args, kwargs = item
            self._execute(task, future, fn, args, kwargs)
            return True

        return helper

    # ------------------------------------------------------------------
    # task API (mirrors TaskRuntime)
    # ------------------------------------------------------------------
    def run(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Any:
        """Execute *fn* as the root task in the calling thread.

        Returns after *fn* finishes **and** every forked task has
        terminated (top-level implicit finish); then stops the pool,
        reaps unjoined failures, and retires the watchdog.
        """
        with self._lock:
            if self._root_started:
                raise RuntimeStateError(
                    "this runtime already hosted a root task; create a fresh "
                    "WorkSharingRuntime per program run"
                )
            self._root_started = True
            for _ in range(self._base_workers):
                self._spawn_worker()
        vertex = self._verifier.on_init()
        root = TaskHandle(vertex, code=fn, name="root")
        root.state = TaskState.RUNNING
        obs = self._obs
        tracer = obs.tracer if obs is not None else None
        try:
            with task_scope(root):
                handle = tracer.begin_span("run") if tracer is not None else None
                try:
                    result = fn(*args, **kwargs)
                    root.state = TaskState.DONE
                finally:
                    if tracer is not None:
                        tracer.end_span(handle, args={"task": root.name})
        except BaseException:
            root.state = TaskState.FAILED
            raise
        finally:
            with self._all_done:
                while self._outstanding:
                    self._all_done.wait()
                self._shutdown = True
                count = self._worker_count
            for _ in range(count):
                self._queue.put(_SHUTDOWN)
            if self._watchdog is not None:
                self._watchdog.stop()
            if self._owns_verifier:
                self._verifier.close()
            if self._journal is not None and self._owns_journal:
                self._journal.close()
        self._reap_unjoined()
        return result

    def fork(
        self, fn: Callable[..., Any], *args: Any, retry: Optional[RetryPolicy] = None, **kwargs: Any
    ) -> Future:
        parent = require_current_task()
        parent.cancel_token.raise_if_cancelled(parent)
        obs = self._obs
        if obs is not None:
            _t0 = perf_counter_ns()
        with self._lock:
            if self._shutdown:
                raise RuntimeStateError("runtime already shut down")
        if retry is not None and parent.fork_lock is None:
            # Retry re-forks race the parent's own forks; Section 5.1
            # forbids concurrent AddChild calls on one parent.
            parent.fork_lock = threading.Lock()
        lock = parent.fork_lock
        if lock is not None:
            with lock:
                vertex = self._verifier.on_fork(parent.vertex)
        else:
            vertex = self._verifier.on_fork(parent.vertex)
        task = TaskHandle(vertex, code=fn, parent_uid=parent.uid)
        future = Future(self, task)
        if retry is not None:
            future._retry = (retry, parent)
        with self._all_done:
            self._outstanding += 1
        self._queue.put((task, future, fn, args, kwargs))
        if obs is not None:
            dur = perf_counter_ns() - _t0
            obs.fork_ns.observe(dur)
            if obs.tracer is not None:
                obs.tracer.complete(
                    "fork",
                    _t0,
                    dur,
                    args={"child": task.name, "parent": parent.name},
                )
        return future

    # join / join_batch / _join_one are provided by SupervisedJoinMixin.
