"""Supervision for the blocking runtimes: deadlines, watchdog, reaper.

The paper's avoidance machinery guarantees that *verified* joins never
close a cycle — but with ``policy=None`` (the overhead baseline), with
``fallback=False`` misconfiguration, or simply with a joinee that never
terminates, the threaded and pool runtimes could still block an OS
thread forever with no diagnosis.  This module gives them the same
no-hang guarantee the cooperative scheduler has had from the start:

* **join deadlines** — every supervised wait accepts a deadline and
  raises :class:`~repro.errors.JoinTimeoutError` (carrying the blocked
  edge) when it expires, after unregistering the wait-for edge;
* **a stall watchdog** — :class:`StallWatchdog`, a background monitor
  that periodically snapshots the runtime's :class:`JoinRegistry` (an
  edge registry independent of any policy or detector, so it works even
  for ``policy=None`` / ``fallback=False``), diagnoses cycles of
  blocked joins, and delivers :class:`~repro.errors.DeadlockDetectedError`
  (cycle attached) to every blocked task in the cycle instead of
  letting them hang;
* **cooperative cancellation** — blocked waits observe the joiner's
  :class:`~repro.runtime.task.CancelToken` and abort with
  :class:`~repro.errors.TaskCancelledError`;
* **an unjoined-failure reaper** — tasks whose futures fail but are
  never joined are surfaced at runtime shutdown (warn or raise).

All blocked waits are poll loops with exponential backoff (1 ms up to
``max_tick``), never bare ``Event.wait()``: that is what makes deadline
checks, watchdog delivery, cancellation, *and* Ctrl-C on the main
thread all work while a join is blocked (an untimed ``Event.wait`` can
swallow ``KeyboardInterrupt`` until the event fires).

:class:`SupervisedJoinMixin` packages the shared join/join_batch
protocol for :class:`~repro.runtime.threaded.TaskRuntime` and
:class:`~repro.runtime.pool.WorkSharingRuntime`; the two runtimes
differ only in the hooks (`_before_block`, `_wait_helper`) the pool
uses for worker compensation and help-while-blocked.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING, Union

from ..errors import (
    DeadlockDetectedError,
    JoinTimeoutError,
    PolicyViolationError,
    RuntimeStateError,
    TaskCancelledError,
    TaskFailedError,
    UnjoinedTaskWarning,
)
from ..formal.deadlock import find_cycle
from .context import require_current_task
from .task import TaskState

if TYPE_CHECKING:  # pragma: no cover
    from .future import Future
    from .task import TaskHandle

__all__ = [
    "BlockedJoin",
    "JoinRegistry",
    "StallWatchdog",
    "SupervisedJoinMixin",
    "wait_for_future",
]

#: first poll interval of a blocked wait (doubles up to ``max_tick``)
_MIN_TICK = 0.001
#: default ceiling for the poll interval of a blocked wait
_MAX_TICK = 0.05


class BlockedJoin:
    """One currently blocked join: the wait-for edge ``joiner -> joinee``.

    ``exc`` is the delivery slot: the watchdog stores an exception here
    and the blocked task's poll loop raises it.  Attaching the slot to
    the *record* (not the task) makes delivery race-free: a record is
    owned by exactly one wait and dies with it, so a diagnosis can never
    leak into some later, unrelated join of the same task.
    """

    __slots__ = ("joiner", "joinee", "future", "since", "exc")

    def __init__(self, joiner: "TaskHandle", joinee: "TaskHandle", future: "Future") -> None:
        self.joiner = joiner
        self.joinee = joinee
        self.future = future
        self.since = time.monotonic()
        self.exc: Optional[BaseException] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BlockedJoin {self.joiner.name} -> {self.joinee.name}>"


class JoinRegistry:
    """Thread-safe registry of the currently blocked joins of one runtime.

    This is the supervision layer's *own* edge registry: unlike the
    Armus wait-for graph it exists for every configuration — including
    ``policy=None`` and ``fallback=False``, where no detector is
    registered — so the watchdog always has ground truth to scan.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: set[BlockedJoin] = set()

    def register(self, joiner: "TaskHandle", joinee: "TaskHandle", future: "Future") -> BlockedJoin:
        record = BlockedJoin(joiner, joinee, future)
        with self._lock:
            self._records.add(record)
        return record

    def unregister(self, record: BlockedJoin) -> None:
        with self._lock:
            self._records.discard(record)

    def snapshot(self) -> list[BlockedJoin]:
        """An atomic copy of the current records (for the watchdog)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class StallWatchdog:
    """Background monitor that converts true join-cycle stalls into errors.

    Every ``interval`` seconds the watchdog snapshots the registry,
    builds the task-level wait-for graph, and looks for cycles.  A cycle
    whose every member's future is still pending can never resolve (each
    joinee is itself blocked, and an edge only disappears when its
    joinee terminates), so it is a true deadlock: the watchdog delivers
    a :class:`DeadlockDetectedError` carrying the cycle to every blocked
    task in it.  Cycles containing an already-completed future are
    snapshot transients (the waiter is about to unregister) and are
    skipped — which is what makes false positives impossible.

    The monitor thread is started lazily by the first blocked join and
    exits after the registry has stayed empty for ``idle_scans``
    consecutive scans; it restarts on the next blocked join.  Idle
    runtimes therefore hold no thread and can be garbage collected.
    """

    def __init__(
        self,
        registry: JoinRegistry,
        *,
        interval: float = 0.1,
        idle_scans: int = 10,
    ) -> None:
        if interval <= 0:
            raise ValueError("watchdog interval must be positive")
        self.registry = registry
        self.interval = interval
        self._idle_scans = idle_scans
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._stopped = False
        #: total deadlock diagnoses delivered (read by tests/CLI)
        self.deadlocks_detected = 0

    # ------------------------------------------------------------------
    def ensure_running(self) -> None:
        """Start the monitor thread if it is not already alive."""
        with self._lock:
            if self._stopped:
                return
            if self._thread is not None and self._thread.is_alive():
                return
            self._thread = threading.Thread(
                target=self._run, name="repro-watchdog", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Permanently stop the monitor (used at runtime shutdown)."""
        with self._lock:
            self._stopped = True

    # ------------------------------------------------------------------
    def _run(self) -> None:
        idle = 0
        while True:
            time.sleep(self.interval)
            with self._lock:
                if self._stopped:
                    return
            records = self.registry.snapshot()
            if not records:
                idle += 1
                if idle >= self._idle_scans:
                    return  # lazily restarted by the next blocked join
                continue
            idle = 0
            self.scan(records)

    def scan(self, records: Optional[list[BlockedJoin]] = None) -> list[tuple]:
        """One diagnosis pass; returns the cycles delivered.

        Exposed for synchronous use in tests — the background thread
        calls this on every tick.
        """
        if records is None:
            records = self.registry.snapshot()
        # A task blocks on one join at a time (one thread per task), so
        # joiner -> record is a function.
        by_joiner: dict["TaskHandle", BlockedJoin] = {}
        graph: dict["TaskHandle", set["TaskHandle"]] = {}
        for record in records:
            by_joiner[record.joiner] = record
            graph.setdefault(record.joiner, set()).add(record.joinee)
            graph.setdefault(record.joinee, set())
        delivered: list[tuple] = []
        while True:
            cycle = find_cycle(graph)
            if cycle is None:
                return delivered
            cycle_records = [by_joiner[t] for t in cycle]
            # Drop this cycle's edges from the working graph either way,
            # so the loop terminates and other cycles are still found.
            for task in cycle:
                graph[task] = set()
            if any(r.future.done() for r in cycle_records):
                continue  # snapshot transient: a waiter is unblocking
            stall = tuple(r.joiner for r in cycle_records)
            for record in cycle_records:
                if record.exc is None:
                    record.exc = DeadlockDetectedError(cycle=stall)
            with self._lock:
                self.deadlocks_detected += len(cycle_records)
            delivered.append(stall)


def wait_for_future(
    future: "Future",
    joiner: "TaskHandle",
    *,
    registry: Optional[JoinRegistry] = None,
    watchdog: Optional[StallWatchdog] = None,
    deadline: Optional[float] = None,
    timeout_value: Optional[float] = None,
    helper: Optional[Callable[[], bool]] = None,
    max_tick: float = _MAX_TICK,
) -> None:
    """The supervised blocked wait used by every blocking join.

    Polls the future with exponential backoff while honouring, in
    priority order: a watchdog-delivered diagnosis (``record.exc``), the
    joiner's cancellation token, and the deadline.  ``helper``, when
    given, is invoked between polls and may execute queued work (the
    pool's help-while-blocked loop); returning True resets the backoff.
    The registry record is always removed on exit, so no supervision
    state outlives the wait.
    """
    if future._wait(0):
        return
    record = registry.register(joiner, future.task, future) if registry is not None else None
    if watchdog is not None:
        watchdog.ensure_running()
    tick = _MIN_TICK
    try:
        while True:
            if record is not None and record.exc is not None:
                raise record.exc
            token = joiner.cancel_token
            if token.cancelled():
                raise TaskCancelledError(joiner)
            wait = tick
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise JoinTimeoutError(joiner, future.task, timeout_value)
                wait = min(wait, remaining)
            if future._wait(wait):
                return
            if helper is not None and helper():
                tick = _MIN_TICK  # we did useful work; stay responsive
                continue
            tick = min(tick * 2, max_tick)
    finally:
        if record is not None:
            registry.unregister(record)


class SupervisedJoinMixin:
    """The shared supervised join protocol of the blocking runtimes.

    Host classes must provide ``_hybrid`` (HybridVerifier or None) and
    ``_verifier`` and call :meth:`_init_supervision` from ``__init__``.
    They may override :meth:`_before_block` (called once when a join is
    about to genuinely block) and :meth:`_wait_helper` (returns the
    between-polls callback for the current thread, or None).
    """

    def _init_supervision(
        self,
        *,
        default_join_timeout: Optional[float] = None,
        watchdog: Union[bool, float, StallWatchdog] = True,
        watchdog_interval: float = 0.1,
        on_unjoined_failure: str = "warn",
    ) -> None:
        if on_unjoined_failure not in ("warn", "raise", "ignore"):
            raise ValueError(
                "on_unjoined_failure must be 'warn', 'raise' or 'ignore', "
                f"not {on_unjoined_failure!r}"
            )
        if default_join_timeout is not None and default_join_timeout < 0:
            raise ValueError("default_join_timeout must be non-negative")
        #: runtime-wide deadline applied to joins with no explicit timeout
        self.default_join_timeout = default_join_timeout
        self._registry = JoinRegistry()
        if isinstance(watchdog, StallWatchdog):
            self._watchdog: Optional[StallWatchdog] = watchdog
        elif watchdog:
            interval = (
                float(watchdog)
                if not isinstance(watchdog, bool)
                else watchdog_interval
            )
            self._watchdog = StallWatchdog(self._registry, interval=interval)
        else:
            self._watchdog = None
        self._on_unjoined_failure = on_unjoined_failure
        self._failed_futures: List["Future"] = []
        self._failed_lock = threading.Lock()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def watchdog(self) -> Optional[StallWatchdog]:
        """The stall watchdog, or None when supervision is disabled."""
        return self._watchdog

    def blocked_joins(self) -> list[BlockedJoin]:
        """A snapshot of the joins currently blocked in this runtime."""
        return self._registry.snapshot()

    # ------------------------------------------------------------------
    # hooks for the concrete runtimes
    # ------------------------------------------------------------------
    def _before_block(self, future: "Future") -> None:
        """Called once when a join is about to genuinely block."""

    def _wait_helper(self) -> Optional[Callable[[], bool]]:
        """Between-polls callback for the current thread, or None."""
        return None

    # ------------------------------------------------------------------
    # failure bookkeeping (the unjoined-failure reaper)
    # ------------------------------------------------------------------
    def _note_failure(self, future: "Future") -> None:
        with self._failed_lock:
            self._failed_futures.append(future)

    def _reap_unjoined(self) -> None:
        """Surface failures of tasks whose futures were never joined.

        Called at runtime shutdown.  Cancelled tasks are exempt — their
        failure is the deliberate outcome of ``Future.cancel()``.
        """
        if self._on_unjoined_failure == "ignore":
            return
        with self._failed_lock:
            failed = list(self._failed_futures)
        leaked = [
            f
            for f in failed
            if not f._joined and not isinstance(f._exc, TaskCancelledError)
        ]
        if not leaked:
            return
        if self._on_unjoined_failure == "raise":
            first = leaked[0]
            raise TaskFailedError(first.task, first._exc)
        for f in leaked:
            warnings.warn(
                f"task {f.task.name} failed with {f._exc!r} but its future "
                "was never joined",
                UnjoinedTaskWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # the join operations (called via Future.join / user code)
    # ------------------------------------------------------------------
    def _resolve_deadline(
        self, timeout: Optional[float]
    ) -> tuple[Optional[float], Optional[float]]:
        if timeout is None:
            timeout = self.default_join_timeout
        if timeout is None:
            return None, None
        return time.monotonic() + timeout, timeout

    def join(self, future: "Future", *, timeout: Optional[float] = None):
        """Join one future; ``timeout`` overrides ``default_join_timeout``."""
        if future._runtime is not self:
            raise RuntimeStateError("future belongs to a different runtime")
        joiner = require_current_task()
        deadline, timeout_value = self._resolve_deadline(timeout)
        return self._join_one(joiner, future, None, deadline, timeout_value)

    def join_batch(
        self,
        futures: Sequence["Future"],
        *,
        return_exceptions: bool = False,
        timeout: Optional[float] = None,
        cancel_remaining: bool = False,
    ) -> list:
        """Join several futures, verifying the whole batch in one call.

        For ``stable_permits`` policies (all TJ variants and the null
        baseline) the permission verdicts are precomputed with one
        ``Verifier.check_joins`` call — one stats update and one pass
        through the policy's ``permits_many`` for the whole batch —
        and the joins then proceed without re-checking.  Learning (KJ)
        policies fall back to per-future verification, since their
        verdicts may flip as earlier joins in the batch teach knowledge.

        Results are returned in input order.  With
        ``return_exceptions=True``, a failed task contributes its
        :class:`~repro.errors.TaskFailedError` in place of a result
        instead of raising (policy faults, avoided deadlocks, timeouts
        and watchdog diagnoses always raise).  Any raised
        ``TaskFailedError`` — and every collected one — carries
        ``batch_index``, the position of the failed future in the batch.

        ``timeout`` is one deadline shared by the whole batch.  With
        ``cancel_remaining=True``, an exception that aborts the batch
        first requests cooperative cancellation of the not-yet-joined
        futures.
        """
        futures = list(futures)
        for f in futures:
            if f._runtime is not self:
                raise RuntimeStateError("future belongs to a different runtime")
        if not futures:
            return []
        joiner = require_current_task()
        deadline, timeout_value = self._resolve_deadline(timeout)
        if self._verifier.policy.stable_permits:
            verdicts = self._verifier.check_joins(
                joiner.vertex, [f.task.vertex for f in futures]
            )
            flags: list[Optional[bool]] = [not ok for ok in verdicts]
        else:
            flags = [None] * len(futures)
        results = []
        for index, (future, flagged) in enumerate(zip(futures, flags)):
            try:
                results.append(
                    self._join_one(joiner, future, flagged, deadline, timeout_value)
                )
            except TaskFailedError as exc:
                exc.batch_index = index
                if return_exceptions:
                    results.append(exc)
                    continue
                if cancel_remaining:
                    for later in futures[index + 1 :]:
                        later.cancel()
                raise
            except BaseException:
                if cancel_remaining:
                    for later in futures[index + 1 :]:
                        later.cancel()
                raise
        return results

    def _join_one(
        self,
        joiner: "TaskHandle",
        future: "Future",
        flagged: Optional[bool],
        deadline: Optional[float] = None,
        timeout_value: Optional[float] = None,
    ):
        """Join one future; ``flagged`` is a precomputed verdict or None."""
        joiner.cancel_token.raise_if_cancelled(joiner)
        joinee = future.task
        if self._hybrid is not None:
            blocked = self._hybrid.begin_join(
                joiner,
                joinee,
                joiner.vertex,
                joinee.vertex,
                joinee_done=future.done(),
                flagged=flagged,
            )
            if blocked:
                self._before_block(future)
                prev_state = joiner.state
                joiner.state = TaskState.BLOCKED
                try:
                    self._supervised_wait(joiner, future, deadline, timeout_value)
                finally:
                    self._hybrid.end_join(joiner, joinee)
                    joiner.state = prev_state
            self._hybrid.on_join_completed(joiner.vertex, joinee.vertex)
        else:
            if flagged is None:
                self._verifier.require_join(joiner.vertex, joinee.vertex)
            elif flagged:
                raise PolicyViolationError(
                    self._verifier.policy.name, joiner.vertex, joinee.vertex
                )
            if not future.done():
                self._before_block(future)
                prev_state = joiner.state
                joiner.state = TaskState.BLOCKED
                try:
                    self._supervised_wait(joiner, future, deadline, timeout_value)
                finally:
                    joiner.state = prev_state
            self._verifier.on_join_completed(joiner.vertex, joinee.vertex)
        future._joined = True
        return future._result_now()

    def _supervised_wait(
        self,
        joiner: "TaskHandle",
        future: "Future",
        deadline: Optional[float],
        timeout_value: Optional[float],
    ) -> None:
        wait_for_future(
            future,
            joiner,
            registry=self._registry,
            watchdog=self._watchdog,
            deadline=deadline,
            timeout_value=timeout_value,
            helper=self._wait_helper(),
        )
