"""Supervision for the blocking runtimes: deadlines, watchdog, reaper.

The paper's avoidance machinery guarantees that *verified* joins never
close a cycle — but with ``policy=None`` (the overhead baseline), with
``fallback=False`` misconfiguration, or simply with a joinee that never
terminates, the threaded and pool runtimes could still block an OS
thread forever with no diagnosis.  This module gives them the same
no-hang guarantee the cooperative scheduler has had from the start:

* **join deadlines** — every supervised wait accepts a deadline and
  raises :class:`~repro.errors.JoinTimeoutError` (carrying the blocked
  edge) when it expires, after unregistering the wait-for edge;
* **a stall watchdog** — :class:`StallWatchdog`, a background monitor
  that periodically snapshots the runtime's :class:`JoinRegistry` (an
  edge registry independent of any policy or detector, so it works even
  for ``policy=None`` / ``fallback=False``), diagnoses cycles of
  blocked joins, and delivers :class:`~repro.errors.DeadlockDetectedError`
  (cycle attached) to every blocked task in the cycle instead of
  letting them hang;
* **cooperative cancellation** — blocked waits observe the joiner's
  :class:`~repro.runtime.task.CancelToken` and abort with
  :class:`~repro.errors.TaskCancelledError`;
* **an unjoined-failure reaper** — tasks whose futures fail but are
  never joined are surfaced at runtime shutdown (warn or raise).

Blocked waits are **event-driven**: each :class:`BlockedJoin` record
carries a wake event, and every source that can end the wait delivers a
*targeted notify* to it — task completion (via the future's waker list),
cancellation (via the token's waker list), and watchdog verdicts (via
:meth:`BlockedJoin.deliver`).  Deadlines bound the OS-level wait
directly.  A wait therefore performs O(1) wakeups per state change, not
O(duration / tick) polls, and a join unblocks the moment its joinee
terminates.  Two deliberate exceptions re-introduce a bounded tick:

* the **main thread** re-checks every ``_MAIN_TICK`` seconds so Ctrl-C
  is honoured promptly on every platform (an untimed lock wait can
  swallow ``KeyboardInterrupt`` on some of them);
* a **saturated pool worker** (no idle worker, no headroom to
  compensate) ticks at ``_MIN_TICK``..``max_tick`` with exponential
  backoff and runs the runtime's *helper* callback between waits, so
  queued work is never starved past the compensation cap (see
  ``WorkSharingRuntime._helper_tick``).

The waker protocol is lock-free under the GIL by ordering alone: every
writer sets its condition flag (``future._done``, ``token._cancelled``,
``record.exc``) *before* firing the wake event, and the waiter clears
the event *before* re-checking the flags — a wake that lands during the
re-check leaves the event set, so the next wait falls through.

``join_batch`` adds a **collective pre-wait**: all blocking edges of a
batch are registered at once against one shared wake event, and a
countdown latch fires a *single* notify when the last joinee completes
(or the first failure arrives, when failures abort the batch) — one
wakeup per drain instead of one blocked wait per future.  The harvest
that follows replays the exact sequential verification protocol with
every joinee already terminated.

:class:`SupervisedJoinMixin` packages the shared join/join_batch
protocol for :class:`~repro.runtime.threaded.TaskRuntime` and
:class:`~repro.runtime.pool.WorkSharingRuntime`; the two runtimes
differ only in the hooks (`_before_block`, `_wait_helper`,
`_helper_tick`) the pool uses for worker compensation and
help-while-blocked.  :func:`wait_for_future_polling` preserves the
PR 2 poll-loop implementation as the measured baseline of
``benchmarks/bench_runtime_overhead.py``.
"""

from __future__ import annotations

import threading
import time
import warnings
from time import perf_counter_ns
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING, Union

from ..obs import active as _active_telemetry
from ..errors import (
    DeadlockAvoidedError,
    DeadlockDetectedError,
    JoinTimeoutError,
    PolicyViolationError,
    RuntimeStateError,
    TaskCancelledError,
    TaskFailedError,
    UnjoinedTaskWarning,
)
from ..formal.deadlock import find_cycle
from .context import require_current_task
from .task import TaskState

if TYPE_CHECKING:  # pragma: no cover
    from .future import Future
    from .task import TaskHandle

__all__ = [
    "BlockedJoin",
    "JoinRegistry",
    "StallWatchdog",
    "SupervisedJoinMixin",
    "WallClock",
    "WALL_CLOCK",
    "wait_for_future",
    "wait_for_future_polling",
]


class WallClock:
    """The default clock of the supervision layer: real time.

    Everything time-dependent in this module — deadlines, watchdog
    ticks, retry backoff, the OS-level event waits — goes through a
    clock object with this interface, so a deterministic simulation can
    substitute :class:`~repro.runtime.sim.VirtualClock` and make
    ``join(timeout=)`` / watchdog scans / retry backoff fire on virtual
    time with no wall-clock sleeps.
    """

    __slots__ = ()

    @staticmethod
    def monotonic() -> float:
        return time.monotonic()

    @staticmethod
    def sleep(seconds: float) -> None:
        time.sleep(seconds)

    @staticmethod
    def wait(event: threading.Event, timeout: Optional[float] = None) -> bool:
        return event.wait(timeout)


#: the shared wall-clock instance (stateless)
WALL_CLOCK = WallClock()

#: first poll interval of a saturated-pool (or legacy polling) wait
_MIN_TICK = 0.001
#: ceiling for the poll interval of a saturated-pool (or legacy) wait
_MAX_TICK = 0.05
#: re-check cadence on the main thread, purely for Ctrl-C delivery —
#: completion still wakes the wait immediately via the event
_MAIN_TICK = 0.05


class BlockedJoin:
    """One currently blocked join: the wait-for edge ``joiner -> joinee``.

    The record doubles as the wait's *wake slot*: ``_wake`` is the event
    the blocked thread sleeps on, and :meth:`set` (the waker protocol)
    is what the joinee's future and the joiner's cancel token fire.
    ``exc`` is the delivery slot: the watchdog stores an exception via
    :meth:`deliver` and the blocked task raises it on wakeup.  Attaching
    both slots to the *record* (not the task) makes delivery race-free:
    a record is owned by exactly one wait and dies with it, so a
    diagnosis can never leak into some later, unrelated join of the same
    task.

    Batch pre-waits share one wake event across all their records
    (``wake=`` argument), so the whole batch sleeps — and wakes — as one.
    ``wakeups`` counts how many times the owning wait returned from an
    OS-level sleep; the no-busy-wait tests read it.
    """

    __slots__ = ("joiner", "joinee", "future", "since", "exc", "wakeups", "_wake")

    def __init__(
        self,
        joiner: "TaskHandle",
        joinee: "TaskHandle",
        future: "Future",
        wake: Optional[threading.Event] = None,
    ) -> None:
        self.joiner = joiner
        self.joinee = joinee
        self.future = future
        self.since = time.monotonic()
        self.exc: Optional[BaseException] = None
        self.wakeups = 0
        self._wake = wake if wake is not None else threading.Event()

    def set(self) -> None:
        """Waker protocol: wake the blocked thread (idempotent)."""
        self._wake.set()

    def deliver(self, exc: BaseException) -> None:
        """Store *exc* for the blocked task and wake it immediately."""
        self.exc = exc  # flag before wake: the waiter re-checks after clear
        self._wake.set()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BlockedJoin {self.joiner.name} -> {self.joinee.name}>"


class JoinRegistry:
    """Thread-safe registry of the currently blocked joins of one runtime.

    This is the supervision layer's *own* edge registry: unlike the
    Armus wait-for graph it exists for every configuration — including
    ``policy=None`` and ``fallback=False``, where no detector is
    registered — so the watchdog always has ground truth to scan.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: set[BlockedJoin] = set()

    def register(self, joiner: "TaskHandle", joinee: "TaskHandle", future: "Future") -> BlockedJoin:
        record = BlockedJoin(joiner, joinee, future)
        self.add(record)
        return record

    def add(self, record: BlockedJoin) -> None:
        with self._lock:
            self._records.add(record)

    def unregister(self, record: BlockedJoin) -> None:
        with self._lock:
            self._records.discard(record)

    def snapshot(self) -> list[BlockedJoin]:
        """An atomic copy of the current records (for the watchdog)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class StallWatchdog:
    """Background monitor that converts true join-cycle stalls into errors.

    Every ``interval`` seconds the watchdog snapshots the registry,
    builds the task-level wait-for graph, and looks for cycles.  A cycle
    whose every member's future is still pending can never resolve (each
    joinee is itself blocked, and an edge only disappears when its
    joinee terminates), so it is a true deadlock: the watchdog delivers
    a :class:`DeadlockDetectedError` carrying the cycle to every blocked
    task in it — a targeted wake, not a flag the waits must poll for.
    Cycles containing an already-completed future are snapshot
    transients (the waiter is about to unregister) and are skipped —
    which is what makes false positives impossible.

    The monitor thread is started lazily by the first blocked join and
    exits after the registry has stayed empty for ``idle_scans``
    consecutive scans; it restarts on the next blocked join.  Idle
    runtimes therefore hold no thread and can be garbage collected.
    """

    def __init__(
        self,
        registry: JoinRegistry,
        *,
        interval: float = 0.1,
        idle_scans: int = 10,
        clock: Optional[WallClock] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError("watchdog interval must be positive")
        self.registry = registry
        self.interval = interval
        self.clock = clock if clock is not None else WALL_CLOCK
        self._idle_scans = idle_scans
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._stopped = False
        #: total deadlock diagnoses delivered (read by tests/CLI)
        self.deadlocks_detected = 0

    # ------------------------------------------------------------------
    def ensure_running(self) -> None:
        """Start the monitor thread if it is not already alive.

        The running flag — not ``Thread.is_alive()`` — is the source of
        truth: the monitor only clears it under the lock *after*
        re-checking that the registry is empty, so a join registered
        concurrently with the monitor's idle exit can never be left
        unwatched.
        """
        with self._lock:
            if self._stopped or self._running:
                return
            self._running = True
            self._thread = threading.Thread(
                target=self._run, name="repro-watchdog", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Permanently stop the monitor (used at runtime shutdown)."""
        with self._lock:
            self._stopped = True

    # ------------------------------------------------------------------
    def _run(self) -> None:
        idle = 0
        while True:
            self.clock.sleep(self.interval)
            with self._lock:
                if self._stopped:
                    self._running = False
                    return
            records = self.registry.snapshot()
            if not records:
                idle += 1
                if idle >= self._idle_scans:
                    with self._lock:
                        # Atomic with ensure_running: a waiter that
                        # registered after our snapshot either sees
                        # _running still True here (and the non-empty
                        # registry keeps us alive), or takes the lock
                        # after us and starts a fresh monitor.
                        if len(self.registry) == 0:
                            self._running = False
                            return
                    idle = 0
                continue
            idle = 0
            self.scan(records)

    def scan(self, records: Optional[list[BlockedJoin]] = None) -> list[tuple]:
        """One diagnosis pass; returns the cycles delivered.

        Exposed for synchronous use in tests — the background thread
        calls this on every tick.
        """
        if records is None:
            records = self.registry.snapshot()
        # A batch pre-wait blocks one joiner on many joinees at once, so
        # records are keyed by *edge*, not by joiner.
        by_edge: dict[tuple, BlockedJoin] = {}
        graph: dict["TaskHandle", set["TaskHandle"]] = {}
        for record in records:
            by_edge[(record.joiner, record.joinee)] = record
            graph.setdefault(record.joiner, set()).add(record.joinee)
            graph.setdefault(record.joinee, set())
        delivered: list[tuple] = []
        while True:
            cycle = find_cycle(graph)
            if cycle is None:
                return delivered
            n = len(cycle)
            edges = [(cycle[i], cycle[(i + 1) % n]) for i in range(n)]
            # Drop this cycle's edges from the working graph either way,
            # so the loop terminates and other cycles are still found.
            for joiner, joinee in edges:
                graph[joiner].discard(joinee)
            cycle_records = [by_edge[e] for e in edges if e in by_edge]
            if len(cycle_records) < n:
                continue  # an edge raced away between snapshot and scan
            if any(r.future.done() for r in cycle_records):
                continue  # snapshot transient: a waiter is unblocking
            stall = tuple(cycle)
            for record in cycle_records:
                if record.exc is None:
                    record.deliver(DeadlockDetectedError(cycle=stall))
            with self._lock:
                self.deadlocks_detected += len(cycle_records)
            delivered.append(stall)


def wait_for_future(
    future: "Future",
    joiner: "TaskHandle",
    *,
    registry: Optional[JoinRegistry] = None,
    watchdog: Optional[StallWatchdog] = None,
    deadline: Optional[float] = None,
    timeout_value: Optional[float] = None,
    helper: Optional[Callable[[], bool]] = None,
    helper_tick: Optional[Callable[[], bool]] = None,
    max_tick: float = _MAX_TICK,
    main_tick: float = _MAIN_TICK,
    clock: Optional[WallClock] = None,
) -> int:
    """The supervised blocked wait used by every blocking join.

    Sleeps on the record's wake event and re-checks, in priority order:
    a watchdog-delivered diagnosis (``record.exc``), the joiner's
    cancellation token, completion, and the deadline.  All three notify
    sources deliver targeted wakes, so off the main thread an unbounded
    wait performs exactly one OS sleep.  ``helper``, when given, is
    invoked after each wakeup and may execute queued work (the pool's
    help-while-blocked loop); ``helper_tick`` reports whether the
    current pool state requires the wait to poll for such work (with
    ``_MIN_TICK``..``max_tick`` backoff).  The registry record is always
    removed on exit, so no supervision state outlives the wait.
    Returns the number of OS-level wakeups the wait performed (telemetry
    feeds this into the ``repro_runtime_wakeups_total`` counter).
    """
    if future._done:
        return 0
    if clock is None:
        clock = WALL_CLOCK
    joinee = future.task
    record = BlockedJoin(joiner, joinee, future)
    if registry is not None:
        registry.add(record)
    if watchdog is not None:
        watchdog.ensure_running()
    token = joiner.cancel_token
    future._add_waiter(record)
    token._add_waker(record)
    on_main = threading.current_thread() is threading.main_thread()
    backoff = _MIN_TICK
    try:
        while True:
            record._wake.clear()
            # Re-check every condition after the clear: a waker firing in
            # between re-sets the event, so the next wait falls through.
            if record.exc is not None:
                raise record.exc
            if token.cancelled():
                raise TaskCancelledError(joiner)
            if future._done:
                return record.wakeups
            wait = None
            if deadline is not None:
                remaining = deadline - clock.monotonic()
                if remaining <= 0:
                    raise JoinTimeoutError(joiner, joinee, timeout_value)
                wait = remaining
            if on_main and (wait is None or main_tick < wait):
                wait = main_tick
            if helper_tick is not None and helper_tick():
                if wait is None or backoff < wait:
                    wait = backoff
            clock.wait(record._wake, wait)
            record.wakeups += 1
            if helper is not None and helper():
                backoff = _MIN_TICK  # we did useful work; stay responsive
            else:
                backoff = min(backoff * 2, max_tick)
    finally:
        if registry is not None:
            registry.unregister(record)
        future._discard_waiter(record)
        token._discard_waker(record)


def wait_for_future_polling(
    future: "Future",
    joiner: "TaskHandle",
    *,
    registry: Optional[JoinRegistry] = None,
    watchdog: Optional[StallWatchdog] = None,
    deadline: Optional[float] = None,
    timeout_value: Optional[float] = None,
    helper: Optional[Callable[[], bool]] = None,
    helper_tick: Optional[Callable[[], bool]] = None,
    max_tick: float = _MAX_TICK,
    main_tick: float = _MAIN_TICK,
    clock: Optional[WallClock] = None,
) -> int:
    """The poll-loop wait protocol the event rewrite replaced, kept as
    the measured baseline.

    Every condition — completion included — is observed only at poll
    ticks: the loop sleeps ``_MIN_TICK`` doubling up to ``max_tick`` and
    re-checks, with no wake event anywhere.  This is the uniform
    embodiment of the pre-rewrite supervision protocol (which delivered
    cancellation, deadlines and watchdog verdicts at exactly this
    cadence), so the difference against :func:`wait_for_future` isolates
    the wakeup mechanism itself — which is what
    ``benchmarks/bench_runtime_overhead.py`` measures (the ≥2×
    join-wakeup gate).  Not used by the runtimes.
    """
    if clock is None:
        clock = WALL_CLOCK
    if future._done:
        return 0
    record = registry.register(joiner, future.task, future) if registry is not None else None
    if watchdog is not None:
        watchdog.ensure_running()
    tick = _MIN_TICK
    wakeups = 0
    try:
        while True:
            if record is not None and record.exc is not None:
                raise record.exc
            token = joiner.cancel_token
            if token.cancelled():
                raise TaskCancelledError(joiner)
            if future._done:
                return wakeups
            wait = tick
            if deadline is not None:
                remaining = deadline - clock.monotonic()
                if remaining <= 0:
                    raise JoinTimeoutError(joiner, future.task, timeout_value)
                wait = min(wait, remaining)
            clock.sleep(wait)
            wakeups += 1
            if record is not None:
                record.wakeups += 1
            if helper is not None and helper():
                tick = _MIN_TICK  # we did useful work; stay responsive
                continue
            tick = min(tick * 2, max_tick)
    finally:
        if record is not None:
            registry.unregister(record)


class _LatchArm:
    """Per-future waker of a batch pre-wait; fires its latch once."""

    __slots__ = ("_latch", "_future", "_fired")

    def __init__(self, latch: "_CountdownLatch", future: "Future") -> None:
        self._latch = latch
        self._future = future
        self._fired = False

    def set(self) -> None:
        self._latch._arm_fired(self)


class _CountdownLatch:
    """Counts a batch's pending futures down; one wakeup per drain.

    The shared wake event fires exactly once on the happy path — when
    the *last* pending future completes — or early, on the *first*
    failure, when the batch aborts on failure (``fail_fast``).  Arms are
    idempotent (``_fired`` guarded by the latch lock), because the waker
    protocol may fire the same arm from both the registration re-check
    and the completion snapshot.
    """

    __slots__ = ("_lock", "_remaining", "_wake", "_fail_fast", "failed")

    def __init__(self, count: int, wake: threading.Event, *, fail_fast: bool) -> None:
        self._lock = threading.Lock()
        self._remaining = count
        self._wake = wake
        self._fail_fast = fail_fast
        self.failed = False

    @property
    def remaining(self) -> int:
        return self._remaining

    def _arm_fired(self, arm: _LatchArm) -> None:
        with self._lock:
            if arm._fired:
                return
            arm._fired = True
            self._remaining -= 1
            fire = self._remaining == 0
            if self._fail_fast and arm._future._exc is not None:
                self.failed = True  # flag before wake
                fire = True
        if fire:
            self._wake.set()


class SupervisedJoinMixin:
    """The shared supervised join protocol of the blocking runtimes.

    Host classes must provide ``_hybrid`` (HybridVerifier or None) and
    ``_verifier`` and call :meth:`_init_supervision` from ``__init__``.
    They may override :meth:`_before_block` (called once when a join is
    about to genuinely block), :meth:`_wait_helper` (returns the
    after-wakeup work callback for the current thread, or None) and
    :meth:`_helper_tick` (returns a predicate saying whether the blocked
    wait currently needs to poll for helper work, or None).
    """

    def _init_supervision(
        self,
        *,
        default_join_timeout: Optional[float] = None,
        watchdog: Union[bool, float, StallWatchdog] = True,
        watchdog_interval: float = 0.1,
        on_unjoined_failure: str = "warn",
        clock: Optional[WallClock] = None,
    ) -> None:
        if on_unjoined_failure not in ("warn", "raise", "ignore"):
            raise ValueError(
                "on_unjoined_failure must be 'warn', 'raise' or 'ignore', "
                f"not {on_unjoined_failure!r}"
            )
        if default_join_timeout is not None and default_join_timeout < 0:
            raise ValueError("default_join_timeout must be non-negative")
        #: runtime-wide deadline applied to joins with no explicit timeout
        self.default_join_timeout = default_join_timeout
        #: time source for deadlines, watchdog ticks and retry backoff —
        #: swap in a VirtualClock for deterministic-simulation tests
        self._clock = clock if clock is not None else WALL_CLOCK
        self._registry = JoinRegistry()
        if isinstance(watchdog, StallWatchdog):
            self._watchdog: Optional[StallWatchdog] = watchdog
        elif watchdog:
            interval = (
                float(watchdog)
                if not isinstance(watchdog, bool)
                else watchdog_interval
            )
            self._watchdog = StallWatchdog(
                self._registry, interval=interval, clock=self._clock
            )
        else:
            self._watchdog = None
        self._on_unjoined_failure = on_unjoined_failure
        self._failed_futures: List["Future"] = []
        self._failed_lock = threading.Lock()
        self._tasks_retried_count = 0
        # Telemetry is captured once, at construction: when a session is
        # active the runtime registers itself (for the live `top` view)
        # and its counters (the uniform snapshot-source protocol); when
        # none is, every hot-path site below reduces to one `is None`.
        obs = _active_telemetry()
        self._obs = obs
        if obs is not None:
            obs.attach_runtime(self)
            obs.registry.add_source("runtime", self._metrics_snapshot)

    def _metrics_snapshot(self) -> dict:
        """Uniform stats-source protocol; concrete runtimes extend it."""
        return {
            "tasks_retried": self._tasks_retried_count,
            "blocked_joins": len(self._registry.snapshot()),
            "deadlocks_detected": (
                self._watchdog.deadlocks_detected if self._watchdog is not None else 0
            ),
        }

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def watchdog(self) -> Optional[StallWatchdog]:
        """The stall watchdog, or None when supervision is disabled."""
        return self._watchdog

    def blocked_joins(self) -> list[BlockedJoin]:
        """A snapshot of the joins currently blocked in this runtime."""
        return self._registry.snapshot()

    @property
    def tasks_retried(self) -> int:
        """Retry attempts executed (a task retried twice counts twice)."""
        return self._tasks_retried_count

    # ------------------------------------------------------------------
    # hooks for the concrete runtimes
    # ------------------------------------------------------------------
    def _before_block(self, future: "Future") -> None:
        """Called once when a join is about to genuinely block."""

    def _wait_helper(self) -> Optional[Callable[[], bool]]:
        """After-wakeup work callback for the current thread, or None."""
        return None

    def _helper_tick(self) -> Optional[Callable[[], bool]]:
        """Predicate: must the blocked wait poll for helper work now?"""
        return None

    # ------------------------------------------------------------------
    # failure bookkeeping (the unjoined-failure reaper)
    # ------------------------------------------------------------------
    def _note_failure(self, future: "Future") -> None:
        with self._failed_lock:
            self._failed_futures.append(future)

    def _reap_unjoined(self) -> None:
        """Surface failures of tasks whose futures were never joined.

        Called at runtime shutdown.  Cancelled tasks are exempt — their
        failure is the deliberate outcome of ``Future.cancel()``.
        """
        if self._on_unjoined_failure == "ignore":
            return
        with self._failed_lock:
            failed = list(self._failed_futures)
        leaked = [
            f
            for f in failed
            if not f._joined and not isinstance(f._exc, TaskCancelledError)
        ]
        if not leaked:
            return
        if self._on_unjoined_failure == "raise":
            first = leaked[0]
            raise TaskFailedError(first.task, first._exc)
        for f in leaked:
            warnings.warn(
                f"task {f.task.name} failed with {f._exc!r} but its future "
                "was never joined",
                UnjoinedTaskWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------
    # task retry (used by the runtimes' worker loops)
    # ------------------------------------------------------------------
    def _prepare_retry(self, future: "Future", exc: BaseException) -> Optional[float]:
        """Decide whether a failed task body should be re-run.

        Returns the backoff delay (seconds) when a retry is due — with
        the future's task already re-pointed at a **fresh vertex** (a new
        ``AddChild`` under the original parent, so TJ re-verifies the
        retry like any younger sibling) — or None when the failure is
        final and the caller must complete the future with *exc*.

        The :class:`~repro.runtime.task.TaskHandle` itself is reused
        across attempts: runtime identity (the Armus wait-for graph, the
        join registry, blocked joiners' records) must stay stable so a
        join blocked across the retry still names the right task and the
        watchdog still sees true cycles.  Only the *policy* identity —
        the vertex — is fresh.

        A join already blocked on this future was verified against the
        *old* vertex, and the retry can only narrow the permitted
        relation (the no-widening property), never widen it — so such a
        verdict may go stale in the safe direction only.  To keep full
        avoidance (not just watchdog detection) for those edges, any
        blocked edge whose verdict does not hold against the new vertex
        is upgraded to a *forced* edge in the detector, which re-enables
        cycle checking on every join while it lives.
        """
        state = future._retry
        if state is None:
            return None
        spec, parent = state
        task = future.task
        if task.cancel_token.cancelled() or not spec.retryable(exc):
            return None
        attempt = future._retry_attempt + 1
        if attempt >= spec.max_attempts:
            return None
        old_vertex = task.vertex
        # fork_lock was created by the retry-enabled fork (which
        # happens-before this failure), so it is always present here.
        with parent.fork_lock:
            new_vertex = self._verifier.on_fork(parent.vertex)
        detector = self._hybrid.detector if self._hybrid is not None else None
        if detector is not None:
            for record in self._registry.snapshot():
                if record.future is not future:
                    continue
                still_ok = False
                if not self._verifier.unsound:
                    try:
                        still_ok = self._verifier.policy.permits(
                            record.joiner.vertex, new_vertex
                        )
                    except Exception:  # broken policy: be conservative
                        still_ok = False
                if not still_ok:
                    detector.force_edge(record.joiner, task)
        delay = spec.delay(attempt, site=getattr(task.code, "__name__", None))
        task.vertex = new_vertex
        task.state = TaskState.RUNNING
        future._retry_attempt = attempt
        with self._failed_lock:
            self._tasks_retried_count += 1
        obs = self._obs
        if obs is not None:
            obs.retries.inc()
            if obs.tracer is not None:
                obs.tracer.instant(
                    "retry",
                    cat="task",
                    args={"task": task.name, "attempt": attempt, "error": repr(exc)},
                )
        journal = self._verifier.journal
        if journal is not None:
            journal.log_retry(old_vertex, new_vertex, attempt, repr(exc))
        return delay

    # ------------------------------------------------------------------
    # the join operations (called via Future.join / user code)
    # ------------------------------------------------------------------
    def _resolve_deadline(
        self, timeout: Optional[float]
    ) -> tuple[Optional[float], Optional[float]]:
        if timeout is None:
            timeout = self.default_join_timeout
        if timeout is None:
            return None, None
        return self._clock.monotonic() + timeout, timeout

    def join(self, future: "Future", *, timeout: Optional[float] = None):
        """Join one future; ``timeout`` overrides ``default_join_timeout``."""
        if future._runtime is not self:
            raise RuntimeStateError("future belongs to a different runtime")
        joiner = require_current_task()
        deadline, timeout_value = self._resolve_deadline(timeout)
        return self._join_one(joiner, future, None, deadline, timeout_value)

    def join_batch(
        self,
        futures: Sequence["Future"],
        *,
        return_exceptions: bool = False,
        timeout: Optional[float] = None,
        cancel_remaining: bool = False,
    ) -> list:
        """Join several futures, verifying the whole batch in one call.

        For ``stable_permits`` policies (all TJ variants and the null
        baseline) the permission verdicts are precomputed with one
        ``Verifier.check_joins`` call — one stats update and one pass
        through the policy's ``permits_many`` for the whole batch —
        and the joins then proceed without re-checking.  Learning (KJ)
        policies fall back to per-future verification, since their
        verdicts may flip as earlier joins in the batch teach knowledge.

        When every verdict in the batch is known permitted, the batch
        first blocks *collectively*: all wait-for edges are registered
        against one shared wake event and a countdown latch delivers a
        single wakeup when the last joinee completes (or the first
        failure arrives, if failures abort the batch) — after which the
        per-future joins below run without blocking.  Flagged or
        unknown verdicts skip the pre-wait so policy faults and Armus
        referrals fire at exactly the sequential position.

        Results are returned in input order.  With
        ``return_exceptions=True``, a failed task contributes its
        :class:`~repro.errors.TaskFailedError` in place of a result
        instead of raising (policy faults, avoided deadlocks, timeouts
        and watchdog diagnoses always raise).  Any raised
        ``TaskFailedError`` — and every collected one — carries
        ``batch_index``, the position of the failed future in the batch.

        ``timeout`` is one deadline shared by the whole batch.  With
        ``cancel_remaining=True``, an exception that aborts the batch
        first requests cooperative cancellation of the not-yet-joined
        futures.
        """
        futures = list(futures)
        for f in futures:
            if f._runtime is not self:
                raise RuntimeStateError("future belongs to a different runtime")
        if not futures:
            return []
        joiner = require_current_task()
        deadline, timeout_value = self._resolve_deadline(timeout)
        if self._verifier.policy.stable_permits:
            # Vertex handles are opaque to the runtime; under the flat
            # TJ-SP core they are plain ints, so this list IS the
            # array-of-ids the vectorized batch kernel consumes — no
            # policy node objects are ever materialised on this path.
            verdicts = self._verifier.check_joins(
                joiner.vertex, [f.task.vertex for f in futures]
            )
            flags: list[Optional[bool]] = [not ok for ok in verdicts]
        else:
            flags = [None] * len(futures)
        if len(futures) > 1 and all(flag is False for flag in flags):
            # Every join is known permitted: safe to park once on the
            # whole batch before harvesting.  (A flagged or unknown
            # verdict must instead fault / refer to Armus at its own
            # sequential position, possibly before later joinees ever
            # complete — pre-waiting on those could hang.)
            self._batch_prewait(
                joiner,
                futures,
                deadline,
                timeout_value,
                fail_fast=not return_exceptions,
            )
        results = []
        for index, (future, flagged) in enumerate(zip(futures, flags)):
            try:
                results.append(
                    self._join_one(joiner, future, flagged, deadline, timeout_value)
                )
            except TaskFailedError as exc:
                exc.batch_index = index
                if return_exceptions:
                    results.append(exc)
                    continue
                if cancel_remaining:
                    for later in futures[index + 1 :]:
                        later.cancel()
                raise
            except BaseException:
                if cancel_remaining:
                    for later in futures[index + 1 :]:
                        later.cancel()
                raise
        return results

    def _batch_prewait(
        self,
        joiner: "TaskHandle",
        futures: Sequence["Future"],
        deadline: Optional[float],
        timeout_value: Optional[float] = None,
        *,
        fail_fast: bool,
    ) -> None:
        """Collectively block on a batch of known-permitted joins.

        Registers one :class:`BlockedJoin` per pending future — all
        sharing one wake event, so the watchdog sees every edge — and
        sleeps until the countdown latch fires.  Never raises timeouts
        or task failures itself: on deadline expiry or a fail-fast
        failure it simply returns, and the sequential harvest reproduces
        the exact sequential outcome (the earliest failing or still
        pending future in input order wins).  Watchdog diagnoses and
        cancellation do raise here, as they would in any blocked wait.
        """
        pending = [f for f in futures if not f._done]
        if not pending:
            return
        if fail_fast and any(f._done and f._exc is not None for f in futures):
            # A failure is already in hand and failures abort the batch:
            # the harvest must raise it (and e.g. cancel the remaining
            # futures) *now* — pre-waiting on siblings that might only
            # wind down after that cancellation would deadlock.
            return
        wake = threading.Event()
        latch = _CountdownLatch(len(pending), wake, fail_fast=fail_fast)
        token = joiner.cancel_token
        records = [BlockedJoin(joiner, f.task, f, wake=wake) for f in pending]
        arms = [_LatchArm(latch, f) for f in pending]
        registry = self._registry
        for record in records:
            registry.add(record)
        journal = self._verifier.journal
        # Edge keys are captured once so the unblock below pairs exactly
        # with the block even if a retry re-points a vertex mid-wait.
        journal_edges = (
            [(joiner.vertex, f.task.vertex) for f in pending] if journal is not None else ()
        )
        for a, b in journal_edges:
            journal.log_block(a, b, timeout=timeout_value)
        if self._watchdog is not None:
            self._watchdog.ensure_running()
        self._before_block(pending[0])
        helper = self._wait_helper()
        helper_tick = self._helper_tick()
        on_main = threading.current_thread() is threading.main_thread()
        backoff = _MIN_TICK
        prev_state = joiner.state
        joiner.state = TaskState.BLOCKED
        obs = self._obs
        t0 = perf_counter_ns() if obs is not None else 0
        rounds = 0
        try:
            for future, arm in zip(pending, arms):
                future._add_waiter(arm)
            token._add_waker(wake)
            while True:
                wake.clear()
                for record in records:
                    if record.exc is not None:
                        raise record.exc
                if token.cancelled():
                    raise TaskCancelledError(joiner)
                if latch.remaining == 0 or latch.failed:
                    return
                wait = None
                if deadline is not None:
                    remaining = deadline - self._clock.monotonic()
                    if remaining <= 0:
                        return  # harvest raises the precise JoinTimeoutError
                    wait = remaining
                if on_main and (wait is None or _MAIN_TICK < wait):
                    wait = _MAIN_TICK
                if helper_tick is not None and helper_tick():
                    if wait is None or backoff < wait:
                        wait = backoff
                self._clock.wait(wake, wait)
                rounds += 1
                for record in records:
                    record.wakeups += 1
                if helper is not None and helper():
                    backoff = _MIN_TICK
                else:
                    backoff = min(backoff * 2, _MAX_TICK)
        finally:
            joiner.state = prev_state
            token._discard_waker(wake)
            for future, arm in zip(pending, arms):
                future._discard_waiter(arm)
            for record in records:
                registry.unregister(record)
            for a, b in journal_edges:
                journal.log_unblock(a, b)
            if obs is not None:
                tracer = obs.tracer
                if tracer is not None:
                    tracer.instant("wake", cat="join", args={"task": joiner.name})
                dur = perf_counter_ns() - t0
                obs.blocked_wait_ns.observe(dur)
                obs.blocked_waits.inc()
                obs.wakeups.inc(rounds)
                if tracer is not None:
                    tracer.complete(
                        "block",
                        t0,
                        dur,
                        cat="join",
                        args={"task": joiner.name, "batch": len(pending)},
                    )

    def _join_one(
        self,
        joiner: "TaskHandle",
        future: "Future",
        flagged: Optional[bool],
        deadline: Optional[float] = None,
        timeout_value: Optional[float] = None,
    ):
        """Join one future; ``flagged`` is a precomputed verdict or None."""
        joiner.cancel_token.raise_if_cancelled(joiner)
        joinee = future.task
        journal = self._verifier.journal
        if self._hybrid is not None:
            joiner_vertex, joinee_vertex = joiner.vertex, joinee.vertex
            try:
                blocked = self._hybrid.begin_join(
                    joiner,
                    joinee,
                    joiner_vertex,
                    joinee_vertex,
                    joinee_done=future.done(),
                    flagged=flagged,
                )
            except DeadlockAvoidedError:
                if journal is not None:
                    journal.log_avoided(joiner_vertex, joinee_vertex)
                raise
            if blocked:
                if journal is not None:
                    journal.log_block(joiner_vertex, joinee_vertex, timeout=timeout_value)
                self._before_block(future)
                prev_state = joiner.state
                joiner.state = TaskState.BLOCKED
                try:
                    self._supervised_wait(joiner, future, deadline, timeout_value)
                finally:
                    self._hybrid.end_join(joiner, joinee)
                    joiner.state = prev_state
                    if journal is not None:
                        journal.log_unblock(joiner_vertex, joinee_vertex)
            self._hybrid.on_join_completed(joiner.vertex, joinee.vertex)
            if journal is not None:
                journal.log_join(joiner_vertex, joinee_vertex)
        else:
            if flagged is None:
                self._verifier.require_join(joiner.vertex, joinee.vertex)
            elif flagged:
                raise PolicyViolationError(
                    self._verifier.policy.name, joiner.vertex, joinee.vertex
                )
            if not future.done():
                joiner_vertex, joinee_vertex = joiner.vertex, joinee.vertex
                if journal is not None:
                    journal.log_block(joiner_vertex, joinee_vertex, timeout=timeout_value)
                self._before_block(future)
                prev_state = joiner.state
                joiner.state = TaskState.BLOCKED
                try:
                    self._supervised_wait(joiner, future, deadline, timeout_value)
                finally:
                    joiner.state = prev_state
                    if journal is not None:
                        journal.log_unblock(joiner_vertex, joinee_vertex)
            self._verifier.on_join_completed(joiner.vertex, joinee.vertex)
            if journal is not None:
                journal.log_join(joiner.vertex, joinee.vertex)
        future._joined = True
        return future._result_now()

    def _supervised_wait(
        self,
        joiner: "TaskHandle",
        future: "Future",
        deadline: Optional[float],
        timeout_value: Optional[float],
    ) -> None:
        # Module-level lookup on purpose: the runtime-overhead benchmark
        # swaps in wait_for_future_polling to measure the old protocol.
        obs = self._obs
        if obs is None:
            wait_for_future(
                future,
                joiner,
                registry=self._registry,
                watchdog=self._watchdog,
                deadline=deadline,
                timeout_value=timeout_value,
                helper=self._wait_helper(),
                helper_tick=self._helper_tick(),
                clock=self._clock,
            )
            return
        t0 = perf_counter_ns()
        wakeups = 0
        try:
            wakeups = wait_for_future(
                future,
                joiner,
                registry=self._registry,
                watchdog=self._watchdog,
                deadline=deadline,
                timeout_value=timeout_value,
                helper=self._wait_helper(),
                helper_tick=self._helper_tick(),
                clock=self._clock,
            )
        finally:
            tracer = obs.tracer
            if tracer is not None:
                # wake lands inside the block span: its timestamp is
                # taken before the span's end below.
                tracer.instant("wake", cat="join", args={"task": joiner.name})
            dur = perf_counter_ns() - t0
            obs.blocked_wait_ns.observe(dur)
            obs.blocked_waits.inc()
            obs.wakeups.inc(wakeups or 0)
            if tracer is not None:
                tracer.complete(
                    "block",
                    t0,
                    dur,
                    cat="join",
                    args={"task": joiner.name, "joinee": future.task.name},
                )
