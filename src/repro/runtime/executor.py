"""A ``concurrent.futures``-style executor with deadlock avoidance.

Python's standard library has the exact failure mode this paper solves:
a ``ThreadPoolExecutor`` task that waits on another task's future can
deadlock — either a genuine join cycle, or pool starvation when all
workers block on work that is still queued (the documented
"deadlock when the callable associated with a Future waits on the
results of another Future" caveat).

:class:`VerifiedExecutor` keeps the familiar ``submit / map / shutdown``
surface but runs on :class:`~repro.runtime.pool.WorkSharingRuntime`, so

* every ``Future.result()`` is a policy-checked join — cyclic waits
  raise :class:`~repro.errors.DeadlockAvoidedError` in the offending
  task instead of hanging;
* pool starvation cannot happen: blocked workers are compensated or
  help with queued work.

The futures returned are this package's (joins must be verifiable), not
``concurrent.futures.Future`` — ``result(timeout=...)`` is the one API
difference (verification needs the block/unblock bracket, so timeouts
are not supported).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Iterator, Optional, Union

from .future import Future
from .pool import WorkSharingRuntime
from ..core.policy import JoinPolicy
from ..errors import RuntimeStateError

__all__ = ["VerifiedExecutor"]


class VerifiedExecutor:
    """Drop-in-style executor verified against join deadlocks.

    ::

        with VerifiedExecutor(max_workers=4, policy="TJ-SP") as ex:
            futs = [ex.submit(work, i) for i in range(10)]
            print([f.result() for f in futs])

    ``submit`` may be called from outside (the usual pattern) or from
    *inside* a submitted task (nested parallelism — the case the stdlib
    pool deadlocks on).
    """

    def __init__(
        self,
        max_workers: int = 4,
        policy: Union[None, str, JoinPolicy] = "TJ-SP",
        *,
        fallback: bool = True,
        growth_limit: int = 256,
    ) -> None:
        self._rt = WorkSharingRuntime(
            policy,
            fallback=fallback,
            workers=max_workers,
            max_workers=max(growth_limit, max_workers),
        )
        self._shutdown = False
        self._lock = threading.Lock()
        # The runtime wants a root task; host one lazily on a driver
        # thread that lives for the executor's lifetime.
        self._started = threading.Event()
        self._stop = threading.Event()
        self._root_ready = threading.Event()
        self._root_task = None
        self._driver = threading.Thread(target=self._driver_main, daemon=True)
        self._driver.start()
        self._root_ready.wait()

    def _driver_main(self) -> None:
        from .context import current_task

        def root():
            self._root_task = current_task()
            self._root_ready.set()
            self._stop.wait()

        self._rt.run(root)

    # ------------------------------------------------------------------
    @property
    def runtime(self) -> WorkSharingRuntime:
        return self._rt

    @property
    def verifier(self):
        return self._rt.verifier

    @property
    def detector(self):
        return self._rt.detector

    # ------------------------------------------------------------------
    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)``; returns a verified Future."""
        with self._lock:
            if self._shutdown:
                raise RuntimeStateError("cannot submit after shutdown")
        from .context import current_task, task_scope

        if current_task() is not None:
            # nested submission: the submitting task is the parent
            return self._rt.fork(fn, *args, **kwargs)
        # external submission: attribute to the executor's root task
        with task_scope(self._root_task):
            return self._rt.fork(fn, *args, **kwargs)

    def map(
        self, fn: Callable[..., Any], *iterables: Iterable[Any]
    ) -> Iterator[Any]:
        """Like ``Executor.map``: lazy results in submission order."""
        futures = [self.submit(fn, *args) for args in zip(*iterables)]

        def results():
            for fut in futures:
                yield self._join_external(fut)

        return results()

    def _join_external(self, fut: Future) -> Any:
        """Join from non-task code (e.g. the thread using the executor)."""
        from .context import current_task, task_scope

        if current_task() is not None:
            return fut.join()
        with task_scope(self._root_task):
            return fut.join()

    def result(self, fut: Future) -> Any:
        """Convenience verified join usable from any thread."""
        return self._join_external(fut)

    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; wait for everything submitted to finish."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        self._stop.set()
        if wait:
            self._driver.join()

    def __enter__(self) -> "VerifiedExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown(wait=True)
        return False
