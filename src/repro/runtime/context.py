"""Tracking the currently executing task.

The threaded runtime associates one task with one thread, so a
thread-local slot suffices; the cooperative runtime multiplexes tasks on
one thread and sets the slot around each step.  Both go through this
module so user code has a single :func:`current_task`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional, TYPE_CHECKING

from ..errors import RuntimeStateError

if TYPE_CHECKING:  # pragma: no cover
    from .task import TaskHandle

__all__ = ["current_task", "require_current_task", "task_scope"]

_tls = threading.local()


def current_task() -> Optional["TaskHandle"]:
    """The task executing on this thread, or None outside any runtime."""
    return getattr(_tls, "task", None)


def require_current_task() -> "TaskHandle":
    """Like :func:`current_task` but raises outside a task context."""
    task = current_task()
    if task is None:
        raise RuntimeStateError(
            "no current task: fork/join must be called from inside a runtime "
            "task (did you call fork() before runtime.run()?)"
        )
    return task


@contextmanager
def task_scope(task: "TaskHandle") -> Iterator[None]:
    """Install *task* as this thread's current task for the duration."""
    prev = getattr(_tls, "task", None)
    _tls.task = task
    try:
        yield
    finally:
        _tls.task = prev
