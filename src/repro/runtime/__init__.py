"""Task-parallel futures runtimes (the programming model of Section 2.2).

Two interchangeable runtimes drive the same verification machinery:

* :class:`TaskRuntime` — blocking, thread-per-task (the default for the
  evaluation benchmarks);
* :class:`CooperativeRuntime` — deterministic single-threaded generator
  scheduling (the paper's footnote-4 alternative; also the repository's
  safe sandbox for real deadlock scenarios).
"""

from .context import current_task, require_current_task, task_scope
from .cooperative import CooperativeRuntime
from .future import Future
from .retry import RetryPolicy
from .supervisor import BlockedJoin, JoinRegistry, StallWatchdog
from .task import CancelToken, TaskHandle, TaskState
from .threaded import TaskRuntime, resolve_policy

__all__ = [
    "TaskRuntime",
    "RetryPolicy",
    "CooperativeRuntime",
    "WorkSharingRuntime",
    "AsyncioRuntime",
    "AsyncFuture",
    "Future",
    "TaskHandle",
    "TaskState",
    "CancelToken",
    "BlockedJoin",
    "JoinRegistry",
    "StallWatchdog",
    "current_task",
    "require_current_task",
    "task_scope",
    "resolve_policy",
]

from .asyncio_adapter import AsyncFuture, AsyncioRuntime  # noqa: E402 (cycle-free tail import)
from .executor import VerifiedExecutor  # noqa: E402
from .phaser import Phaser  # noqa: E402
from .pool import WorkSharingRuntime  # noqa: E402
from .procs import ProcessRuntime  # noqa: E402

__all__ += ["Phaser", "VerifiedExecutor", "ProcessRuntime"]
