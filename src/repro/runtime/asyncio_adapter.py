"""Policy-checked futures for asyncio coroutines.

The paper claims TJ "is applicable to a wide range of parallel
programming models" (abstract, Section 8); this adapter makes that
concrete for Python's own concurrency model.  ``AsyncioRuntime.fork``
wraps ``loop.create_task`` and hands back an awaitable whose ``await``
runs the full verification pipeline: policy gate, Armus cycle filter,
blocking-edge bookkeeping, KJ-learn (under a KJ policy).

Two coroutines awaiting each other's futures would hang an ordinary
asyncio program forever; here, the second await raises
:class:`DeadlockAvoidedError` inside the offending coroutine instead.
"""

from __future__ import annotations

import asyncio
import contextvars
from typing import Any, Awaitable, Callable, Generator, Optional, Union

from .task import TaskHandle, TaskState
from .threaded import resolve_policy
from ..armus.hybrid import HybridVerifier
from ..core.policy import JoinPolicy
from ..core.verifier import Verifier
from ..errors import RuntimeStateError, TaskFailedError

__all__ = ["AsyncioRuntime", "AsyncFuture"]

_current_task: "contextvars.ContextVar[Optional[TaskHandle]]" = contextvars.ContextVar(
    "repro_asyncio_current_task", default=None
)


class AsyncFuture:
    """The joinable handle of one verified asyncio task.

    ``await future`` performs a policy-checked join; so does
    ``await future.join()``.
    """

    __slots__ = ("_runtime", "task", "_aio_task")

    def __init__(self, runtime: "AsyncioRuntime", task: TaskHandle, aio_task: "asyncio.Task") -> None:
        self._runtime = runtime
        self.task = task
        self._aio_task = aio_task

    def done(self) -> bool:
        return self._aio_task.done()

    async def join(self) -> Any:
        return await self._runtime._join(self)

    def __await__(self) -> Generator[Any, None, Any]:
        return self.join().__await__()

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"<AsyncFuture of {self.task.name}: {state}>"


class AsyncioRuntime:
    """Deadlock-avoiding task verification for asyncio programs."""

    def __init__(
        self,
        policy: Union[None, str, JoinPolicy] = "TJ-SP",
        *,
        fallback: bool = True,
    ) -> None:
        policy_obj = resolve_policy(policy)
        self._hybrid: Optional[HybridVerifier] = HybridVerifier(policy_obj) if fallback else None
        self._verifier: Verifier = self._hybrid.verifier if self._hybrid else Verifier(policy_obj)
        self._root_started = False

    @property
    def policy(self) -> JoinPolicy:
        return self._verifier.policy

    @property
    def verifier(self) -> Verifier:
        return self._verifier

    @property
    def detector(self):
        return self._hybrid.detector if self._hybrid else None

    @staticmethod
    def current_task() -> Optional[TaskHandle]:
        return _current_task.get()

    # ------------------------------------------------------------------
    async def run(self, fn: Callable[..., Awaitable[Any]], *args: Any, **kwargs: Any) -> Any:
        """Execute the coroutine function *fn* as the root task."""
        if self._root_started:
            raise RuntimeStateError(
                "this runtime already hosted a root task; create a fresh "
                "AsyncioRuntime per program run"
            )
        self._root_started = True
        vertex = self._verifier.on_init()
        root = TaskHandle(vertex, code=fn, name="root")
        root.state = TaskState.RUNNING
        token = _current_task.set(root)
        try:
            result = await fn(*args, **kwargs)
            root.state = TaskState.DONE
            return result
        except BaseException:
            root.state = TaskState.FAILED
            raise
        finally:
            _current_task.reset(token)

    def fork(
        self, fn: Callable[..., Awaitable[Any]], *args: Any, **kwargs: Any
    ) -> AsyncFuture:
        """``async fn(*args)``: schedule *fn* as a new verified task."""
        parent = _current_task.get()
        if parent is None:
            raise RuntimeStateError(
                "fork() must be called from inside a coroutine running under "
                "AsyncioRuntime.run()"
            )
        vertex = self._verifier.on_fork(parent.vertex)
        handle = TaskHandle(vertex, code=fn, parent_uid=parent.uid)

        async def body():
            token = _current_task.set(handle)
            handle.state = TaskState.RUNNING
            try:
                result = await fn(*args, **kwargs)
                handle.state = TaskState.DONE
                return result
            except BaseException:
                handle.state = TaskState.FAILED
                raise
            finally:
                _current_task.reset(token)

        aio_task = asyncio.get_running_loop().create_task(body(), name=handle.name)
        return AsyncFuture(self, handle, aio_task)

    # ------------------------------------------------------------------
    async def _join(self, future: AsyncFuture) -> Any:
        if future._runtime is not self:
            raise RuntimeStateError("future belongs to a different runtime")
        joiner = _current_task.get()
        if joiner is None:
            raise RuntimeStateError("join outside any task context")
        joinee = future.task
        blocked = False
        if self._hybrid is not None:
            blocked = self._hybrid.begin_join(
                joiner, joinee, joiner.vertex, joinee.vertex, joinee_done=future.done()
            )
        else:
            self._verifier.require_join(joiner.vertex, joinee.vertex)
        prev_state = joiner.state
        joiner.state = TaskState.BLOCKED
        try:
            result = await _outcome(future._aio_task)
        finally:
            joiner.state = prev_state
            if blocked and self._hybrid is not None:
                self._hybrid.end_join(joiner, joinee)
        if self._hybrid is not None:
            self._hybrid.on_join_completed(joiner.vertex, joinee.vertex)
        else:
            self._verifier.on_join_completed(joiner.vertex, joinee.vertex)
        if isinstance(result, BaseException):
            raise TaskFailedError(future.task, result)
        return result


async def _outcome(task: "asyncio.Task") -> Any:
    """Await a task, returning its exception instead of raising it."""
    try:
        return await task
    except asyncio.CancelledError:
        raise
    except BaseException as exc:  # noqa: BLE001 - wrapped by the caller
        return exc
