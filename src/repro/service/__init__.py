"""The verification sidecar: remote TJ verification for many processes.

``repro.service`` turns the in-process verifier into a long-lived
multi-tenant service:

* :mod:`~repro.service.wire` — length-prefixed record protocol derived
  from the trace-journal format;
* :mod:`~repro.service.session` — one per-tenant verifier with bounded
  inbox and backpressure;
* :mod:`~repro.service.server` — the sidecar: sessions, liveness,
  crash-consistent journal recovery;
* :mod:`~repro.service.client` — :class:`RemoteVerifier`, the
  degradation-aware drop-in the runtimes select with
  ``runtime(..., verifier="remote://host:port")``.

See ``docs/service.md`` for the protocol and the failure-mode matrix.
"""

from .client import RemoteVerifier, RemoteVertex, parse_remote_url
from .server import ServiceJournal, VerificationServer
from .session import Session
from .wire import WIRE_VERSION

__all__ = [
    "RemoteVerifier",
    "RemoteVertex",
    "parse_remote_url",
    "ServiceJournal",
    "VerificationServer",
    "Session",
    "WIRE_VERSION",
]
