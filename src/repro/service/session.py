"""Per-tenant session state for the verification sidecar.

One :class:`Session` owns one :class:`~repro.core.verifier.Verifier`
(and therefore one policy instance): the fault isolation the server
promises — one tenant's policy bug never poisons another — falls out of
that ownership, because quarantine is a per-verifier property.

Events arrive through a **bounded inbox** drained by a dedicated worker
thread.  The bound is the backpressure mechanism: a client producing
events faster than its session can verify them has its records refused
with an explicit ``backpressure`` reply (the client raises
:class:`~repro.errors.ServiceBackpressureError`) instead of growing
server memory without bound.  Synchronous ``check`` queries ride the
same inbox as the fire-and-forget state events, which is what makes
them *synchronous with respect to the stream*: a check is answered only
after every earlier fork from the same client has been applied.

Client vertex ids (``rid``) are dense ints assigned client-side; the
session maps them to policy vertices.  ``applied_seq`` tracks the
highest state-event sequence number applied, so a resuming client can
replay exactly the gap (records with ``cseq > applied_seq``) and
duplicates from an over-eager replay are dropped idempotently.  The
watermark only ever advances contiguously: an event that arrives past a
backpressure-refused predecessor is dropped rather than applied, so the
``welcome``'s ``last_seq`` never overstates what the session holds.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Optional

from ..core.policy import make_policy
from ..core.verifier import Verifier
from ..errors import PolicyQuarantinedError, ServiceProtocolError
from .mirror import MirroredSpawnPaths

__all__ = ["Session", "Tenant"]

#: sentinel shutting a session worker down
_CLOSE = object()


class Tenant:
    """Verification state shared by a *group* of sessions.

    The multi-process runtime opens one session per worker process but
    all workers fork into one spawn-path forest, so their sessions must
    share one policy instance and one rid namespace — that sharing is a
    tenant.  Every member session applies records under the tenant's
    lock (the sessions' worker threads interleave), against the tenant's
    verifier and ``vertices`` map.

    Cross-session ordering is the one new problem, twice over.  First,
    worker B may check a join against a vertex whose announcing ``fork``
    is still queued in worker A's session: records that reference a
    not-yet-known rid are **parked** keyed by the missing rid and
    replayed the moment any member session inserts it; state events are
    journalled at arrival (recovery replays them in arrival order and
    parks identically), and synchronous checks simply answer late —
    which is exactly the stream-synchronous semantics a single session
    already has, lifted to the tenant.  A rid that never arrives (a
    client bug) parks its records forever; clients bound the wait with
    their own timeouts.  Second, *sibling order*: two workers' fork
    announcements race, so the tenant must not re-derive edge indices
    from arrival order — tenant fork records carry the authoritative
    ``edge``/``depth`` from the client's shared tree and the tenant
    verifies over a :class:`~repro.service.mirror.MirroredSpawnPaths`
    that applies them verbatim.  That mirror is TJ-SP-shaped, so only
    TJ-SP-family policies may open a tenant.
    """

    def __init__(self, name: str, policy_name: str, fail_mode: str = "open") -> None:
        if not policy_name.startswith("TJ-SP"):
            raise ServiceProtocolError(
                f"tenants verify via an authoritative spawn-path mirror; "
                f"policy {policy_name!r} is not TJ-SP-family"
            )
        self.name = name
        self.policy_name = policy_name
        self.fail_mode = "open" if fail_mode == "raise" else fail_mode
        self.policy = MirroredSpawnPaths(policy_name)
        self.verifier = Verifier(self.policy, fail_mode=self.fail_mode)
        self.vertices: dict[int, object] = {}
        self.lock = threading.RLock()
        #: missing rid -> [(session, stripped record, reply), ...]
        self.parked: dict[int, list] = {}
        #: rids inserted while a drain is running (processed by the outer drain)
        self.pending_rids: list[int] = []
        self.draining = False
        #: lifetime count of parked records (observability)
        self.parked_total = 0

    def parked_count(self) -> int:
        return sum(len(v) for v in self.parked.values())


class Session:
    """One tenant's verification stream inside the sidecar.

    Parameters
    ----------
    session_id:
        The tenant's chosen identifier (any string; clients pick
        something unique per runtime instance).
    policy_name:
        Registered policy name; the session owns a private instance.
    fail_mode:
        The client's requested fault boundary.  ``"raise"`` cannot be
        honoured across a process boundary (the original exception
        object cannot propagate into the client's stack), so it is
        coerced to ``"open"`` — the degraded-but-sound posture — and
        the coercion is reported in the session's ``welcome``.
    journal:
        The server's shared :class:`~repro.service.server.ServiceJournal`
        (or None); state events and verdicts are written through so a
        restarted server rebuilds this session exactly.
    inbox_limit:
        Bound on queued-but-unapplied records for this session.
    ack_every:
        Send a durability ``ack`` (and flush the journal) every this
        many state events, letting the client prune its replay buffer.
        Acks are only sent when a journal is present — without one, a
        restarted server has nothing to resume from and the client must
        keep its full replay log.
    """

    def __init__(
        self,
        session_id: str,
        policy_name: str,
        fail_mode: str,
        *,
        journal: "object | None" = None,
        inbox_limit: int = 1024,
        ack_every: int = 256,
        telemetry: "object | None" = None,
        tenant: "Tenant | None" = None,
    ) -> None:
        self.session_id = session_id
        self.policy_name = policy_name
        self.requested_fail_mode = fail_mode
        self.fail_mode = "open" if fail_mode == "raise" else fail_mode
        self.tenant = tenant
        if tenant is not None:
            # Member sessions verify against the tenant's shared state;
            # stats and quarantine are therefore tenant-wide.
            self.verifier = tenant.verifier
            self.vertices = tenant.vertices
        else:
            self.verifier = Verifier(make_policy(policy_name), fail_mode=self.fail_mode)
            self.vertices: dict[int, object] = {}
        self.journal = journal
        self.applied_seq = -1
        self.inbox_limit = inbox_limit
        self.ack_every = max(1, ack_every)
        self.inbox: "queue.Queue" = queue.Queue(maxsize=inbox_limit)
        #: records refused because the inbox was full
        self.backpressure_refusals = 0
        #: events dropped because an earlier record was refused (gap)
        self.gap_drops = 0
        #: test seam: clearing this gate parks the worker between records,
        #: letting tests fill the inbox deterministically
        self.drain_gate = threading.Event()
        self.drain_gate.set()
        self._quarantine_announced = False
        self._closed = False
        self._lock = threading.Lock()
        self._events = 0
        self._checks = 0
        if telemetry is not None:
            reg = telemetry.registry
            self._events_counter = reg.counter(
                "repro_service_events_total", labels={"session": session_id}
            )
            self._checks_counter = reg.counter(
                "repro_service_checks_total", labels={"session": session_id}
            )
        else:
            self._events_counter = None
            self._checks_counter = None
        self._telemetry = telemetry
        self._worker = threading.Thread(
            target=self._worker_main,
            name=f"repro-session-{session_id}",
            daemon=True,
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # intake (called from connection reader threads)
    # ------------------------------------------------------------------
    def submit(self, record: dict, reply: Callable[[dict], None]) -> bool:
        """Queue *record*; returns False (after a backpressure reply) when full.

        *reply* is the connection's locked send function; the worker
        uses it for verdicts/acks, the refusal path uses it directly.
        """
        try:
            self.inbox.put_nowait((record, reply))
            return True
        except queue.Full:
            with self._lock:
                self.backpressure_refusals += 1
            refusal = {"kind": "backpressure", "limit": self.inbox_limit}
            if "req" in record:
                refusal["req"] = record["req"]
            if "cseq" in record:
                refusal["cseq"] = record["cseq"]
            reply(refusal)
            return False

    def close(self) -> None:
        """Stop the worker; queued records are drained first."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.inbox.put((_CLOSE, None))
        self._worker.join(timeout=5.0)

    # ------------------------------------------------------------------
    # the worker
    # ------------------------------------------------------------------
    def _worker_main(self) -> None:
        while True:
            record, reply = self.inbox.get()
            if record is _CLOSE:
                return
            self.drain_gate.wait()
            try:
                self.apply(record, reply)
            except ServiceProtocolError as exc:
                self._safe_reply(
                    reply, {"kind": "error", "message": str(exc), "req": record.get("req")}
                )
            except Exception as exc:  # noqa: BLE001 - a session must not die silently
                self._safe_reply(
                    reply,
                    {"kind": "error", "message": f"internal: {exc!r}", "req": record.get("req")},
                )

    @staticmethod
    def _safe_reply(reply: Optional[Callable[[dict], None]], record: dict) -> None:
        """Replies race connection death; a dead peer is not a session error."""
        if reply is None:
            return
        try:
            reply(record)
        except Exception:  # noqa: BLE001 - connection gone; the record is moot
            pass

    # ------------------------------------------------------------------
    # record application (worker thread, or recovery replay)
    # ------------------------------------------------------------------
    def _vertex(self, rid: object) -> object:
        try:
            return self.vertices[rid]
        except (KeyError, TypeError):
            raise ServiceProtocolError(
                f"session {self.session_id!r}: unknown vertex rid {rid!r}"
            ) from None

    def _count_event(self) -> None:
        self._events += 1
        if self._events_counter is not None:
            self._events_counter.inc()

    def _count_check(self, n: int = 1) -> None:
        self._checks += n
        if self._checks_counter is not None:
            self._checks_counter.inc(n)

    def apply(self, record: dict, reply: Optional[Callable[[dict], None]] = None) -> None:
        """Apply one validated record; sends any reply through *reply*.

        Also the recovery entry point: the server replays journal
        records through this method (with ``reply=None``) to rebuild the
        session, so live application and crash recovery cannot drift.
        Tenanted sessions serialize through the tenant lock — their
        worker threads interleave over shared verifier state.
        """
        if self.tenant is not None:
            with self.tenant.lock:
                self._apply(record, reply)
        else:
            self._apply(record, reply)

    def _apply(self, record: dict, reply: Optional[Callable[[dict], None]]) -> None:
        kind = record["kind"]
        journal = self.journal
        if kind in ("init", "fork", "join"):
            cseq = record["cseq"]
            if cseq <= self.applied_seq:
                return  # duplicate from a replay; idempotent drop
            if cseq != self.applied_seq + 1:
                # A gap: an earlier record was refused under backpressure
                # and this one slipped in behind it.  Applying it would
                # advance the resume watermark past the hole, and the
                # refused record — which the client only replays for
                # ``cseq > last_seq`` — would be lost forever.  Drop it;
                # the client's replay buffer still holds both, and the
                # next reconcile replays from the honest watermark.
                with self._lock:
                    self.gap_drops += 1
                return
            self._count_event()
            self._apply_state(kind, record)
            self.applied_seq = cseq
            if journal is not None:
                journal.log_event(self.session_id, record)
                if cseq % self.ack_every == 0:
                    journal.flush()
                    self._safe_reply(reply, {"kind": "ack", "seq": cseq})
            self._announce_quarantine(reply)
        elif kind == "check":
            self._count_check()
            self._do_check(record, reply)
        elif kind == "check_batch":
            self._count_check(len(record["joinees"]))
            self._do_check_batch(record, reply)
        elif kind == "recheck":
            self._count_check()
            self._do_recheck(record, reply)
        else:
            raise ServiceProtocolError(f"session cannot apply record kind {kind!r}")

    # -- semantic application (parkable; shared by live apply and unpark) --
    def _apply_state(self, kind: str, record: dict) -> None:
        """The state transition of one init/fork/join event.

        Sequencing (cseq) and journaling stay with the caller: a parked
        event was already sequenced and journalled on arrival, so its
        replay comes straight here.
        """
        verifier = self.verifier
        tenant = self.tenant
        if kind == "init":
            rid = record["task"]
            if tenant is not None:
                tenant.policy.stage(rid, -1, 0, 0)
            self.vertices[rid] = verifier.on_init()
            self._unpark(rid)
        elif kind == "fork":
            parent = record["parent"]
            if self._park_if_missing((parent,), record, None):
                return
            if tenant is not None:
                # Authoritative placement: arrival order across worker
                # sessions must not invent sibling edge indices.
                try:
                    edge, depth = record["edge"], record["depth"]
                except KeyError:
                    raise ServiceProtocolError(
                        "tenant fork records must carry edge/depth"
                    ) from None
                tenant.policy.stage(record["child"], parent, edge, depth)
            self.vertices[record["child"]] = verifier.on_fork(self.vertices[parent])
            self._unpark(record["child"])
        else:  # join (the KJ-learn event)
            waiter, joinee = record["waiter"], record["joinee"]
            if self._park_if_missing((waiter, joinee), record, None):
                return
            try:
                verifier.on_join_completed(self.vertices[waiter], self.vertices[joinee])
            except PolicyQuarantinedError:
                pass  # fail-closed session: reported via the check path

    def _begin_check_span(self, record: dict) -> "tuple | None":
        """Open the ``join_check`` span for a check, parented under the
        client's dispatched trace context when the record carries one
        (optional ``trace``/``span`` fields) — that adoption is what
        stitches the sidecar's track into the runtime's distributed
        trace."""
        tel = self._telemetry
        if tel is None or tel.tracer is None:
            return None
        trace, span = record.get("trace"), record.get("span")
        parent = (trace, span) if trace is not None and span is not None else None
        return tel.tracer.begin_span("join_check", parent=parent)

    def _end_check_span(self, handle, args: dict) -> None:
        if handle is not None:
            args["session"] = self.session_id
            self._telemetry.tracer.end_span(handle, cat="verify", args=args)

    def _do_check(self, record: dict, reply) -> None:
        waiter, joinee = record["waiter"], record["joinee"]
        if self._park_if_missing((waiter, joinee), record, reply):
            return
        handle = self._begin_check_span(record)
        try:
            ok = self.verifier.check_join(self._vertex(waiter), self._vertex(joinee))
        except PolicyQuarantinedError as exc:
            # Fail-closed session: the client's pending check must
            # still complete — the quarantine record carries the
            # request id and the client raises the stored error.
            self._announce_quarantine(reply, exc, req=record["req"])
            return
        finally:
            self._end_check_span(handle, {"waiter": waiter, "joinee": joinee})
        if self.journal is not None:
            self.journal.log_verdict(self.session_id, waiter, joinee, ok)
        self._announce_quarantine(reply)
        self._safe_reply(reply, {"kind": "verdict", "req": record["req"], "ok": ok})

    def _do_check_batch(self, record: dict, reply) -> None:
        joinees = record["joinees"]
        waiter = record["waiter"]
        if self._park_if_missing((waiter, *joinees), record, reply):
            return
        handle = self._begin_check_span(record)
        try:
            oks = self.verifier.check_joins(
                self._vertex(waiter), [self._vertex(j) for j in joinees]
            )
        except PolicyQuarantinedError as exc:
            self._announce_quarantine(reply, exc, req=record["req"])
            return
        finally:
            self._end_check_span(
                handle, {"waiter": waiter, "batch": len(joinees)}
            )
        if self.journal is not None:
            for joinee, ok in zip(joinees, oks):
                self.journal.log_verdict(self.session_id, waiter, joinee, ok)
        self._announce_quarantine(reply)
        self._safe_reply(reply, {"kind": "verdicts", "req": record["req"], "ok": oks})

    def _do_recheck(self, record: dict, reply) -> None:
        # Reconcile replay of a verdict the client answered locally
        # while degraded: re-derive it for exact server-side stats
        # and the journal's verdict stream; no reply.
        waiter, joinee = record["waiter"], record["joinee"]
        if self._park_if_missing((waiter, joinee), record, reply):
            return
        try:
            ok = self.verifier.check_join(self._vertex(waiter), self._vertex(joinee))
        except PolicyQuarantinedError:
            return
        if self.journal is not None:
            self.journal.log_verdict(self.session_id, waiter, joinee, ok)
        self._announce_quarantine(reply)

    # -- tenant parking --------------------------------------------------
    def _park_if_missing(self, rids, record: dict, reply) -> bool:
        """Park *record* on its first unknown rid (tenanted sessions only).

        Non-tenant sessions return False and let :meth:`_vertex` raise
        the strict unknown-rid protocol error, exactly as before.
        """
        tenant = self.tenant
        if tenant is None:
            return False
        vertices = self.vertices
        for rid in rids:
            if rid not in vertices:
                tenant.parked.setdefault(rid, []).append((self, record, reply))
                tenant.parked_total += 1
                return True
        return False

    def _unpark(self, rid: int) -> None:
        """Replay records parked on *rid*, iteratively (no recursion).

        Called with the tenant lock held.  Inserting a vertex inside a
        running drain only queues its rid; the outer drain loop picks it
        up, so arbitrarily long parked fork chains replay in bounded
        stack depth.
        """
        tenant = self.tenant
        if tenant is None:
            return
        tenant.pending_rids.append(rid)
        if tenant.draining:
            return
        tenant.draining = True
        try:
            while tenant.pending_rids:
                ready = tenant.pending_rids.pop()
                for sess, record, reply in tenant.parked.pop(ready, ()):
                    sess._replay_parked(record, reply)
        finally:
            tenant.draining = False

    def _replay_parked(self, record: dict, reply) -> None:
        kind = record["kind"]
        if kind in ("init", "fork", "join"):
            self._apply_state(kind, record)  # re-parks if another rid is missing
        elif kind == "check":
            self._do_check(record, reply)
        elif kind == "check_batch":
            self._do_check_batch(record, reply)
        elif kind == "recheck":
            self._do_recheck(record, reply)

    def _announce_quarantine(
        self,
        reply: Optional[Callable[[dict], None]],
        exc: "PolicyQuarantinedError | None" = None,
        *,
        req: "int | None" = None,
    ) -> None:
        """Tell the client that this session's policy is quarantined.

        Journalled and announced once per session; a fail-closed check
        (*exc* set) is additionally answered every time, with the
        pending request id attached so the caller unblocks.
        """
        q = exc or self.verifier.quarantine_error
        if q is None:
            return
        if self.journal is not None and not self._quarantine_announced:
            self.journal.log_quarantine(self.session_id, q.policy, q.site, str(q))
        announce_now = not self._quarantine_announced or exc is not None
        self._quarantine_announced = True
        if announce_now:
            record = {
                "kind": "quarantine",
                "policy": q.policy,
                "site": str(q.site),
                "error": str(q.original) if q.original else str(q),
                "fail_mode": self.fail_mode,
            }
            if req is not None:
                record["req"] = req
            self._safe_reply(reply, record)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Introspection for the server's metrics source and tests."""
        stats = self.verifier.stats
        snap = {
            "session": self.session_id,
            "policy": self.policy_name,
            "fail_mode": self.fail_mode,
            "applied_seq": self.applied_seq,
            "vertices": len(self.vertices),
            "events": self._events,
            "checks": self._checks,
            "backpressure_refusals": self.backpressure_refusals,
            "gap_drops": self.gap_drops,
            "quarantined": self.verifier.quarantined,
            "forks": stats.forks,
            "joins_checked": stats.joins_checked,
            "joins_rejected": stats.joins_rejected,
        }
        if self.tenant is not None:
            # vertices/forks/joins are tenant-wide under a shared verifier
            snap["tenant"] = self.tenant.name
            snap["tenant_parked"] = self.tenant.parked_count()
            snap["tenant_parked_total"] = self.tenant.parked_total
        return snap
