"""``RemoteVerifier``: the sidecar-backed drop-in for :class:`Verifier`.

The runtimes select it with ``runtime(..., verifier="remote://host:port")``
and drive it through the ordinary verifier protocol; underneath, state
events stream to the sidecar fire-and-forget and join-permit checks are
synchronous round trips.  It subclasses :class:`~repro.core.verifier.
Verifier` so everything layered on the verifier — sharded stats, the
quarantine surface, ``require_join(s)``, the supervision layer's
``unsound`` consultation — works unchanged; the local policy instance
is *metadata only* (name, ``stable_permits``) and never sees an event.

Failure posture (the point of this module)
------------------------------------------
Every network failure funnels into one transition: **degrade**.  A
degraded verifier answers every check ``True`` locally (fail-open) and
reports :attr:`unsound` — which makes :class:`~repro.armus.hybrid.
HybridVerifier` force-check every blocking join against the Armus
wait-for graph, so true deadlocks are still avoided with zero sidecar
involvement.  The transition emits one :class:`~repro.errors.
ServiceDegradedWarning` per episode.  Nothing is lost meanwhile:

* state events (init/fork/join) keep accumulating in the **replay
  buffer** — the same buffer that covers in-flight loss, pruned by the
  server's journal-durability ``ack`` watermarks;
* locally-answered checks are remembered (bounded) for **reconcile**.

A heartbeat thread pings inside the liveness deadline and, while
degraded, retries the connection on the
:class:`~repro.runtime.retry.RetryPolicy` deterministic backoff
schedule.  On reconnect the client resumes its session: the server's
``welcome`` quotes ``last_seq``, the client replays exactly the gap
(``cseq > last_seq``; the server drops duplicates idempotently), then
replays the degraded-window checks as fire-and-forget ``recheck``
records so the server re-derives those verdicts and its per-session
stats match an uninterrupted run.

Backpressure is the one failure that is *not* absorbed: a server
refusal surfaces as :class:`~repro.errors.ServiceBackpressureError` at
the next synchronous call — the contract is explicit failure, never
unbounded buffering on either side.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import warnings
from time import monotonic, perf_counter_ns
from typing import Optional, Sequence

from ..core.policy import JoinPolicy, make_policy
from ..core.verifier import Verifier
from ..errors import (
    PolicyQuarantinedError,
    PolicyQuarantineWarning,
    ServiceBackpressureError,
    ServiceDegradedWarning,
    ServiceError,
    ServiceProtocolError,
    ServiceUnavailableError,
)
from ..obs.metrics import RTT_NS_BUCKETS
from ..obs.tracing import current_trace_context
from ..runtime.retry import RetryPolicy
from .wire import SERVER_KINDS, WIRE_VERSION, RecordStream, validate_record

__all__ = ["RemoteVerifier", "RemoteVertex", "SessionClient", "parse_remote_url"]

#: distinguishes sessions of one process; the pid distinguishes processes
_SESSION_COUNTER = itertools.count()

#: default client-side retry schedule for connect attempts
_DEFAULT_RETRY = RetryPolicy(max_attempts=5, base_delay=0.05, max_delay=1.0, jitter=0.5)

#: bound on remembered degraded-window checks (reconcile fidelity is
#: best-effort past this; the counter records what was dropped)
_MAX_RECHECKS = 65536


def _stamp_trace(record: dict) -> None:
    """Attach the ambient ``(trace, span)`` context to a check record.

    The fields are optional on the wire (old servers ignore them); with
    them the sidecar parents its ``join_check`` span under the span that
    escalated the check, stitching its track into the caller's
    distributed trace.  Disabled telemetry is one contextvar read.
    """
    tctx = current_trace_context()
    if tctx is not None:
        record["trace"], record["span"] = tctx


def parse_remote_url(url: str) -> tuple[str, int]:
    """``"remote://host:port"`` → ``(host, port)``."""
    prefix = "remote://"
    if not url.startswith(prefix):
        raise ValueError(f"remote verifier URL must start with {prefix!r}: {url!r}")
    rest = url[len(prefix):]
    host, sep, port = rest.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(f"remote verifier URL must be remote://host:port: {url!r}")
    return host, int(port)


class RemoteVertex:
    """A client-side task handle: a dense integer id the server mirrors."""

    __slots__ = ("rid", "parent")

    def __init__(self, rid: int, parent: "RemoteVertex | None" = None) -> None:
        self.rid = rid
        self.parent = parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<remote-vertex r{self.rid}>"


class _Pending:
    """One in-flight synchronous request."""

    __slots__ = ("event", "outcome", "value")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.outcome: Optional[str] = None  # "ok" | "exc" | "degraded"
        self.value: object = None

    def resolve(self, outcome: str, value: object = None) -> None:
        self.outcome = outcome
        self.value = value
        self.event.set()


class RemoteVerifier(Verifier):
    """A :class:`Verifier` whose policy lives in the verification sidecar.

    Parameters
    ----------
    url:
        ``"remote://host:port"`` (or a pre-split ``(host, port)`` tuple).
    policy:
        Registered policy name; the server instantiates the real one,
        the client keeps a local instance purely for metadata.
    fail_mode:
        The usual verifier fault boundary.  Sent to the server in
        ``hello`` (which coerces ``"raise"`` to ``"open"`` — exceptions
        cannot cross a process boundary); locally it governs how a
        remote quarantine announcement is surfaced.
    session:
        Session id; defaults to a host-pid-counter string unique enough
        for many client processes against one sidecar.
    retry:
        :class:`RetryPolicy` driving connect/reconnect backoff (its
        deterministic jitter keeps chaos runs reproducible).
    liveness_timeout:
        Seconds of server silence (or one unanswered check) after which
        the client degrades.  Heartbeats go out at a third of this.
    journal:
        Optional local :class:`~repro.tools.journal.TraceJournal`
        written like any verifier's — this is the client-side record
        the degradation story replays from.
    connect:
        When False, skip the constructor's connection attempt and start
        degraded (tests use this to exercise reconcile from birth).
    """

    def __init__(
        self,
        url: "str | tuple[str, int]",
        policy: "str | JoinPolicy" = "TJ-SP",
        *,
        fail_mode: str = "open",
        session: "str | None" = None,
        retry: "RetryPolicy | None" = None,
        liveness_timeout: float = 2.0,
        journal: "object | None" = None,
        connect: bool = True,
    ) -> None:
        local_policy = make_policy(policy) if isinstance(policy, str) else policy
        super().__init__(local_policy, fail_mode=fail_mode, journal=journal)
        self.host, self.port = parse_remote_url(url) if isinstance(url, str) else url
        self.session_id = session or (
            f"{socket.gethostname()}-{os.getpid()}-{next(_SESSION_COUNTER)}"
        )
        self.retry = retry if retry is not None else _DEFAULT_RETRY
        self.liveness_timeout = liveness_timeout
        #: the KJ-learn optimisation: ``join`` events only travel when
        #: the policy actually overrides ``on_join`` (TJ policies don't)
        self._send_joins = type(local_policy).on_join is not JoinPolicy.on_join
        # --- connection state (guarded by _state_lock) ---
        self._state_lock = threading.Lock()
        self._stream: Optional[RecordStream] = None
        self._gen = 0  # connection generation; stale threads check it
        self._is_degraded = True  # until the first connect succeeds
        self._warned_episode = -1
        self._last_heard = monotonic()
        self._closed = threading.Event()
        # --- outbound state stream (guarded by _send_lock) ---
        self._send_lock = threading.Lock()
        self._next_rid = itertools.count()
        self._next_cseq = itertools.count()
        self._replay: list[dict] = []  # unacked state events, cseq order
        self._acked_seq = -1
        # --- synchronous requests ---
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._next_req = itertools.count()
        # --- reconcile bookkeeping ---
        self._degraded_checks: list[tuple[int, int]] = []
        self._rechecks_dropped = 0
        self._backpressure: Optional[ServiceBackpressureError] = None
        #: counters the tests and `top` read
        self.degradations = 0
        self.reconciles = 0
        self.events_replayed = 0
        self.rechecks_sent = 0
        obs = self._obs  # set by Verifier.__init__
        if obs is not None:
            labels = {"session": self.session_id}
            self._rtt_hist = obs.registry.histogram(
                "repro_service_rtt_ns", buckets=RTT_NS_BUCKETS, labels=labels
            )
            self._degradations_counter = obs.registry.counter(
                "repro_service_degradations_total", labels=labels
            )
            self._reconciles_counter = obs.registry.counter(
                "repro_service_reconciles_total", labels=labels
            )
        else:
            self._rtt_hist = None
            self._degradations_counter = None
            self._reconciles_counter = None
        if connect:
            self._connect_with_retry()
        if self._is_degraded:
            self._warn_degraded("sidecar unreachable at construction")
        self._heartbeat = threading.Thread(
            target=self._heartbeat_main,
            name=f"repro-remote-hb-{self.session_id}",
            daemon=True,
        )
        self._heartbeat.start()

    # ------------------------------------------------------------------
    # state surface the hybrid/supervision layers consult
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True while answering locally because the sidecar is unreachable."""
        return self._is_degraded

    @property
    def unsound(self) -> bool:
        """Degradation *or* quarantine voids the policy's soundness theorem."""
        return self._is_degraded or self._quarantine is not None

    @property
    def connected(self) -> bool:
        return not self._is_degraded

    # ------------------------------------------------------------------
    # verifier protocol: state events
    # ------------------------------------------------------------------
    def on_init(self) -> RemoteVertex:
        self._shard().forks += 1
        vertex = RemoteVertex(next(self._next_rid))
        self._emit_event({"kind": "init", "task": vertex.rid})
        if self.journal is not None:
            self.journal.log_init(vertex)
        return vertex

    def on_fork(self, parent: "RemoteVertex | None") -> RemoteVertex:
        self._shard().forks += 1
        vertex = RemoteVertex(next(self._next_rid), parent)
        self._emit_event(
            {
                "kind": "fork",
                "parent": parent.rid if parent is not None else None,
                "child": vertex.rid,
            }
        )
        if self.journal is not None:
            self.journal.log_fork(parent, vertex)
        return vertex

    def on_join_completed(self, joiner: RemoteVertex, joinee: RemoteVertex) -> None:
        if not self._send_joins:
            return  # the policy's on_join is the no-op default: no traffic
        self._emit_event(
            {"kind": "join", "waiter": joiner.rid, "joinee": joinee.rid}
        )

    def _emit_event(self, record: dict) -> None:
        """Sequence, buffer, and (when connected) send one state event.

        Never raises for network trouble — a failed send degrades and
        the buffered record rides the next reconcile.
        """
        with self._send_lock:
            record["cseq"] = next(self._next_cseq)
            self._replay.append(record)
            stream = self._stream
            if stream is None:
                return
            try:
                stream.send(record)
            except ServiceUnavailableError as exc:
                self._enter_degraded(f"send failed: {exc}")

    # ------------------------------------------------------------------
    # verifier protocol: synchronous checks
    # ------------------------------------------------------------------
    def check_join(self, joiner: RemoteVertex, joinee: RemoteVertex) -> bool:
        ok = bool(self._roundtrip_check(joiner.rid, joinee.rid))
        shard = self._shard()
        shard.joins_checked += 1
        if not ok:
            shard.joins_rejected += 1
        if self.journal is not None:
            self.journal.log_verdict(joiner, joinee, ok)
        return ok

    def check_joins(self, joiner: RemoteVertex, joinees: Sequence[RemoteVertex]) -> list[bool]:
        joinees = list(joinees)
        if not joinees:
            return []
        verdicts = self._roundtrip_check(
            joiner.rid, [j.rid for j in joinees], batch=True
        )
        verdicts = [bool(v) for v in verdicts]
        if len(verdicts) != len(joinees):
            # a malformed reply must not misalign verdicts with joinees
            self._enter_degraded("verdict batch length mismatch")
            verdicts = self._degraded_batch(joiner.rid, [j.rid for j in joinees])
        shard = self._shard()
        shard.joins_checked += len(verdicts)
        shard.joins_rejected += verdicts.count(False)
        if self.journal is not None:
            for joinee, ok in zip(joinees, verdicts):
                self.journal.log_verdict(joiner, joinee, ok)
        return verdicts

    def _roundtrip_check(self, waiter: int, joinee, *, batch: bool = False):
        """One synchronous permit query; every failure path answers locally."""
        bp = self._backpressure
        if bp is not None:
            self._backpressure = None
            raise bp
        q = self._quarantine
        if q is not None and self.fail_mode == "closed":
            raise q
        if self._is_degraded:
            return (
                self._degraded_batch(waiter, joinee)
                if batch
                else self._degraded_answer(waiter, joinee)
            )
        pending = _Pending()
        req = next(self._next_req)
        with self._pending_lock:
            self._pending[req] = pending
        if batch:
            record = {"kind": "check_batch", "waiter": waiter, "joinees": joinee, "req": req}
        else:
            record = {"kind": "check", "waiter": waiter, "joinee": joinee, "req": req}
        _stamp_trace(record)
        t0 = perf_counter_ns()
        with self._send_lock:
            stream = self._stream
            if stream is not None:
                try:
                    stream.send(record)
                except ServiceUnavailableError as exc:
                    self._enter_degraded(f"send failed: {exc}")
                    stream = None
        if stream is None:
            with self._pending_lock:
                self._pending.pop(req, None)
            return (
                self._degraded_batch(waiter, joinee)
                if batch
                else self._degraded_answer(waiter, joinee)
            )
        if not pending.event.wait(self.liveness_timeout * 2):
            self._enter_degraded("permit query timed out")
        with self._pending_lock:
            self._pending.pop(req, None)
        if pending.outcome == "ok":
            if self._rtt_hist is not None:
                self._rtt_hist.observe(perf_counter_ns() - t0)
            return pending.value
        if pending.outcome == "exc":
            raise pending.value  # quarantine (closed) or backpressure
        # degraded (or timed out, which degraded us): answer locally
        return (
            self._degraded_batch(waiter, joinee)
            if batch
            else self._degraded_answer(waiter, joinee)
        )

    def _degraded_answer(self, waiter: int, joinee: int) -> bool:
        """Fail-open local verdict, remembered for reconcile."""
        if len(self._degraded_checks) < _MAX_RECHECKS:
            self._degraded_checks.append((waiter, joinee))
        else:
            self._rechecks_dropped += 1
        return True

    def _degraded_batch(self, waiter: int, joinees: list) -> list[bool]:
        return [self._degraded_answer(waiter, j) for j in joinees]

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    def _connect_with_retry(self) -> bool:
        """Constructor-time connect on the RetryPolicy schedule."""
        for attempt in range(1, self.retry.max_attempts + 1):
            if self._try_connect():
                return True
            if attempt < self.retry.max_attempts:
                self._closed.wait(self.retry.delay(attempt, site="service-connect"))
        return False

    def _try_connect(self) -> bool:
        """One connect + handshake + reconcile attempt; False on failure."""
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.liveness_timeout
            )
        except OSError:
            return False
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.liveness_timeout * 2)
            stream = RecordStream(sock)
            stream.send(
                {
                    "kind": "hello",
                    "session": self.session_id,
                    "policy": self.policy.name,
                    "fail_mode": self.fail_mode,
                    "wire": WIRE_VERSION,
                    "resume": True,
                }
            )
            welcome = stream.recv()
            if welcome is None:
                raise ServiceUnavailableError("server closed during handshake")
            kind = validate_record(welcome, SERVER_KINDS)
            if kind == "error":
                raise ServiceProtocolError(welcome["message"])
            if kind != "welcome":
                raise ServiceProtocolError(f"expected welcome, got {kind!r}")
            sock.settimeout(None)
        except (ServiceUnavailableError, ServiceProtocolError, OSError) as exc:
            try:
                sock.close()
            except OSError:
                pass
            if isinstance(exc, ServiceProtocolError):
                # The server *rejected* us (policy mismatch, version skew):
                # retrying cannot help, and hiding it would mask misconfig.
                warnings.warn(
                    f"sidecar refused session {self.session_id!r}: {exc}",
                    ServiceDegradedWarning,
                    stacklevel=3,
                )
            return False
        # Handshake done: install the stream and reconcile under the send
        # lock so no fresh event can jump ahead of the replayed gap.
        with self._send_lock:
            was_degraded = self._is_degraded
            with self._state_lock:
                self._gen += 1
                gen = self._gen
                self._stream = stream
                self._is_degraded = False
                self._last_heard = monotonic()
            if welcome.get("quarantined") and self._quarantine is None:
                self._adopt_quarantine("resume", "policy quarantined before resume")
            try:
                self._reconcile_locked(stream, int(welcome["last_seq"]))
            except ServiceUnavailableError as exc:
                self._enter_degraded(f"reconcile failed: {exc}")
                return False
        receiver = threading.Thread(
            target=self._receiver_main,
            args=(stream, gen),
            name=f"repro-remote-rx-{self.session_id}",
            daemon=True,
        )
        receiver.start()
        if was_degraded and self.reconciles > 0:
            if self._reconciles_counter is not None:
                self._reconciles_counter.inc()
        return True

    def _reconcile_locked(self, stream: RecordStream, last_seq: int) -> None:
        """Replay the gap and the degraded-window checks (send lock held)."""
        replayed = 0
        for record in self._replay:
            if record["cseq"] > last_seq:
                stream.send(record)
                replayed += 1
        self.events_replayed += replayed
        rechecks, self._degraded_checks = self._degraded_checks, []
        for waiter, joinee in rechecks:
            stream.send({"kind": "recheck", "waiter": waiter, "joinee": joinee})
        self.rechecks_sent += len(rechecks)
        if replayed or rechecks:
            self.reconciles += 1

    def try_reconnect(self) -> bool:
        """One immediate reconnect attempt (tests and the heartbeat use it)."""
        if self._closed.is_set() or not self._is_degraded:
            return not self._is_degraded
        return self._try_connect()

    def _enter_degraded(self, reason: str) -> None:
        """The one-way-per-episode transition to local answering."""
        with self._state_lock:
            if self._is_degraded:
                return
            self._is_degraded = True
            self._gen += 1
            stream, self._stream = self._stream, None
        self.degradations += 1
        if self._degradations_counter is not None:
            self._degradations_counter.inc()
        if stream is not None:
            try:
                stream.sock.close()
            except OSError:
                pass
        # Anyone blocked on a verdict answers locally instead of hanging.
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for p in pending.values():
            p.resolve("degraded")
        self._warn_degraded(reason)

    def _warn_degraded(self, reason: str) -> None:
        if self._warned_episode == self.degradations:
            return
        self._warned_episode = self.degradations
        warnings.warn(
            f"verification sidecar at {self.host}:{self.port} unavailable "
            f"({reason}); session {self.session_id!r} degraded to local "
            "fail-open checking — Armus force-checks every blocking join",
            ServiceDegradedWarning,
            stacklevel=2,
        )

    def _test_drop_connection(self) -> None:
        """Test seam: sever the link as if the network died right now."""
        self._enter_degraded("test-injected connection drop")

    # ------------------------------------------------------------------
    # background threads
    # ------------------------------------------------------------------
    def _receiver_main(self, stream: RecordStream, gen: int) -> None:
        try:
            while not self._closed.is_set():
                record = stream.recv()
                if record is None:
                    raise ServiceUnavailableError("server closed the connection")
                self._last_heard = monotonic()
                self._handle(record, validate_record(record, SERVER_KINDS))
        except (ServiceUnavailableError, ServiceProtocolError, OSError) as exc:
            with self._state_lock:
                stale = gen != self._gen
            if not stale and not self._closed.is_set():
                self._enter_degraded(str(exc))

    def _handle(self, record: dict, kind: str) -> None:
        if kind == "verdict" or kind == "verdicts":
            with self._pending_lock:
                pending = self._pending.pop(record["req"], None)
            if pending is not None:
                pending.resolve("ok", record["ok"])
        elif kind == "pong":
            pass  # _last_heard already refreshed
        elif kind == "ack":
            seq = record["seq"]
            with self._send_lock:
                if seq > self._acked_seq:
                    self._acked_seq = seq
                    self._replay = [r for r in self._replay if r["cseq"] > seq]
        elif kind == "quarantine":
            self._adopt_quarantine(
                record.get("site", "?"), record.get("error", ""), record.get("req")
            )
        elif kind == "backpressure":
            exc = ServiceBackpressureError(self.session_id, record["limit"])
            req = record.get("req")
            if req is not None:
                with self._pending_lock:
                    pending = self._pending.pop(req, None)
                if pending is not None:
                    pending.resolve("exc", exc)
            else:
                # refusal of a fire-and-forget event: surface at the next
                # synchronous call (the event stays in the replay buffer,
                # so a later reconcile re-delivers it)
                self._backpressure = exc
        elif kind == "error":
            req = record.get("req")
            if req is not None:
                with self._pending_lock:
                    pending = self._pending.pop(req, None)
                if pending is not None:
                    pending.resolve("exc", ServiceProtocolError(record["message"]))
        elif kind == "welcome":
            pass  # duplicate welcome: harmless

    def _adopt_quarantine(self, site: str, error: str, req: "int | None" = None) -> None:
        """The server's policy quarantined: mirror it locally."""
        q = self._quarantine
        if q is None:
            q = PolicyQuarantinedError(self.policy.name, site, original=error or None)
            with self._quarantine_lock:
                if self._quarantine is None:
                    self._quarantine = q
                    announced = True
                else:
                    q = self._quarantine
                    announced = False
            if announced:
                self._shard().policy_faults += 1
                warnings.warn(
                    f"sidecar quarantined policy {self.policy.name!r} for session "
                    f"{self.session_id!r} (site {site}); "
                    + (
                        "failing closed"
                        if self.fail_mode == "closed"
                        else "Armus force-checks every blocking join"
                    ),
                    PolicyQuarantineWarning,
                    stacklevel=2,
                )
        if req is not None:
            with self._pending_lock:
                pending = self._pending.pop(req, None)
            if pending is not None:
                pending.resolve("exc", q)

    def _heartbeat_main(self) -> None:
        interval = max(0.05, self.liveness_timeout / 3)
        attempt = 0
        while not self._closed.wait(interval):
            if self._is_degraded:
                attempt += 1
                if self._try_connect():
                    attempt = 0
                else:
                    # deterministic backoff between reconnect attempts
                    capped = min(attempt, 16)
                    self._closed.wait(self.retry.delay(capped, site="service-reconnect"))
                continue
            if monotonic() - self._last_heard > self.liveness_timeout:
                self._enter_degraded("liveness deadline exceeded")
                continue
            with self._send_lock:
                stream = self._stream
                if stream is None:
                    continue
                try:
                    stream.send({"kind": "ping"})
                except ServiceUnavailableError as exc:
                    self._enter_degraded(f"heartbeat send failed: {exc}")

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Best-effort: nothing to do — events are sent as they happen."""

    def close(self) -> None:
        """Leave the session: bye, close the socket, stop the threads."""
        if self._closed.is_set():
            return
        self._closed.set()
        with self._send_lock:
            stream = self._stream
            if stream is not None:
                try:
                    stream.send({"kind": "bye"})
                except ServiceUnavailableError:
                    pass
        with self._state_lock:
            self._gen += 1
            stream, self._stream = self._stream, None
        if stream is not None:
            try:
                stream.sock.close()
            except OSError:
                pass
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for p in pending.values():
            p.resolve("degraded")
        self._heartbeat.join(timeout=5.0)

    def __enter__(self) -> "RemoteVerifier":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    def service_snapshot(self) -> dict:
        """Client-side service counters (tests and `top`)."""
        return {
            "session": self.session_id,
            "degraded": self._is_degraded,
            "degradations": self.degradations,
            "reconciles": self.reconciles,
            "events_replayed": self.events_replayed,
            "rechecks_sent": self.rechecks_sent,
            "rechecks_dropped": self._rechecks_dropped,
            "replay_buffer": len(self._replay),
            "acked_seq": self._acked_seq,
        }


class SessionClient:
    """A thin rid-level sidecar session for the multi-process runtime.

    Where :class:`RemoteVerifier` *is* a verifier (vertices, replay
    buffer, reconcile machinery), this client is deliberately less: the
    procs runtime already holds the whole spawn-path forest in shared
    memory, so the sidecar is an *arbiter for cross-process edges*, not
    the source of truth.  The client therefore ships plain integer rids
    (the shared-tree vertex ids), buffers fire-and-forget state events
    (flushed every :attr:`FLUSH_EVERY` or before any check), and answers
    synchronous checks by request id.

    Degradation is **permanent and local**: on any connect, send,
    receive, timeout or backpressure failure the client goes silent and
    every later call is a no-op — ``check``/``check_batch`` return
    ``None``, telling the caller to resolve the join against its own
    shared-memory shard, which is sound because TJ verdicts derive
    entirely from the fork tree every process can already see.  There is
    no replay buffer and no reconcile: the sidecar's copy is for
    observability and post-mortems, and a runtime that outlives its
    sidecar finishes verified all the same (the degradation is counted
    and reported).  One lock serialises the socket; concurrent task
    threads in a worker simply queue behind each other, which the
    local-shard fast path keeps rare.
    """

    #: buffered state events forcing a flush
    FLUSH_EVERY = 64

    def __init__(
        self,
        url: str,
        session_id: str,
        *,
        policy: str = "TJ-SP",
        tenant: "str | None" = None,
        fail_mode: str = "open",
        timeout: float = 5.0,
    ) -> None:
        self.url = url
        self.session_id = session_id
        self.policy_name = policy
        self.tenant = tenant
        self.fail_mode = fail_mode
        self.timeout = timeout
        self._lock = threading.Lock()
        self._stream: Optional[RecordStream] = None
        self._buffer: list[dict] = []
        self._cseq = itertools.count()
        self._req = itertools.count(1)
        self.events_sent = 0
        self.checks_sent = 0
        self.degraded = False
        self.degrade_reason: Optional[str] = None
        self.quarantined = False

    # ------------------------------------------------------------------
    def connect(self) -> bool:
        """Dial and handshake; False (and degraded) if the sidecar is gone."""
        host, port = parse_remote_url(self.url)
        try:
            sock = socket.create_connection((host, port), timeout=self.timeout)
            sock.settimeout(self.timeout)
            stream = RecordStream(sock)
            hello = {
                "kind": "hello",
                "wire": WIRE_VERSION,
                "session": self.session_id,
                "policy": self.policy_name,
                "fail_mode": self.fail_mode,
            }
            if self.tenant is not None:
                hello["tenant"] = self.tenant
            stream.send(hello)
            welcome = stream.recv()
            if welcome is None or welcome.get("kind") != "welcome":
                raise ServiceProtocolError(f"expected welcome, got {welcome!r}")
        except (OSError, ServiceError) as exc:
            self._degrade(f"connect: {exc}")
            return False
        with self._lock:
            self._stream = stream
        return True

    # ------------------------------------------------------------------
    # fire-and-forget state events (buffered)
    # ------------------------------------------------------------------
    def init(self, rid: int) -> None:
        self._buffer_event({"kind": "init", "task": rid})

    def fork(self, parent_rid: int, child_rid: int, edge: int, depth: int) -> None:
        # edge/depth are the authoritative placement (sibling index and
        # tree depth from the caller's own spawn tree).  Tenant sessions
        # from different workers race their announcements, so the server
        # must never re-derive sibling order from arrival order.
        self._buffer_event(
            {
                "kind": "fork",
                "parent": parent_rid,
                "child": child_rid,
                "edge": edge,
                "depth": depth,
            }
        )

    def join_event(self, waiter_rid: int, joinee_rid: int) -> None:
        self._buffer_event({"kind": "join", "waiter": waiter_rid, "joinee": joinee_rid})

    def _buffer_event(self, record: dict) -> None:
        if self.degraded:
            return
        with self._lock:
            record["cseq"] = next(self._cseq)
            self._buffer.append(record)
            if len(self._buffer) >= self.FLUSH_EVERY:
                self._flush_locked()

    def flush(self) -> None:
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        if self.degraded or self._stream is None:
            self._buffer.clear()
            return
        try:
            for record in self._buffer:
                self._stream.send(record)
            self.events_sent += len(self._buffer)
            self._buffer.clear()
        except (OSError, ServiceError) as exc:
            self._degrade_locked(f"flush: {exc}")

    # ------------------------------------------------------------------
    # synchronous checks
    # ------------------------------------------------------------------
    def check(self, waiter_rid: int, joinee_rid: int) -> "bool | None":
        """One join-permit query; None = degraded, resolve locally."""
        record = {"kind": "check", "waiter": waiter_rid, "joinee": joinee_rid}
        _stamp_trace(record)
        reply = self._roundtrip(record, "verdict")
        return None if reply is None else bool(reply["ok"])

    def check_batch(self, waiter_rid: int, joinee_rids: "list[int]") -> "list[bool] | None":
        """Batch join-permit query (the PR 7 wire vocabulary, reused)."""
        record = {"kind": "check_batch", "waiter": waiter_rid, "joinees": list(joinee_rids)}
        _stamp_trace(record)
        reply = self._roundtrip(record, "verdicts")
        return None if reply is None else [bool(ok) for ok in reply["ok"]]

    def stats(self) -> "dict | None":
        """The server's full stats snapshot; None = degraded.

        Rides the same request-id round-trip as checks — the server
        answers from the connection reader, ahead of any queued
        verification stream.
        """
        reply = self._roundtrip({"kind": "stats"}, "stats_reply")
        return None if reply is None else reply["stats"]

    def ping(self) -> None:
        """Fire-and-forget keepalive (the pong is drained later).

        The parent's client can sit idle for an entire run between
        escalations; without an occasional ping the server's liveness
        sweeper reaps the connection as dead and the final stats pull
        finds a closed stream.
        """
        if self.degraded:
            return
        with self._lock:
            stream = self._stream
            if stream is None:
                return
            try:
                stream.send({"kind": "ping"})
            except (OSError, ServiceError) as exc:
                self._degrade_locked(f"ping: {exc}")

    def _roundtrip(self, record: dict, want: str) -> "dict | None":
        if self.degraded:
            return None
        with self._lock:
            stream = self._stream
            if stream is None:
                return None
            req = next(self._req)
            record["req"] = req
            self._flush_locked()
            if self.degraded:
                return None
            try:
                stream.send(record)
                self.checks_sent += 1
                while True:
                    reply = stream.recv()
                    if reply is None:
                        raise ServiceUnavailableError("sidecar closed the stream")
                    kind = reply.get("kind")
                    if kind == want and reply.get("req") == req:
                        return reply
                    if kind == "quarantine":
                        # Tenant policy quarantined server-side; the
                        # shared-memory shard remains the (sound) local
                        # authority, so treat it like degradation for
                        # this and future checks.
                        self.quarantined = True
                        if reply.get("req") == req:
                            self._degrade_locked("server policy quarantined")
                            return None
                    elif kind == "backpressure":
                        self._degrade_locked("server backpressure")
                        return None
                    elif kind == "error":
                        raise ServiceProtocolError(str(reply.get("message")))
                    # acks/pongs and stale replies: keep reading
            except (OSError, ServiceError) as exc:
                self._degrade_locked(f"check: {exc}")
                return None

    # ------------------------------------------------------------------
    def _degrade(self, reason: str) -> None:
        with self._lock:
            self._degrade_locked(reason)

    def _degrade_locked(self, reason: str) -> None:
        if self.degraded:
            return
        self.degraded = True
        self.degrade_reason = reason
        self._buffer.clear()
        stream, self._stream = self._stream, None
        if stream is not None:
            try:
                stream.sock.close()
            except OSError:
                pass

    def close(self) -> None:
        """Flush what we can, say goodbye, drop the socket."""
        with self._lock:
            stream = self._stream
            if stream is None:
                return
            self._flush_locked()
            try:
                if not self.degraded:
                    stream.send({"kind": "bye"})
            except (OSError, ServiceError):
                pass
            self._stream = None
            try:
                stream.sock.close()
            except OSError:
                pass

    def snapshot(self) -> dict:
        return {
            "session": self.session_id,
            "tenant": self.tenant,
            "events_sent": self.events_sent,
            "checks_sent": self.checks_sent,
            "degraded": self.degraded,
            "degrade_reason": self.degrade_reason,
            "quarantined": self.quarantined,
        }

    def __enter__(self) -> "SessionClient":
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
