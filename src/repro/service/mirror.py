"""An authoritative spawn-path mirror for tenant verification.

A tenant's sessions stream fork events from *many* worker processes
concurrently, and the sidecar applies them in arrival order — which is
not fork order.  If the tenant's policy assigned sibling edge indices
itself (as every registered policy does), two workers racing their
announcements could mirror ``fork(p, a); fork(p, b)`` as ``b`` before
``a`` and silently flip the sibling verdict ``a < b``.  The multi-
process runtime already owns the true tree (the shared-memory forest),
so its fork records carry the **authoritative placement** — ``edge`` and
``depth`` straight from the shared rows — and this policy applies them
verbatim instead of re-deriving anything.  Arrival order then cannot
matter: a row is identical no matter which session lands first.

Vertices are the client rids themselves (plain ints).  The placement
travels through :meth:`stage`: the session stages ``(rid, parent, edge,
depth)`` under the tenant lock, then drives the ordinary
:class:`~repro.core.verifier.Verifier` protocol, whose ``add_child``
call consumes the staged row — so stats, quarantine, journaling and
fail modes all work unchanged on top.

The verdict rule is TJ-SP's Algorithm 3 ``Less``; a tenant therefore
only accepts TJ-SP-family policies (the server enforces this), which is
no restriction in practice — the procs runtime that uses tenants is
TJ-SP by construction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.policy import JoinPolicy

__all__ = ["MirroredSpawnPaths"]


class MirroredSpawnPaths(JoinPolicy):
    """TJ-SP over client-authoritative ``(parent, edge, depth)`` rows."""

    backend = "mirror"
    stable_permits = True

    def __init__(self, name: str = "TJ-SP") -> None:
        #: reported policy name (what the tenant's clients asked for)
        self.name = name
        #: rid -> (parent rid | -1, edge, depth)
        self.rows: dict[int, tuple[int, int, int]] = {}
        self._staged: "tuple[int, int, int, int] | None" = None
        self._last_ok: dict[int, int] = {}

    # ------------------------------------------------------------------
    def stage(self, rid: int, parent: int, edge: int, depth: int) -> None:
        """Declare the next vertex's authoritative placement.

        Called by the session (tenant lock held) immediately before the
        verifier's ``on_init``/``on_fork`` drives :meth:`add_child`.
        """
        self._staged = (rid, parent, edge, depth)

    def add_child(self, parent: Optional[int]) -> int:
        staged = self._staged
        if staged is None:
            raise ValueError(
                "mirrored policy needs a staged placement; tenant fork records "
                "must carry edge/depth"
            )
        self._staged = None
        rid, parent_rid, edge, depth = staged
        self.rows[rid] = (parent_rid, edge, depth)
        return rid

    def placement(self, vid: int) -> tuple[int, int, int]:
        """``(parent, edge, depth)`` — what a sidecar announcement needs."""
        return self.rows[vid]

    # ------------------------------------------------------------------
    def _less(self, a: int, b: int) -> bool:
        """Algorithm 3 ``Less`` over the mirrored rows."""
        if a == b:
            return False
        rows = self.rows
        pa, ea_, da = rows[a]
        pb, eb_, db = rows[b]
        e1 = e2 = -1
        while db > da:
            e2 = eb_
            b = pb
            pb, eb_, db = rows[b]
        while da > db:
            e1 = ea_
            a = pa
            pa, ea_, da = rows[a]
        while a != b:
            e1 = ea_
            e2 = eb_
            a, b = pa, pb
            pa, ea_, da = rows[a]
            pb, eb_, db = rows[b]
        if e1 < 0:
            return e2 >= 0  # anc+: a proper ancestor is permitted
        if e2 < 0:
            return False  # dec*: a descendant never is
        return e1 > e2  # sib: the later sibling is smaller

    def permits(self, joiner: int, joinee: int) -> bool:
        if self._last_ok.get(joiner) == joinee:
            return True
        if self._less(joiner, joinee):
            self._last_ok[joiner] = joinee
            return True
        return False

    def permits_many(self, joiner: int, joinees: Sequence[int]) -> list[bool]:
        permits = self.permits
        return [permits(joiner, joinee) for joinee in joinees]

    def space_units(self) -> int:
        return 4 * len(self.rows) + len(self._last_ok)
