"""Sidecar subprocess management for harnesses that need a *real* kill -9.

The in-process :class:`~repro.service.server.VerificationServer` covers
most tests, but the degradation/recovery story is only honest against a
separate OS process that can die by ``SIGKILL`` mid-write.  This module
spawns ``python -m repro.service.server`` and speaks its one-line
startup contract (``LISTENING <host> <port>``), so the chaos runner,
the subprocess test harness, and the CI smoke job all share one way of
bringing a sidecar up, killing it, and bringing it back on the same
port with the same journal.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
from typing import Optional

__all__ = ["SidecarProcess"]


class SidecarProcess:
    """One sidecar child process with the startup-line handshake.

    Parameters mirror ``repro.service.server.main``; ``port=0`` lets the
    first incarnation pick a free port, which :meth:`restart` then pins
    so resuming clients find the reborn server at the same address.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        journal_path: "str | None" = None,
        inbox_limit: "int | None" = None,
        ack_every: "int | None" = None,
        liveness_timeout: "float | None" = None,
        startup_timeout: float = 20.0,
        obs: bool = False,
        trace_id: "str | None" = None,
    ) -> None:
        self.host = host
        self.port = port
        self.journal_path = journal_path
        self.inbox_limit = inbox_limit
        self.ack_every = ack_every
        self.liveness_timeout = liveness_timeout
        self.startup_timeout = startup_timeout
        self.obs = obs
        self.trace_id = trace_id
        self.proc: Optional[subprocess.Popen] = None
        self.start()

    # ------------------------------------------------------------------
    def _command(self) -> list[str]:
        cmd = [
            sys.executable,
            "-m",
            "repro.service.server",
            "--host",
            self.host,
            "--port",
            str(self.port),
        ]
        if self.journal_path is not None:
            cmd += ["--journal", self.journal_path]
        if self.inbox_limit is not None:
            cmd += ["--inbox-limit", str(self.inbox_limit)]
        if self.ack_every is not None:
            cmd += ["--ack-every", str(self.ack_every)]
        if self.liveness_timeout is not None:
            cmd += ["--liveness-timeout", str(self.liveness_timeout)]
        if self.obs:
            cmd += ["--obs"]
            if self.trace_id is not None:
                cmd += ["--trace-id", self.trace_id]
        return cmd

    def start(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            raise RuntimeError("sidecar already running")
        env = os.environ.copy()
        # Make `import repro` work in the child no matter how the parent
        # was launched (pytest, a script, an installed package).
        pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            self._command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
            env=env,
        )
        self._await_listening()

    def _await_listening(self) -> None:
        """Block until the child prints LISTENING (or dies / times out)."""
        assert self.proc is not None and self.proc.stdout is not None
        line_box: list = []

        def read_line() -> None:
            line_box.append(self.proc.stdout.readline())

        reader = threading.Thread(target=read_line, daemon=True)
        reader.start()
        reader.join(self.startup_timeout)
        if reader.is_alive() or not line_box or not line_box[0]:
            self.kill9()
            raise RuntimeError(
                f"sidecar did not print LISTENING within {self.startup_timeout}s"
            )
        parts = line_box[0].split()
        if len(parts) != 3 or parts[0] != "LISTENING":
            self.kill9()
            raise RuntimeError(f"unexpected sidecar startup line: {line_box[0]!r}")
        self.host, self.port = parts[1], int(parts[2])

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self.host, int(self.port)

    @property
    def url(self) -> str:
        return f"remote://{self.host}:{self.port}"

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def kill9(self) -> None:
        """SIGKILL — the crash the recovery machinery exists for."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)

    def restart(self) -> None:
        """Bring a (killed) sidecar back on the *same* port and journal."""
        if self.alive():
            raise RuntimeError("sidecar still alive; kill it before restart")
        self.start()

    def stop(self) -> None:
        """Graceful-ish teardown for harness cleanup paths."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                self.kill9()

    def __enter__(self) -> "SidecarProcess":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
