"""Length-prefixed binary wire protocol for the verification sidecar.

The framing is deliberately minimal: every message is one journal-style
record — a flat JSON object with a ``"kind"`` field — encoded UTF-8 and
prefixed with a 4-byte big-endian length.  The record vocabulary is
*derived from* the PR 4 trace-journal format (:mod:`repro.tools.journal`):
the state-bearing kinds (``init``/``fork``/``join``/``verdict``/
``quarantine``) carry the same field names (``parent``/``child``,
``waiter``/``joinee``, ``ok``), so a server journal written from this
stream is readable by the exact same torn-tail-tolerant
:func:`~repro.tools.journal.read_journal`, and the session-rebuild
replay is the journal replay of PR 4 with a ``session`` column added.

Vertices travel as client-assigned dense integer ids (``rid``), exactly
like the flat TJ-SP core's int handles — neither endpoint ever
serialises policy node objects.

Client → server kinds
---------------------
``hello``  open or resume a session (``session``, ``policy``,
           ``fail_mode``, ``resume``, ``wire``);
``init``   root vertex (``task`` rid, ``cseq``);
``fork``   child vertex (``parent`` rid or null, ``child`` rid, ``cseq``);
``join``   a completed join — the KJ-learn event (``waiter``, ``joinee``,
           ``cseq``);
``check``  synchronous join-permit query (``waiter``, ``joinee``, ``req``);
``check_batch``  one waiter against many joinees (``waiter``,
           ``joinees``, ``req``);
``recheck``  fire-and-forget re-derivation of a verdict the client
           answered locally while degraded (reconcile replay; counted
           server-side, no reply);
``stats``  introspection query (``req``) — the server answers with its
           full stats snapshot;
``ping``   heartbeat;
``bye``    graceful close.

``check``/``check_batch`` may additionally carry an optional trace
context (``trace`` id string + ``span`` id int) captured at the
client's join site; the server parents its ``join_check`` span under it
so cross-process traces stitch.  The fields are optional and unknown
fields are ignored, so they are compatible in both directions; a peer
too old to know the ``stats`` kind itself answers with an ``error``
record (the vocabulary check below), and the ``hello`` wire-version
gate rejects genuinely incompatible peers before any of this.

Server → client kinds
---------------------
``welcome``       session granted (``session``, ``last_seq``,
                  ``quarantined``);
``verdict``       reply to ``check`` (``req``, ``ok``);
``verdicts``      reply to ``check_batch`` (``req``, ``ok`` list);
``stats_reply``   reply to ``stats`` (``req``, ``stats`` object);
``pong``          heartbeat reply;
``ack``           journal-durable watermark (``seq``): the client may
                  drop replay-buffer entries at or below it;
``quarantine``    the session's policy was quarantined (``policy``,
                  ``site``, ``error``);
``backpressure``  the session inbox is full (``limit``);
``error``         protocol-level failure (``message``).

Malformed traffic raises :class:`~repro.errors.ServiceProtocolError`;
plain socket failures raise :class:`~repro.errors.ServiceUnavailableError`
so callers can tell "the peer spoke garbage" from "the peer is gone".
"""

from __future__ import annotations

import json
import socket
import struct

from ..errors import ServiceProtocolError, ServiceUnavailableError

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME",
    "CLIENT_KINDS",
    "SERVER_KINDS",
    "encode_frame",
    "FrameDecoder",
    "RecordStream",
    "send_record",
    "validate_record",
    "REQUIRED_FIELDS",
]

#: protocol revision; ``hello`` carries it so mismatched peers fail fast
WIRE_VERSION = 1

#: hard bound on one frame's payload — a real record is a few hundred
#: bytes (a large ``check_batch`` some tens of KB); anything bigger is a
#: corrupt length prefix or a hostile peer, not a workload
MAX_FRAME = 1 << 20

_LEN = struct.Struct(">I")

CLIENT_KINDS = frozenset(
    {
        "hello",
        "init",
        "fork",
        "join",
        "check",
        "check_batch",
        "recheck",
        "stats",
        "ping",
        "bye",
    }
)
SERVER_KINDS = frozenset(
    {
        "welcome",
        "verdict",
        "verdicts",
        "stats_reply",
        "pong",
        "ack",
        "quarantine",
        "backpressure",
        "error",
    }
)

#: required fields per record kind (beyond ``kind`` itself); validation
#: is shared by both endpoints so a field rename cannot drift apart
REQUIRED_FIELDS: dict[str, tuple[str, ...]] = {
    "hello": ("session", "policy", "fail_mode", "wire"),
    "init": ("task", "cseq"),
    "fork": ("parent", "child", "cseq"),
    "join": ("waiter", "joinee", "cseq"),
    "check": ("waiter", "joinee", "req"),
    "check_batch": ("waiter", "joinees", "req"),
    "recheck": ("waiter", "joinee"),
    "stats": ("req",),
    "ping": (),
    "bye": (),
    "welcome": ("session", "last_seq"),
    "verdict": ("req", "ok"),
    "verdicts": ("req", "ok"),
    "stats_reply": ("req", "stats"),
    "pong": (),
    "ack": ("seq",),
    "quarantine": ("policy", "site", "error"),
    "backpressure": ("limit",),
    "error": ("message",),
}


def validate_record(record: dict, allowed: frozenset) -> str:
    """Check *record* against the vocabulary; returns its kind.

    Raises :class:`ServiceProtocolError` for an unknown kind or a
    missing required field — the caller decides whether that tears down
    the connection (server) or degrades (client).
    """
    kind = record.get("kind")
    if kind not in allowed:
        raise ServiceProtocolError(f"unexpected record kind {kind!r}")
    missing = [f for f in REQUIRED_FIELDS[kind] if f not in record]
    if missing:
        raise ServiceProtocolError(f"{kind!r} record missing fields {missing}")
    return kind


def encode_frame(record: dict) -> bytes:
    """One record → length prefix + UTF-8 JSON payload."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise ServiceProtocolError(
            f"record of {len(payload)} bytes exceeds MAX_FRAME ({MAX_FRAME})"
        )
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder: feed byte chunks, harvest records.

    TCP delivers arbitrary chunk boundaries; the decoder buffers across
    them and yields each record exactly once, in stream order.  A
    length prefix beyond :data:`MAX_FRAME` or a non-JSON payload raises
    :class:`ServiceProtocolError` — the stream is unrecoverable after
    either (framing is lost), so callers must drop the connection.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[dict]:
        """Append *data*; return every record completed by it."""
        self._buf += data
        records: list[dict] = []
        buf = self._buf
        while True:
            if len(buf) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(buf)
            if length > MAX_FRAME:
                raise ServiceProtocolError(
                    f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})"
                )
            end = _LEN.size + length
            if len(buf) < end:
                break
            payload = bytes(buf[_LEN.size : end])
            del buf[:end]
            try:
                record = json.loads(payload)
            except ValueError as exc:
                raise ServiceProtocolError(
                    f"unparsable frame payload: {payload[:80]!r}"
                ) from exc
            if not isinstance(record, dict):
                raise ServiceProtocolError(
                    f"frame payload is not a record object: {payload[:80]!r}"
                )
            records.append(record)
        return records

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of a frame (bounded by MAX_FRAME)."""
        return len(self._buf)


def send_record(sock: socket.socket, record: dict) -> None:
    """Send one framed record; socket failures become ServiceUnavailableError."""
    try:
        sock.sendall(encode_frame(record))
    except OSError as exc:
        raise ServiceUnavailableError(f"send failed: {exc}") from exc


class RecordStream:
    """A socket plus its decoder: blocking per-record reads, framed writes.

    One stream per connection per direction of ownership; reads are not
    thread-safe (one reader thread per connection, the design both
    endpoints follow), writes take no lock here either — callers
    serialise their own send path.
    """

    __slots__ = ("sock", "_decoder", "_ready")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._decoder = FrameDecoder()
        self._ready: list[dict] = []

    def send(self, record: dict) -> None:
        send_record(self.sock, record)

    def recv(self) -> "dict | None":
        """Block for the next record; None on orderly EOF.

        Records completed beyond the first by one TCP chunk are queued
        and returned by subsequent calls in stream order.
        """
        while not self._ready:
            try:
                chunk = self.sock.recv(65536)
            except OSError as exc:
                raise ServiceUnavailableError(f"recv failed: {exc}") from exc
            if not chunk:
                return None
            self._ready.extend(self._decoder.feed(chunk))
        return self._ready.pop(0)
