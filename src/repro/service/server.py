"""The verification sidecar: a multi-tenant TJ verifier behind a socket.

One :class:`VerificationServer` owns a listening socket, a set of
:class:`~repro.service.session.Session` objects (one per tenant, each
with its own policy instance and worker thread), and an optional
:class:`ServiceJournal`.  Connections are thin: a reader thread per
socket validates frames and routes them to the session named in the
``hello`` handshake.  Because sessions outlive connections, a client
whose TCP link died (or that outlived a server restart, when a journal
is configured) resumes by re-sending ``hello`` for the same session id
and replaying everything past the ``last_seq`` the ``welcome`` quotes.

Crash consistency
-----------------
The server journal is the same append-only JSONL format as the PR 4
trace journal — dense global ``seq``, readable by
:func:`repro.tools.journal.read_journal` with its torn-tail tolerance —
with a ``session`` column added to every record.  On restart the server
*compacts*: it reads the old journal, rebuilds each session by replaying
records through :meth:`Session.apply` (the exact code path live traffic
takes, so recovery cannot drift from normal operation) while writing a
fresh journal at ``path + ".compact"``, then atomically ``os.replace``\\ s
it over the old file and keeps appending.  Compaction is what preserves
the reader's seq-density invariant across restarts — naive re-appending
would restart ``seq`` at the torn tail and corrupt the file for every
later reader.

Liveness
--------
A sweeper thread closes connections that have been silent longer than
``liveness_timeout`` (clients heartbeat with ``ping`` well inside it).
Closing a connection never destroys its session — the tenant's verifier
state waits for the resume.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import threading
import warnings
from time import monotonic
from typing import Optional

from ..errors import JournalCorruptError, JournalError, ServiceProtocolError
from ..obs import active as _active_telemetry
from ..tools.journal import read_journal
from .session import Session, Tenant
from .wire import (
    CLIENT_KINDS,
    MAX_FRAME,
    WIRE_VERSION,
    RecordStream,
    validate_record,
)

__all__ = ["ServiceJournal", "VerificationServer", "main"]


class ServiceJournal:
    """Append-only JSONL journal of every session's verification stream.

    The record vocabulary is the trace-journal's (``start``/``init``/
    ``fork``/``join``/``verdict``/``quarantine``) with a ``session``
    field on every record and client-assigned integer rids instead of
    interned ``tN`` names.  ``seq`` is global and dense across all
    sessions — the interleaving *is* the information a post-mortem
    needs, and density is what :func:`read_journal` verifies.
    """

    def __init__(self, path: str, *, flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be at least 1")
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()
        self._seq = 0
        self._buf: list[str] = []
        self._flush_every = flush_every
        self._closed = False
        self.records_written = 0
        self.flushes = 0

    # ------------------------------------------------------------------
    def _emit(self, record: dict, critical: bool) -> None:
        with self._lock:
            if self._closed:
                raise JournalError("service journal already closed")
            record["seq"] = self._seq
            self._seq += 1
            self._buf.append(json.dumps(record, separators=(",", ":")) + "\n")
            self.records_written += 1
            if critical or len(self._buf) >= self._flush_every:
                self._flush_locked()

    def _flush_locked(self) -> None:
        if self._buf:
            self._fh.write("".join(self._buf))
            self._buf.clear()
        self._fh.flush()
        self.flushes += 1

    # ------------------------------------------------------------------
    # loggers
    # ------------------------------------------------------------------
    def log_session(
        self,
        session_id: str,
        policy: str,
        fail_mode: str,
        tenant: "str | None" = None,
    ) -> None:
        """A session came into existence; critical — resume depends on it."""
        record = {
            "kind": "start",
            "session": session_id,
            "policy": policy,
            "fail_mode": fail_mode,
            "runtime": "service",
        }
        if tenant is not None:
            record["tenant"] = tenant
        self._emit(record, True)

    def log_event(self, session_id: str, record: dict) -> None:
        """One state event (init/fork/join) exactly as it arrived."""
        entry = {"kind": record["kind"], "session": session_id, "cseq": record["cseq"]}
        # edge/depth: authoritative placement on tenant fork records —
        # recovery must not re-derive sibling order from replay order.
        for field in ("task", "parent", "child", "waiter", "joinee", "edge", "depth"):
            if field in record:
                entry[field] = record[field]
        self._emit(entry, False)

    def log_verdict(self, session_id: str, waiter: int, joinee: int, ok: bool) -> None:
        # Always critical: the verdict reply must not outrun durability.
        # A kill -9 between an answered check and its flush would make the
        # rebuilt session undercount — breaking the exact-stats contract
        # reconcile-on-reconnect promises.  (A flush is a buffered write
        # to the page cache, not an fsync; the cost is noise next to the
        # network round trip the check already paid.)
        self._emit(
            {
                "kind": "verdict",
                "session": session_id,
                "waiter": waiter,
                "joinee": joinee,
                "ok": bool(ok),
            },
            True,
        )

    def log_quarantine(self, session_id: str, policy: str, site: str, error: str) -> None:
        self._emit(
            {
                "kind": "quarantine",
                "session": session_id,
                "policy": policy,
                "site": site,
                "error": error,
            },
            True,
        )

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        return {"records_written": self.records_written, "flushes": self.flushes}

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._flush_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            self._closed = True
            self._fh.close()


def _fit_stats_reply(reply: dict) -> dict:
    """Trim a stats reply's trace tail until it fits one wire frame.

    A busy sidecar's trace ring can outgrow :data:`MAX_FRAME` once
    serialized.  The newest events matter most (the asking runtime is
    merging the run that just finished), so drop from the *oldest* end
    in halves — recording the count under ``trace["trimmed"]`` — rather
    than fail the whole reply; a truncated remote ring is exactly the
    dangling-flow-start case the trace validator already tolerates.
    """
    headroom = MAX_FRAME - 4096
    while True:
        size = len(json.dumps(reply, separators=(",", ":")).encode("utf-8"))
        if size <= headroom:
            return reply
        trace = reply["stats"].get("trace")
        events = (trace or {}).get("events")
        if not events:
            return reply  # nothing trimmable left; let the frame encoder judge
        drop = max(1, len(events) // 2)
        trace["events"] = events[drop:]
        trace["trimmed"] = int(trace.get("trimmed", 0)) + drop


class _Connection:
    """One accepted socket: its stream, its locked send path, liveness."""

    __slots__ = ("sock", "stream", "send_lock", "last_heard", "session_id", "peer")

    def __init__(self, sock: socket.socket, peer: str) -> None:
        self.sock = sock
        self.stream = RecordStream(sock)
        self.send_lock = threading.Lock()
        self.last_heard = monotonic()
        self.session_id: Optional[str] = None
        self.peer = peer

    def reply(self, record: dict) -> None:
        with self.send_lock:
            self.stream.send(record)


class VerificationServer:
    """The sidecar process's server object.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (read it back from
        :attr:`address` — the test harnesses and the CLI do).
    journal_path:
        When set, every session's stream is journalled through one
        :class:`ServiceJournal`, and :meth:`start` first *recovers*:
        live sessions are rebuilt from the journal (compacting it in the
        process) so a ``kill -9`` of the sidecar loses nothing that was
        flushed.
    inbox_limit, ack_every:
        Forwarded to every :class:`Session` (backpressure bound and
        durability-ack cadence).
    liveness_timeout:
        Seconds of silence after which a connection is presumed dead and
        closed.  Sessions survive; only the socket dies.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        journal_path: "str | None" = None,
        inbox_limit: int = 1024,
        ack_every: int = 256,
        liveness_timeout: float = 5.0,
        flush_every: int = 64,
    ) -> None:
        self.host = host
        self._requested_port = port
        self.journal_path = journal_path
        self.inbox_limit = inbox_limit
        self.ack_every = ack_every
        self.liveness_timeout = liveness_timeout
        self.flush_every = flush_every
        self.journal: Optional[ServiceJournal] = None
        self.sessions: dict[str, Session] = {}
        self.tenants: dict[str, Tenant] = {}
        self._sessions_lock = threading.Lock()
        self._conns: dict[int, _Connection] = {}
        self._conns_lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._threads: list[threading.Thread] = []
        self._stop = threading.Event()
        self._started = False
        #: recovery summary of the last start(): sessions rebuilt, records replayed
        self.recovered_sessions = 0
        self.recovered_records = 0
        self.accepted = 0
        self.liveness_closes = 0
        self.protocol_errors = 0
        self._telemetry = _active_telemetry()
        if self._telemetry is not None:
            self._telemetry.registry.add_source("service", self.metrics_snapshot)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port); valid after :meth:`start`."""
        if self._listener is None:
            raise RuntimeError("server not started")
        addr = self._listener.getsockname()
        return addr[0], addr[1]

    def start(self) -> "VerificationServer":
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        if self.journal_path is not None:
            self._recover()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(128)
        # Accept on a short timeout: closing a listening socket does not
        # wake a thread blocked in accept(), so a plain blocking accept
        # would make every stop() wait out the full thread-join timeout.
        listener.settimeout(0.25)
        self._listener = listener
        acceptor = threading.Thread(
            target=self._accept_loop, name="repro-service-accept", daemon=True
        )
        acceptor.start()
        sweeper = threading.Thread(
            target=self._sweep_loop, name="repro-service-sweep", daemon=True
        )
        sweeper.start()
        self._threads += [acceptor, sweeper]
        return self

    def stop(self) -> None:
        """Close the listener, every connection, every session, the journal."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._conns_lock:
            conns = list(self._conns.values())
        for conn in conns:
            self._drop_connection(conn)
        for thread in self._threads:
            thread.join(timeout=5.0)
        with self._sessions_lock:
            sessions = list(self.sessions.values())
        for session in sessions:
            session.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "VerificationServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    # crash recovery: rebuild sessions, compact the journal
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild sessions from the previous incarnation's journal.

        Replays through :meth:`Session.apply` — the live code path —
        into a fresh compacted journal, then atomically replaces the old
        file.  Verdict records are replayed as policy re-derivations so
        the rebuilt sessions' ``joins_checked``/``joins_rejected`` match
        what the dead server had counted (TJ verdicts are stable, so the
        re-derived answers match too).  A journal corrupted beyond the
        torn-tail tolerance is set aside (``path + ".corrupt"``) and the
        server starts empty rather than guessing at tenant state.
        """
        path = self.journal_path
        assert path is not None
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            self.journal = ServiceJournal(path, flush_every=self.flush_every)
            return
        try:
            result = read_journal(path)
        except JournalCorruptError as exc:
            corrupt = path + ".corrupt"
            os.replace(path, corrupt)
            warnings.warn(
                f"service journal {path} unreadable ({exc}); moved to {corrupt}, "
                "starting with no sessions",
                RuntimeWarning,
                stacklevel=2,
            )
            self.journal = ServiceJournal(path, flush_every=self.flush_every)
            return
        compact_path = path + ".compact"
        journal = ServiceJournal(compact_path, flush_every=self.flush_every)
        self.journal = journal
        for record in result.records:
            sid = record.get("session")
            kind = record.get("kind")
            if sid is None or kind is None:
                continue  # foreign record; compaction drops it
            if kind == "start":
                try:
                    # Routes through the tenant map, so a recovered
                    # worker-group shares one verifier again.
                    self._get_or_make_session(
                        sid,
                        record["policy"],
                        record.get("fail_mode", "open"),
                        record.get("tenant"),
                    )
                except ServiceProtocolError:
                    continue  # conflicting start records; keep the first
                continue
            session = self.sessions.get(sid)
            if session is None:
                continue  # events before any start record: nothing to attach to
            if kind in ("init", "fork", "join"):
                try:
                    session.apply(record, reply=None)
                except Exception:  # noqa: BLE001 - one bad record must not kill recovery
                    continue
            elif kind == "verdict":
                # Re-derive instead of trusting the stored bit: same
                # stats, and the compact journal gets a fresh verdict
                # record written by the session itself.
                try:
                    session.apply(
                        {
                            "kind": "recheck",
                            "waiter": record["waiter"],
                            "joinee": record["joinee"],
                        },
                        reply=None,
                    )
                except Exception:  # noqa: BLE001 - e.g. rids whose fork never flushed
                    continue
            elif kind == "quarantine":
                # The bug may not re-trip on replay (the policy state
                # that broke is gone); carry the diagnosis forward so
                # the post-mortem record survives compaction.
                journal.log_quarantine(
                    sid, record.get("policy", "?"), record.get("site", "?"),
                    record.get("error", ""),
                )
                session._quarantine_announced = True
            self.recovered_records += 1
        self.recovered_sessions = len(self.sessions)
        journal.flush()
        os.replace(compact_path, path)
        journal.path = path

    # ------------------------------------------------------------------
    # accepting and serving connections
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        assert listener is not None
        while not self._stop.is_set():
            try:
                sock, addr = listener.accept()
            except TimeoutError:
                continue  # periodic stop-flag check
            except OSError:
                return  # listener closed by stop()
            self.accepted += 1
            conn = _Connection(sock, f"{addr[0]}:{addr[1]}")
            with self._conns_lock:
                self._conns[id(conn)] = conn
            reader = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"repro-service-conn-{self.accepted}",
                daemon=True,
            )
            reader.start()

    def _drop_connection(self, conn: _Connection) -> None:
        with self._conns_lock:
            self._conns.pop(id(conn), None)
        try:
            conn.sock.close()
        except OSError:
            pass

    def _serve_connection(self, conn: _Connection) -> None:
        try:
            session = self._handshake(conn)
            if session is None:
                return
            while not self._stop.is_set():
                record = conn.stream.recv()
                if record is None:
                    return  # orderly EOF
                conn.last_heard = monotonic()
                kind = validate_record(record, CLIENT_KINDS)
                if kind == "ping":
                    conn.reply({"kind": "pong"})
                elif kind == "stats":
                    # Introspection rides the connection, not the session
                    # inbox: `repro top --live` must see a snapshot even
                    # when the session's verification stream is backed up.
                    payload = self.snapshot()
                    tel = self._telemetry
                    if tel is not None and tel.tracer is not None:
                        # Ship the trace ring too, so the asking runtime
                        # can fold the sidecar's join_check track into
                        # its merged distributed trace.
                        payload["trace"] = tel.tracer.export_state(label="sidecar")
                        payload["metrics"] = tel.snapshot()
                    conn.reply(
                        _fit_stats_reply(
                            {
                                "kind": "stats_reply",
                                "req": record["req"],
                                "stats": payload,
                            }
                        )
                    )
                elif kind == "bye":
                    return
                elif kind == "hello":
                    raise ServiceProtocolError("duplicate hello on an open session")
                else:
                    session.submit(record, conn.reply)
        except ServiceProtocolError as exc:
            self.protocol_errors += 1
            try:
                conn.reply({"kind": "error", "message": str(exc)})
            except Exception:  # noqa: BLE001 - peer already gone
                pass
        except Exception:  # noqa: BLE001 - socket death in any form
            pass
        finally:
            self._drop_connection(conn)

    def _handshake(self, conn: _Connection) -> Optional[Session]:
        record = conn.stream.recv()
        if record is None:
            return None
        conn.last_heard = monotonic()
        kind = validate_record(record, CLIENT_KINDS)
        if kind != "hello":
            raise ServiceProtocolError(f"expected hello, got {kind!r}")
        if record["wire"] != WIRE_VERSION:
            raise ServiceProtocolError(
                f"wire version mismatch: client {record['wire']}, server {WIRE_VERSION}"
            )
        sid = record["session"]
        with self._sessions_lock:
            session = self._get_or_make_session(
                sid, record["policy"], record["fail_mode"], record.get("tenant")
            )
        conn.session_id = sid
        conn.reply(
            {
                "kind": "welcome",
                "session": sid,
                "last_seq": session.applied_seq,
                "quarantined": session.verifier.quarantined,
                "fail_mode": session.fail_mode,
                "journal": self.journal is not None,
            }
        )
        return session

    def _get_or_make_session(
        self,
        sid: str,
        policy: str,
        fail_mode: str,
        tenant_name: "str | None",
    ) -> Session:
        """Find or create *sid*, attaching it to its tenant if named.

        Caller holds ``_sessions_lock``.  Sessions under one tenant
        share a verifier, so every member must agree on the policy —
        a mismatched hello is refused just like a mismatched resume.
        """
        session = self.sessions.get(sid)
        if session is not None:
            if session.policy_name != policy:
                raise ServiceProtocolError(
                    f"session {sid!r} exists with policy "
                    f"{session.policy_name!r}, not {policy!r}"
                )
            current = session.tenant.name if session.tenant is not None else None
            if current != tenant_name:
                raise ServiceProtocolError(
                    f"session {sid!r} exists under tenant {current!r}, not {tenant_name!r}"
                )
            return session
        tenant = None
        if tenant_name is not None:
            tenant = self.tenants.get(tenant_name)
            if tenant is None:
                tenant = Tenant(tenant_name, policy, fail_mode)
                self.tenants[tenant_name] = tenant
            elif tenant.policy_name != policy:
                raise ServiceProtocolError(
                    f"tenant {tenant_name!r} verifies policy "
                    f"{tenant.policy_name!r}, not {policy!r}"
                )
        session = Session(
            sid,
            policy,
            fail_mode,
            journal=self.journal,
            inbox_limit=self.inbox_limit,
            ack_every=self.ack_every,
            telemetry=self._telemetry,
            tenant=tenant,
        )
        self.sessions[sid] = session
        if self.journal is not None:
            self.journal.log_session(
                sid, session.policy_name, session.fail_mode, tenant=tenant_name
            )
        return session

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def _sweep_loop(self) -> None:
        interval = max(0.05, self.liveness_timeout / 4)
        while not self._stop.wait(interval):
            deadline = monotonic() - self.liveness_timeout
            with self._conns_lock:
                stale = [c for c in self._conns.values() if c.last_heard < deadline]
            for conn in stale:
                self.liveness_closes += 1
                self._drop_connection(conn)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def session(self, session_id: str) -> Session:
        with self._sessions_lock:
            return self.sessions[session_id]

    def metrics_snapshot(self) -> dict:
        with self._sessions_lock:
            n_sessions = len(self.sessions)
        with self._conns_lock:
            n_conns = len(self._conns)
        return {
            "sessions": n_sessions,
            "connections": n_conns,
            "accepted": self.accepted,
            "liveness_closes": self.liveness_closes,
            "protocol_errors": self.protocol_errors,
            "recovered_sessions": self.recovered_sessions,
            "recovered_records": self.recovered_records,
        }

    def snapshot(self) -> dict:
        """Server counters plus every session's snapshot (tests, `serve -v`)."""
        with self._sessions_lock:
            sessions = {sid: s.snapshot() for sid, s in self.sessions.items()}
        state = self.metrics_snapshot()
        state["per_session"] = sessions
        return state


# ----------------------------------------------------------------------
# process entry point: `python -m repro.service.server` / `repro serve`
# ----------------------------------------------------------------------
def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.server", description="run the verification sidecar"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 picks a free port")
    parser.add_argument("--journal", default=None, help="server journal path (enables recovery)")
    parser.add_argument("--inbox-limit", type=int, default=1024)
    parser.add_argument("--ack-every", type=int, default=256)
    parser.add_argument("--liveness-timeout", type=float, default=5.0)
    parser.add_argument(
        "--obs",
        action="store_true",
        help="enable telemetry in the server (metrics + join_check tracing)",
    )
    parser.add_argument(
        "--trace-id",
        default=None,
        help="join an existing distributed trace instead of minting one",
    )
    args = parser.parse_args(argv)
    if args.obs:
        from .. import obs as _obs

        # Enabled before construction so the server and its sessions
        # capture the session; the trace id ties join_check spans into
        # the launching runtime's distributed trace.
        _obs.enable(tracing=True, trace_id=args.trace_id)
    server = VerificationServer(
        args.host,
        args.port,
        journal_path=args.journal,
        inbox_limit=args.inbox_limit,
        ack_every=args.ack_every,
        liveness_timeout=args.liveness_timeout,
    )
    server.start()
    host, port = server.address

    # SIGTERM must run the clean stop (drain sessions, flush + close the
    # journal) — harness teardown relies on it; only SIGKILL loses state.
    def _on_sigterm(signum, frame):  # pragma: no cover - signal plumbing
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _on_sigterm)
    # The harness contract: one parseable line, flushed, then serve forever.
    print(f"LISTENING {host} {port}", flush=True)
    if server.recovered_sessions:
        print(
            f"RECOVERED {server.recovered_sessions} sessions "
            f"({server.recovered_records} records)",
            flush=True,
        )
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
