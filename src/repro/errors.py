"""Exception hierarchy for the Transitive Joins reproduction.

The paper's verifier (Algorithm 1) *faults* on a join that the policy does
not permit.  When the verifier is combined with the Armus cycle-detection
fallback (Section 6), a fault is first filtered for precision: joins that
are merely policy false positives proceed, while joins that would truly
deadlock raise :class:`DeadlockAvoidedError` in the offending task, giving
the program a chance to recover (the central selling point of *avoidance*
over *detection*, Section 7.1).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TraceError",
    "InvalidActionError",
    "PolicyViolationError",
    "PolicyQuarantinedError",
    "PolicyQuarantineWarning",
    "DeadlockError",
    "DeadlockAvoidedError",
    "DeadlockDetectedError",
    "JoinTimeoutError",
    "JournalError",
    "JournalCorruptError",
    "ServiceError",
    "ServiceProtocolError",
    "ServiceUnavailableError",
    "ServiceBackpressureError",
    "ServiceDegradedWarning",
    "TaskCancelledError",
    "RuntimeStateError",
    "TaskFailedError",
    "InjectedFaultError",
    "UnjoinedTaskWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TraceError(ReproError):
    """A trace violates the structural valid-* rules of Definition 3.2."""


class InvalidActionError(TraceError):
    """An action references tasks in a way the valid-* rules forbid.

    Examples: a ``fork`` whose child already exists, an action before
    ``init``, or a second ``init``.
    """


class PolicyViolationError(ReproError):
    """A join was attempted that the active policy does not permit.

    Corresponds to the ``fault`` in Algorithm 1.  Carries the pair of tasks
    so callers (and the Armus fallback) can reason about the candidate edge.
    """

    def __init__(self, policy: str, joiner: object, joinee: object, message: str | None = None):
        self.policy = policy
        self.joiner = joiner
        self.joinee = joinee
        super().__init__(
            message
            or f"{policy}: task {joiner!r} is not permitted to join on task {joinee!r}"
        )

    def __reduce__(self):
        # joiner/joinee may be live task handles or policy vertices;
        # cross the process boundary by name (and keep the message,
        # which the default reduce would misparse as ``policy``).
        return (
            type(self),
            (self.policy, _picklable_ref(self.joiner), _picklable_ref(self.joinee), str(self)),
        )


class PolicyQuarantinedError(ReproError):
    """A policy raised an *internal* error and was taken out of service.

    Distinct from :class:`PolicyViolationError` (a verdict): this means
    the policy implementation itself misbehaved — a bug, not a fault.
    Under ``fail_mode="open"`` the verifier degrades to Armus-only cycle
    detection and this error is only *recorded* (plus a
    :class:`PolicyQuarantineWarning`); under ``fail_mode="closed"`` it
    is raised on the failing call and deterministically on every policy
    call thereafter.  ``original`` carries the formatted traceback of
    the triggering exception, so a post-mortem (or a journal replay in
    another process) still sees where the policy broke.
    """

    def __init__(
        self,
        policy: str,
        site: str,
        original: str | None = None,
        message: str | None = None,
    ):
        self.policy = policy
        self.site = site
        self.original = original
        super().__init__(
            message
            or f"policy {policy!r} quarantined after an internal error in {site}()"
        )

    def __reduce__(self):
        # The default reduce would re-call __init__ with args=(message,),
        # scrambling the fields; rebuild from the real constructor
        # arguments instead (the traceback travels as a plain string).
        return (type(self), (self.policy, self.site, self.original, str(self)))


class PolicyQuarantineWarning(RuntimeWarning):
    """A policy was quarantined; the run degraded to Armus-only checking."""


def _picklable_ref(obj: object) -> object:
    """A task handle / vertex reduced to something that pickles.

    Primitives pass through; anything live (a TaskHandle, a policy
    vertex object) crosses the boundary by name or repr — the receiving
    process could not resolve the live object anyway.
    """
    if isinstance(obj, (str, int, float, bool, type(None))):
        return obj
    return getattr(obj, "name", None) or repr(obj)


def _picklable_cycle(cycle: tuple | None) -> tuple | None:
    """Cycle members reduced to their names (task handles don't pickle)."""
    if cycle is None:
        return None
    return tuple(_picklable_ref(m) for m in cycle)


class DeadlockError(ReproError):
    """Base class for both flavours of deadlock diagnosis."""

    def __init__(self, cycle: tuple | None = None, message: str | None = None):
        self.cycle = tuple(cycle) if cycle is not None else None
        if message is None:
            if self.cycle:
                message = "deadlock cycle: " + " -> ".join(repr(t) for t in self.cycle)
            else:
                message = "deadlock"
        super().__init__(message)

    def __reduce__(self):
        # Cycle members are live TaskHandles (unpicklable, and pinned to
        # one process anyway); cross the boundary by name.  Without this
        # the default reduce would also misparse args=(message,) as the
        # ``cycle`` argument.
        return (type(self), (_picklable_cycle(self.cycle), str(self)))


class DeadlockAvoidedError(DeadlockError):
    """Raised *before* blocking: the attempted join would close a cycle.

    This is the recoverable exception delivered to the program by the
    avoidance machinery (policy verifier + Armus filter).
    """


class DeadlockDetectedError(DeadlockError):
    """Raised when the runtime *detects* an already-formed deadlock.

    Two sources deliver it: the cooperative scheduler, when no task can
    make progress, and the :class:`~repro.runtime.supervisor.StallWatchdog`
    on the blocking runtimes, which diagnoses a cycle of blocked joins and
    raises this in every blocked task instead of letting them hang.  This
    is *detection* (the deadlock already happened), as opposed to the
    avoidance exceptions above — but it is still recoverable: the blocked
    tasks receive it as an ordinary exception, with the cycle attached.
    """


class JoinTimeoutError(ReproError, TimeoutError):
    """A supervised join gave up waiting before the joinee terminated.

    Carries the blocked edge (``joiner``/``joinee`` tasks, plus the
    timeout that expired) so callers can diagnose or retry.  The wait-for
    edge is unregistered before this propagates: the Armus graph and the
    supervision registry hold no trace of the abandoned join, and the
    same future may be joined again later.
    """

    def __init__(
        self,
        joiner: object,
        joinee: object,
        timeout: float | None,
        message: str | None = None,
    ):
        self.joiner = joiner
        self.joinee = joinee
        self.timeout = timeout
        super().__init__(
            message
            or f"join of {joinee!r} by {joiner!r} timed out after {timeout}s"
        )

    def __reduce__(self):
        # The blocked edge is a pair of live TaskHandles; a worker's
        # result queue must still be able to carry the timeout across.
        return (
            type(self),
            (_picklable_ref(self.joiner), _picklable_ref(self.joinee), self.timeout, str(self)),
        )


class JournalError(ReproError):
    """Base class for trace-journal failures (I/O misuse, bad records)."""


class JournalCorruptError(JournalError):
    """A journal is damaged beyond the torn-tail tolerance.

    A truncated *final* record is expected after a crash and silently
    dropped by the reader; garbage or a sequence-number gap anywhere
    before the tail means the file was corrupted (or interleaved by two
    writers) and raises this instead of guessing.
    """


class ServiceError(ReproError):
    """Base class for verification-sidecar failures (client and server)."""


class ServiceProtocolError(ServiceError):
    """A wire frame violated the length-prefixed protocol.

    Oversized frames, non-JSON payloads, unknown record kinds, or a
    record missing required fields.  Never raised for ordinary network
    failures — those are :class:`ServiceUnavailableError` territory.
    """


class ServiceUnavailableError(ServiceError):
    """The sidecar could not be reached (connect/send/receive failure).

    The :class:`~repro.service.client.RemoteVerifier` retries these with
    its :class:`~repro.runtime.retry.RetryPolicy`; once the retry budget
    is exhausted it degrades to local Armus-only checking instead of
    letting this propagate into the program.
    """


class ServiceBackpressureError(ServiceError):
    """The sidecar refused events because the session's inbox is full.

    The server bounds per-session buffering: a client producing events
    faster than its session worker can verify them gets this explicit
    error instead of growing server memory without bound.  Carries the
    session id and the inbox limit that was hit.
    """

    def __init__(self, session: str, limit: int, message: str | None = None):
        self.session = session
        self.limit = limit
        super().__init__(
            message
            or f"session {session!r}: server inbox full (limit {limit}); slow down"
        )

    def __reduce__(self):
        return (type(self), (self.session, self.limit, str(self)))


class ServiceDegradedWarning(RuntimeWarning):
    """The sidecar became unreachable; verification fell back to local.

    Emitted once per degradation episode by the
    :class:`~repro.service.client.RemoteVerifier`.  While degraded the
    client blanket-permits joins and the runtime's Armus wait-for graph
    force-checks every blocking join, so true deadlocks are still
    avoided — the same fail-open-but-sound posture as policy quarantine.
    """


class TaskCancelledError(ReproError):
    """A task observed its cooperative cancellation request.

    Raised at cancellation points (fork, join entry, blocked waits, and
    explicit ``CancelToken.raise_if_cancelled`` calls) inside the
    cancelled task, and used as the terminal exception of tasks that were
    cancelled before they started running.
    """

    def __init__(self, task: object = None, message: str | None = None):
        self.task = task
        super().__init__(
            message
            or (f"task {task!r} was cancelled" if task is not None else "task was cancelled")
        )

    def __reduce__(self):
        return (type(self), (_picklable_ref(self.task), str(self)))


class RuntimeStateError(ReproError):
    """Misuse of the task runtime (e.g. joining outside any task context)."""


class TaskFailedError(ReproError):
    """A joined task terminated with an exception; wraps the original.

    When raised out of ``join_batch``, :attr:`batch_index` holds the
    position of the failed future within the batch (None elsewhere).
    """

    #: index of the failed future within a ``join_batch`` call, or None
    batch_index: int | None = None

    def __init__(self, task: object, cause: BaseException):
        self.task = task
        self.__cause__ = cause
        super().__init__(f"task {task!r} failed: {cause!r}")

    def __reduce__(self):
        # The default reduce would re-call __init__ with args=(message,)
        # — the wrong arity — and drop both batch_index and the chained
        # cause.  The cause itself is user code's exception and may not
        # pickle; probe it and substitute a stringified stand-in so the
        # wrapper always crosses a result queue intact.
        import pickle

        cause = self.__cause__
        try:
            pickle.loads(pickle.dumps(cause))
        except Exception:  # noqa: BLE001 - any pickling defect at all
            cause = ReproError(f"unpicklable cause: {cause!r}")
        return (
            _rebuild_task_failed,
            (_picklable_ref(self.task), cause, self.batch_index, str(self)),
        )


def _rebuild_task_failed(task, cause, batch_index, message):
    """Unpickle hook restoring a :class:`TaskFailedError` field for field."""
    exc = TaskFailedError(task, cause)
    exc.batch_index = batch_index
    exc.args = (message,)
    return exc


class InjectedFaultError(ReproError):
    """An artificial failure raised by the fault-injection harness.

    Distinct from every organic error class so chaos tests can tell the
    storms they seeded apart from genuine runtime misbehaviour.
    """

    def __init__(self, site: object = None, message: str | None = None):
        self.site = site
        super().__init__(message or f"injected fault at {site!r}")

    def __reduce__(self):
        return (type(self), (_picklable_ref(self.site), str(self)))


class UnjoinedTaskWarning(RuntimeWarning):
    """A task failed but its future was never joined (reported at shutdown)."""
